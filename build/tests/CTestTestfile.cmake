# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_curve_test[1]_include.cmake")
include("/root/repo/build/tests/core_profile_test[1]_include.cmake")
include("/root/repo/build/tests/core_recommender_test[1]_include.cmake")
include("/root/repo/build/tests/dma_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/static_inputs_test[1]_include.cmake")
include("/root/repo/build/tests/cli_forecast_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/quality_test[1]_include.cmake")
include("/root/repo/build/tests/adf_test[1]_include.cmake")
include("/root/repo/build/tests/json_report_test[1]_include.cmake")
include("/root/repo/build/tests/drift_test[1]_include.cmake")
