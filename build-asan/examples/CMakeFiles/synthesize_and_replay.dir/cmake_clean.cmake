file(REMOVE_RECURSE
  "CMakeFiles/synthesize_and_replay.dir/synthesize_and_replay.cpp.o"
  "CMakeFiles/synthesize_and_replay.dir/synthesize_and_replay.cpp.o.d"
  "synthesize_and_replay"
  "synthesize_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesize_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
