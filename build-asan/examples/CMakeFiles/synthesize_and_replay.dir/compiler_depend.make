# Empty compiler generated dependencies file for synthesize_and_replay.
# This may be replaced when dependencies are built.
