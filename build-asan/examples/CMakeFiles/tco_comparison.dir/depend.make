# Empty dependencies file for tco_comparison.
# This may be replaced when dependencies are built.
