file(REMOVE_RECURSE
  "CMakeFiles/tco_comparison.dir/tco_comparison.cpp.o"
  "CMakeFiles/tco_comparison.dir/tco_comparison.cpp.o.d"
  "tco_comparison"
  "tco_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
