# Empty dependencies file for oracle_migration.
# This may be replaced when dependencies are built.
