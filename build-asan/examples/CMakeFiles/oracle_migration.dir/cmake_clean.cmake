file(REMOVE_RECURSE
  "CMakeFiles/oracle_migration.dir/oracle_migration.cpp.o"
  "CMakeFiles/oracle_migration.dir/oracle_migration.cpp.o.d"
  "oracle_migration"
  "oracle_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
