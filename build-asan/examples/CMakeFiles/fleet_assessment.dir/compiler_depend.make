# Empty compiler generated dependencies file for fleet_assessment.
# This may be replaced when dependencies are built.
