file(REMOVE_RECURSE
  "CMakeFiles/fleet_assessment.dir/fleet_assessment.cpp.o"
  "CMakeFiles/fleet_assessment.dir/fleet_assessment.cpp.o.d"
  "fleet_assessment"
  "fleet_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
