file(REMOVE_RECURSE
  "CMakeFiles/right_sizing.dir/right_sizing.cpp.o"
  "CMakeFiles/right_sizing.dir/right_sizing.cpp.o.d"
  "right_sizing"
  "right_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/right_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
