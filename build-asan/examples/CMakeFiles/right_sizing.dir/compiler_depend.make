# Empty compiler generated dependencies file for right_sizing.
# This may be replaced when dependencies are built.
