file(REMOVE_RECURSE
  "CMakeFiles/drift_test.dir/drift_test.cc.o"
  "CMakeFiles/drift_test.dir/drift_test.cc.o.d"
  "drift_test"
  "drift_test.pdb"
  "drift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
