file(REMOVE_RECURSE
  "CMakeFiles/core_profile_test.dir/core_profile_test.cc.o"
  "CMakeFiles/core_profile_test.dir/core_profile_test.cc.o.d"
  "core_profile_test"
  "core_profile_test.pdb"
  "core_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
