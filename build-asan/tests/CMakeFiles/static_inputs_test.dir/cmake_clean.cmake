file(REMOVE_RECURSE
  "CMakeFiles/static_inputs_test.dir/static_inputs_test.cc.o"
  "CMakeFiles/static_inputs_test.dir/static_inputs_test.cc.o.d"
  "static_inputs_test"
  "static_inputs_test.pdb"
  "static_inputs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_inputs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
