# Empty dependencies file for static_inputs_test.
# This may be replaced when dependencies are built.
