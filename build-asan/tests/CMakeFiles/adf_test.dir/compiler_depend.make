# Empty compiler generated dependencies file for adf_test.
# This may be replaced when dependencies are built.
