file(REMOVE_RECURSE
  "CMakeFiles/adf_test.dir/adf_test.cc.o"
  "CMakeFiles/adf_test.dir/adf_test.cc.o.d"
  "adf_test"
  "adf_test.pdb"
  "adf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
