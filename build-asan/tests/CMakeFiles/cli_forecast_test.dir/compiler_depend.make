# Empty compiler generated dependencies file for cli_forecast_test.
# This may be replaced when dependencies are built.
