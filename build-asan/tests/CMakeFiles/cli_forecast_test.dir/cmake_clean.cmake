file(REMOVE_RECURSE
  "CMakeFiles/cli_forecast_test.dir/cli_forecast_test.cc.o"
  "CMakeFiles/cli_forecast_test.dir/cli_forecast_test.cc.o.d"
  "cli_forecast_test"
  "cli_forecast_test.pdb"
  "cli_forecast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_forecast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
