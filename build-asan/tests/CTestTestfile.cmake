# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/util_test[1]_include.cmake")
include("/root/repo/build-asan/tests/stats_test[1]_include.cmake")
include("/root/repo/build-asan/tests/ml_test[1]_include.cmake")
include("/root/repo/build-asan/tests/catalog_test[1]_include.cmake")
include("/root/repo/build-asan/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build-asan/tests/workload_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_curve_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_profile_test[1]_include.cmake")
include("/root/repo/build-asan/tests/core_recommender_test[1]_include.cmake")
include("/root/repo/build-asan/tests/dma_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/extensions_test[1]_include.cmake")
include("/root/repo/build-asan/tests/static_inputs_test[1]_include.cmake")
include("/root/repo/build-asan/tests/cli_forecast_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/quality_test[1]_include.cmake")
include("/root/repo/build-asan/tests/adf_test[1]_include.cmake")
include("/root/repo/build-asan/tests/json_report_test[1]_include.cmake")
include("/root/repo/build-asan/tests/drift_test[1]_include.cmake")
