file(REMOVE_RECURSE
  "CMakeFiles/doppler_cli.dir/doppler_cli.cc.o"
  "CMakeFiles/doppler_cli.dir/doppler_cli.cc.o.d"
  "doppler"
  "doppler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppler_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
