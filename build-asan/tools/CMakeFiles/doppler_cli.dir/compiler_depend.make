# Empty compiler generated dependencies file for doppler_cli.
# This may be replaced when dependencies are built.
