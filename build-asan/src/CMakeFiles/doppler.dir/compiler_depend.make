# Empty compiler generated dependencies file for doppler.
# This may be replaced when dependencies are built.
