
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adf/ir_recommender.cc" "src/CMakeFiles/doppler.dir/adf/ir_recommender.cc.o" "gcc" "src/CMakeFiles/doppler.dir/adf/ir_recommender.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/doppler.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/file_layout.cc" "src/CMakeFiles/doppler.dir/catalog/file_layout.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/file_layout.cc.o.d"
  "/root/repo/src/catalog/premium_disk.cc" "src/CMakeFiles/doppler.dir/catalog/premium_disk.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/premium_disk.cc.o.d"
  "/root/repo/src/catalog/pricing.cc" "src/CMakeFiles/doppler.dir/catalog/pricing.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/pricing.cc.o.d"
  "/root/repo/src/catalog/resource.cc" "src/CMakeFiles/doppler.dir/catalog/resource.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/resource.cc.o.d"
  "/root/repo/src/catalog/sku.cc" "src/CMakeFiles/doppler.dir/catalog/sku.cc.o" "gcc" "src/CMakeFiles/doppler.dir/catalog/sku.cc.o.d"
  "/root/repo/src/core/backtest.cc" "src/CMakeFiles/doppler.dir/core/backtest.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/backtest.cc.o.d"
  "/root/repo/src/core/confidence.cc" "src/CMakeFiles/doppler.dir/core/confidence.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/confidence.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/CMakeFiles/doppler.dir/core/drift.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/drift.cc.o.d"
  "/root/repo/src/core/feedback.cc" "src/CMakeFiles/doppler.dir/core/feedback.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/feedback.cc.o.d"
  "/root/repo/src/core/forecast.cc" "src/CMakeFiles/doppler.dir/core/forecast.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/forecast.cc.o.d"
  "/root/repo/src/core/heuristics.cc" "src/CMakeFiles/doppler.dir/core/heuristics.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/heuristics.cc.o.d"
  "/root/repo/src/core/mi_filter.cc" "src/CMakeFiles/doppler.dir/core/mi_filter.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/mi_filter.cc.o.d"
  "/root/repo/src/core/negotiability.cc" "src/CMakeFiles/doppler.dir/core/negotiability.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/negotiability.cc.o.d"
  "/root/repo/src/core/price_performance.cc" "src/CMakeFiles/doppler.dir/core/price_performance.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/price_performance.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/CMakeFiles/doppler.dir/core/profiler.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/profiler.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/doppler.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/recommender.cc.o.d"
  "/root/repo/src/core/rightsizing.cc" "src/CMakeFiles/doppler.dir/core/rightsizing.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/rightsizing.cc.o.d"
  "/root/repo/src/core/throttling.cc" "src/CMakeFiles/doppler.dir/core/throttling.cc.o" "gcc" "src/CMakeFiles/doppler.dir/core/throttling.cc.o.d"
  "/root/repo/src/dma/assessment.cc" "src/CMakeFiles/doppler.dir/dma/assessment.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/assessment.cc.o.d"
  "/root/repo/src/dma/cli.cc" "src/CMakeFiles/doppler.dir/dma/cli.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/cli.cc.o.d"
  "/root/repo/src/dma/pipeline.cc" "src/CMakeFiles/doppler.dir/dma/pipeline.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/pipeline.cc.o.d"
  "/root/repo/src/dma/preprocess.cc" "src/CMakeFiles/doppler.dir/dma/preprocess.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/preprocess.cc.o.d"
  "/root/repo/src/dma/resource_report.cc" "src/CMakeFiles/doppler.dir/dma/resource_report.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/resource_report.cc.o.d"
  "/root/repo/src/dma/static_inputs.cc" "src/CMakeFiles/doppler.dir/dma/static_inputs.cc.o" "gcc" "src/CMakeFiles/doppler.dir/dma/static_inputs.cc.o.d"
  "/root/repo/src/ml/hierarchical.cc" "src/CMakeFiles/doppler.dir/ml/hierarchical.cc.o" "gcc" "src/CMakeFiles/doppler.dir/ml/hierarchical.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/doppler.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/doppler.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/quality/quality_gate.cc" "src/CMakeFiles/doppler.dir/quality/quality_gate.cc.o" "gcc" "src/CMakeFiles/doppler.dir/quality/quality_gate.cc.o.d"
  "/root/repo/src/quality/quality_report.cc" "src/CMakeFiles/doppler.dir/quality/quality_report.cc.o" "gcc" "src/CMakeFiles/doppler.dir/quality/quality_report.cc.o.d"
  "/root/repo/src/sim/fault_injector.cc" "src/CMakeFiles/doppler.dir/sim/fault_injector.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sim/fault_injector.cc.o.d"
  "/root/repo/src/sim/replayer.cc" "src/CMakeFiles/doppler.dir/sim/replayer.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sim/replayer.cc.o.d"
  "/root/repo/src/sim/resource_model.cc" "src/CMakeFiles/doppler.dir/sim/resource_model.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sim/resource_model.cc.o.d"
  "/root/repo/src/sources/counter_mapping.cc" "src/CMakeFiles/doppler.dir/sources/counter_mapping.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sources/counter_mapping.cc.o.d"
  "/root/repo/src/sources/oracle_awr.cc" "src/CMakeFiles/doppler.dir/sources/oracle_awr.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sources/oracle_awr.cc.o.d"
  "/root/repo/src/sources/postgres_stat.cc" "src/CMakeFiles/doppler.dir/sources/postgres_stat.cc.o" "gcc" "src/CMakeFiles/doppler.dir/sources/postgres_stat.cc.o.d"
  "/root/repo/src/stats/auc.cc" "src/CMakeFiles/doppler.dir/stats/auc.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/auc.cc.o.d"
  "/root/repo/src/stats/bootstrap.cc" "src/CMakeFiles/doppler.dir/stats/bootstrap.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/bootstrap.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/doppler.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/CMakeFiles/doppler.dir/stats/ecdf.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/ecdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/doppler.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/CMakeFiles/doppler.dir/stats/kde.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/kde.cc.o.d"
  "/root/repo/src/stats/loess.cc" "src/CMakeFiles/doppler.dir/stats/loess.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/loess.cc.o.d"
  "/root/repo/src/stats/normal.cc" "src/CMakeFiles/doppler.dir/stats/normal.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/normal.cc.o.d"
  "/root/repo/src/stats/outliers.cc" "src/CMakeFiles/doppler.dir/stats/outliers.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/outliers.cc.o.d"
  "/root/repo/src/stats/scalers.cc" "src/CMakeFiles/doppler.dir/stats/scalers.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/scalers.cc.o.d"
  "/root/repo/src/stats/stl.cc" "src/CMakeFiles/doppler.dir/stats/stl.cc.o" "gcc" "src/CMakeFiles/doppler.dir/stats/stl.cc.o.d"
  "/root/repo/src/tco/tco.cc" "src/CMakeFiles/doppler.dir/tco/tco.cc.o" "gcc" "src/CMakeFiles/doppler.dir/tco/tco.cc.o.d"
  "/root/repo/src/telemetry/aggregate.cc" "src/CMakeFiles/doppler.dir/telemetry/aggregate.cc.o" "gcc" "src/CMakeFiles/doppler.dir/telemetry/aggregate.cc.o.d"
  "/root/repo/src/telemetry/collector.cc" "src/CMakeFiles/doppler.dir/telemetry/collector.cc.o" "gcc" "src/CMakeFiles/doppler.dir/telemetry/collector.cc.o.d"
  "/root/repo/src/telemetry/perf_trace.cc" "src/CMakeFiles/doppler.dir/telemetry/perf_trace.cc.o" "gcc" "src/CMakeFiles/doppler.dir/telemetry/perf_trace.cc.o.d"
  "/root/repo/src/telemetry/trace_io.cc" "src/CMakeFiles/doppler.dir/telemetry/trace_io.cc.o" "gcc" "src/CMakeFiles/doppler.dir/telemetry/trace_io.cc.o.d"
  "/root/repo/src/util/ascii_plot.cc" "src/CMakeFiles/doppler.dir/util/ascii_plot.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/ascii_plot.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/doppler.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/csv.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/CMakeFiles/doppler.dir/util/json_writer.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/json_writer.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/doppler.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/doppler.dir/util/random.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/doppler.dir/util/status.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/doppler.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/doppler.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/doppler.dir/util/table_printer.cc.o.d"
  "/root/repo/src/workload/archetype.cc" "src/CMakeFiles/doppler.dir/workload/archetype.cc.o" "gcc" "src/CMakeFiles/doppler.dir/workload/archetype.cc.o.d"
  "/root/repo/src/workload/benchmark_mix.cc" "src/CMakeFiles/doppler.dir/workload/benchmark_mix.cc.o" "gcc" "src/CMakeFiles/doppler.dir/workload/benchmark_mix.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/doppler.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/doppler.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/population.cc" "src/CMakeFiles/doppler.dir/workload/population.cc.o" "gcc" "src/CMakeFiles/doppler.dir/workload/population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
