file(REMOVE_RECURSE
  "libdoppler.a"
)
