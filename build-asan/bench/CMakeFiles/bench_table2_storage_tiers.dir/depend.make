# Empty dependencies file for bench_table2_storage_tiers.
# This may be replaced when dependencies are built.
