file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_storage_tiers.dir/bench_table2_storage_tiers.cc.o"
  "CMakeFiles/bench_table2_storage_tiers.dir/bench_table2_storage_tiers.cc.o.d"
  "bench_table2_storage_tiers"
  "bench_table2_storage_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_storage_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
