file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fig9_curve_types.dir/bench_fig8_fig9_curve_types.cc.o"
  "CMakeFiles/bench_fig8_fig9_curve_types.dir/bench_fig8_fig9_curve_types.cc.o.d"
  "bench_fig8_fig9_curve_types"
  "bench_fig8_fig9_curve_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fig9_curve_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
