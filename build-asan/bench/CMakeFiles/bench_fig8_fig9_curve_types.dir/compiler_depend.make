# Empty compiler generated dependencies file for bench_fig8_fig9_curve_types.
# This may be replaced when dependencies are built.
