# Empty dependencies file for bench_fig11_sku_change.
# This may be replaced when dependencies are built.
