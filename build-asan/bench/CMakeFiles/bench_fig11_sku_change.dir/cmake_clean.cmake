file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sku_change.dir/bench_fig11_sku_change.cc.o"
  "CMakeFiles/bench_fig11_sku_change.dir/bench_fig11_sku_change.cc.o.d"
  "bench_fig11_sku_change"
  "bench_fig11_sku_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sku_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
