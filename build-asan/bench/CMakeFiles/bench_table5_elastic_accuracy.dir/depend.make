# Empty dependencies file for bench_table5_elastic_accuracy.
# This may be replaced when dependencies are built.
