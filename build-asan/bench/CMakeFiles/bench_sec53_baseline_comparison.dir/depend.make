# Empty dependencies file for bench_sec53_baseline_comparison.
# This may be replaced when dependencies are built.
