file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_catalog.dir/bench_fig1_catalog.cc.o"
  "CMakeFiles/bench_fig1_catalog.dir/bench_fig1_catalog.cc.o.d"
  "bench_fig1_catalog"
  "bench_fig1_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
