# Empty compiler generated dependencies file for bench_fig10_confidence_window.
# This may be replaced when dependencies are built.
