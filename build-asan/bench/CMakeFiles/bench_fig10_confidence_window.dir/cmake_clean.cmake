file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_confidence_window.dir/bench_fig10_confidence_window.cc.o"
  "CMakeFiles/bench_fig10_confidence_window.dir/bench_fig10_confidence_window.cc.o.d"
  "bench_fig10_confidence_window"
  "bench_fig10_confidence_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_confidence_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
