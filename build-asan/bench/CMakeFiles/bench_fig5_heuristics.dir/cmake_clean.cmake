file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_heuristics.dir/bench_fig5_heuristics.cc.o"
  "CMakeFiles/bench_fig5_heuristics.dir/bench_fig5_heuristics.cc.o.d"
  "bench_fig5_heuristics"
  "bench_fig5_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
