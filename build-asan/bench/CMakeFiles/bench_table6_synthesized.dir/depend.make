# Empty dependencies file for bench_table6_synthesized.
# This may be replaced when dependencies are built.
