file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_synthesized.dir/bench_table6_synthesized.cc.o"
  "CMakeFiles/bench_table6_synthesized.dir/bench_table6_synthesized.cc.o.d"
  "bench_table6_synthesized"
  "bench_table6_synthesized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_synthesized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
