# Empty dependencies file for bench_table1_adoption.
# This may be replaced when dependencies are built.
