file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_adoption.dir/bench_table1_adoption.cc.o"
  "CMakeFiles/bench_table1_adoption.dir/bench_table1_adoption.cc.o.d"
  "bench_table1_adoption"
  "bench_table1_adoption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_adoption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
