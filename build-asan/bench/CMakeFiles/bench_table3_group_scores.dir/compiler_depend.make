# Empty compiler generated dependencies file for bench_table3_group_scores.
# This may be replaced when dependencies are built.
