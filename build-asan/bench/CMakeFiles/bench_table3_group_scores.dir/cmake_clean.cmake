file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_group_scores.dir/bench_table3_group_scores.cc.o"
  "CMakeFiles/bench_table3_group_scores.dir/bench_table3_group_scores.cc.o.d"
  "bench_table3_group_scores"
  "bench_table3_group_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_group_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
