# Empty dependencies file for bench_fig6_ecdf.
# This may be replaced when dependencies are built.
