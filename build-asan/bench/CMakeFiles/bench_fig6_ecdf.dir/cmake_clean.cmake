file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ecdf.dir/bench_fig6_ecdf.cc.o"
  "CMakeFiles/bench_fig6_ecdf.dir/bench_fig6_ecdf.cc.o.d"
  "bench_fig6_ecdf"
  "bench_fig6_ecdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ecdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
