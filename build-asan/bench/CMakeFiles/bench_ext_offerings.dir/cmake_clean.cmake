file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_offerings.dir/bench_ext_offerings.cc.o"
  "CMakeFiles/bench_ext_offerings.dir/bench_ext_offerings.cc.o.d"
  "bench_ext_offerings"
  "bench_ext_offerings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_offerings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
