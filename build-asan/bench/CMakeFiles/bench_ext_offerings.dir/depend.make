# Empty dependencies file for bench_ext_offerings.
# This may be replaced when dependencies are built.
