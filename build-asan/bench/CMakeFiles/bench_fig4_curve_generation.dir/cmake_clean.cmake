file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_curve_generation.dir/bench_fig4_curve_generation.cc.o"
  "CMakeFiles/bench_fig4_curve_generation.dir/bench_fig4_curve_generation.cc.o.d"
  "bench_fig4_curve_generation"
  "bench_fig4_curve_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_curve_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
