# Empty compiler generated dependencies file for bench_fig4_curve_generation.
# This may be replaced when dependencies are built.
