# Empty compiler generated dependencies file for bench_table4_strategy_accuracy.
# This may be replaced when dependencies are built.
