file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_confidence.dir/bench_fig7_confidence.cc.o"
  "CMakeFiles/bench_fig7_confidence.dir/bench_fig7_confidence.cc.o.d"
  "bench_fig7_confidence"
  "bench_fig7_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
