#include "tco/tco.h"

#include <algorithm>
#include <sstream>

#include "stats/descriptive.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace doppler::tco {

double OnPremCostModel::MonthlyCost(double storage_gb) const {
  const double hardware =
      amortization_months > 0.0 ? server_capex / amortization_months : 0.0;
  return hardware + license_per_core_monthly * licensed_cores +
         admin_monthly + facilities_monthly +
         storage_per_gb_monthly * std::max(0.0, storage_gb);
}

std::vector<CloudPriceBook> DefaultPriceBooks() {
  // Relative levels reflect public list-price comparisons for managed SQL
  // offerings of equivalent shape; the exact ratios are configuration, not
  // science.
  return {
      {"Azure", 1.00, 0.0},
      {"AWS-like", 1.07, 30.0},
      {"GCP-like", 0.98, 45.0},
  };
}

StatusOr<TcoComparison> CompareTco(
    const telemetry::PerfTrace& trace, const OnPremCostModel& on_prem,
    const catalog::SkuCatalog& catalog,
    const core::ThrottlingEstimator& estimator,
    const core::CustomerProfiler& profiler, const core::GroupModel& groups,
    const std::vector<CloudPriceBook>& books) {
  if (books.empty()) return InvalidArgumentError("no cloud price books");
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }

  TcoComparison comparison;
  const double storage_gb =
      trace.Has(catalog::ResourceDim::kStorageGb)
          ? stats::Max(trace.Values(catalog::ResourceDim::kStorageGb))
          : 0.0;
  comparison.on_prem_monthly = on_prem.MonthlyCost(storage_gb);

  for (const CloudPriceBook& book : books) {
    const catalog::DefaultPricing pricing(book.price_multiplier);
    const catalog::CompiledCatalog compiled =
        catalog::CompiledCatalog::Compile(catalog, &pricing);
    const core::ElasticRecommender recommender(&compiled, &estimator,
                                               &profiler, &groups);
    StatusOr<core::Recommendation> recommendation =
        recommender.RecommendDb(trace);
    if (!recommendation.ok()) continue;
    CloudEstimate estimate;
    estimate.provider = book.name;
    estimate.sku_display_name = recommendation->sku.DisplayName();
    estimate.monthly_cost =
        recommendation->monthly_cost + book.platform_fee_monthly;
    estimate.annual_cost = estimate.monthly_cost * 12.0;
    estimate.throttling_probability = recommendation->throttling_probability;
    comparison.clouds.push_back(std::move(estimate));
  }
  if (comparison.clouds.empty()) {
    return NotFoundError("no provider produced a recommendation");
  }

  comparison.best_cloud_index = 0;
  for (std::size_t i = 1; i < comparison.clouds.size(); ++i) {
    if (comparison.clouds[i].monthly_cost <
        comparison.clouds[comparison.best_cloud_index].monthly_cost) {
      comparison.best_cloud_index = i;
    }
  }
  comparison.best_savings_monthly =
      comparison.on_prem_monthly -
      comparison.clouds[comparison.best_cloud_index].monthly_cost;
  comparison.best_savings_annual = comparison.best_savings_monthly * 12.0;
  return comparison;
}

std::string RenderTcoReport(const TcoComparison& comparison) {
  std::ostringstream out;
  TablePrinter table({"Option", "Right-sized target", "Monthly", "Annual",
                      "Throttling"});
  table.AddRow({"Stay on-premises", "(current estate)",
                FormatDollars(comparison.on_prem_monthly, 0),
                FormatDollars(comparison.on_prem_monthly * 12.0, 0), "-"});
  for (std::size_t i = 0; i < comparison.clouds.size(); ++i) {
    const CloudEstimate& cloud = comparison.clouds[i];
    table.AddRow({cloud.provider +
                      (i == comparison.best_cloud_index ? "  <== best" : ""),
                  cloud.sku_display_name,
                  FormatDollars(cloud.monthly_cost, 0),
                  FormatDollars(cloud.annual_cost, 0),
                  FormatPercent(cloud.throttling_probability, 1)});
  }
  out << table.ToString();
  if (comparison.best_savings_monthly > 0.0) {
    out << "\nMoving to "
        << comparison.clouds[comparison.best_cloud_index].provider
        << " saves "
        << FormatDollars(comparison.best_savings_monthly, 0) << "/month ("
        << FormatDollars(comparison.best_savings_annual, 0) << "/year) over "
        << "staying on-premises.\n";
  } else {
    out << "\nStaying on-premises is currently cheaper by "
        << FormatDollars(-comparison.best_savings_monthly, 0)
        << "/month; revisit after the next hardware refresh cycle.\n";
  }
  return out.str();
}

}  // namespace doppler::tco
