#ifndef DOPPLER_TCO_TCO_H_
#define DOPPLER_TCO_TCO_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::tco {

/// What keeping the estate on-premises costs per month (paper §5.5:
/// Doppler feeds "a broader total cost of ownership (TCO) project, in
/// which customers ... compare the differences between keeping their
/// workloads on-prem, moving to a hybrid cloud, or transferring workloads
/// to GCP, AWS, and/or Azure").
struct OnPremCostModel {
  /// Purchase price of the server hardware hosting the workload.
  double server_capex = 25000.0;
  /// Months the capex amortises over.
  double amortization_months = 48.0;
  /// SQL Server licensing per physical core per month.
  double license_per_core_monthly = 230.0;
  /// Cores licensed (production practice: the host's cores, not the
  /// workload's average draw).
  int licensed_cores = 8;
  /// DBA/ops labour attributable to this estate per month.
  double admin_monthly = 900.0;
  /// Datacenter power, cooling, rack space per month.
  double facilities_monthly = 350.0;
  /// SAN/disk cost per GB-month.
  double storage_per_gb_monthly = 0.08;

  /// Total monthly cost for an estate of `storage_gb`.
  double MonthlyCost(double storage_gb) const;
};

/// A cloud provider's price book, expressed relative to the Azure-like
/// catalog (the TCO tool compares equivalently-shaped SKUs across clouds,
/// which to first order differ by a price multiplier and a managed-service
/// uplift).
struct CloudPriceBook {
  std::string name = "Azure";
  /// Multiplier on the Azure-like list price for the equivalent shape.
  double price_multiplier = 1.0;
  /// Extra monthly platform fee (support plans etc.).
  double platform_fee_monthly = 0.0;
};

/// The standard comparison set: Azure plus AWS- and GCP-like books.
std::vector<CloudPriceBook> DefaultPriceBooks();

/// One provider's line in the comparison.
struct CloudEstimate {
  std::string provider;
  std::string sku_display_name;
  double monthly_cost = 0.0;
  double annual_cost = 0.0;
  /// Throttling probability at the chosen SKU (same workload, same
  /// engine).
  double throttling_probability = 0.0;
};

/// The full TCO answer for one workload.
struct TcoComparison {
  double on_prem_monthly = 0.0;
  std::vector<CloudEstimate> clouds;
  /// Cheapest cloud option.
  std::size_t best_cloud_index = 0;
  /// Monthly / annual savings of the best cloud vs staying on-prem
  /// (negative = staying is cheaper).
  double best_savings_monthly = 0.0;
  double best_savings_annual = 0.0;
};

/// Runs the comparison: the elastic recommender picks the right-sized SKU
/// per provider price book, and the on-prem model prices the status quo.
/// `recommender` must be configured for SQL DB targets. Fails when no
/// provider yields a recommendation.
StatusOr<TcoComparison> CompareTco(
    const telemetry::PerfTrace& trace, const OnPremCostModel& on_prem,
    const catalog::SkuCatalog& catalog,
    const core::ThrottlingEstimator& estimator,
    const core::CustomerProfiler& profiler, const core::GroupModel& groups,
    const std::vector<CloudPriceBook>& books = DefaultPriceBooks());

/// Renders the comparison as an aligned table plus a verdict line.
std::string RenderTcoReport(const TcoComparison& comparison);

}  // namespace doppler::tco

#endif  // DOPPLER_TCO_TCO_H_
