#ifndef DOPPLER_SERVE_SPOOL_H_
#define DOPPLER_SERVE_SPOOL_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "quality/quality_gate.h"
#include "serve/assessment_service.h"
#include "serve/backoff.h"
#include "util/statusor.h"

namespace doppler::serve {

/// How `doppler serve` turns a spool directory into requests. The spool is
/// the network-free request source: drop a trace CSV into the directory
/// and the next scan admits it (the file name is the customer id), so the
/// whole serving stack is testable without sockets.
struct SpoolOptions {
  std::string dir;
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  quality::QualityPolicy quality_policy = quality::QualityPolicy::kRepair;
  /// Per-request deadline; <= 0 leaves requests unbounded.
  double deadline_seconds = 0.0;
  /// Ask for the bootstrap confidence score (sheddable under pressure).
  bool compute_confidence = false;
  /// Retry policy for transient ingest failures (a file still being
  /// written reads as kUnavailable mid-write; injected I/O faults do too).
  BackoffPolicy backoff;
  /// Seeds the backoff jitter so runs are reproducible.
  std::uint64_t backoff_seed = 97;
  /// Fault-injection seam: invoked before each read attempt (1-based) of
  /// `path`; a non-OK return is treated as that attempt's outcome.
  /// sim::TransientIoPlan::Hook() provides a seeded implementation.
  std::function<Status(const std::string& path, int attempt)> io_fault_hook;
  /// Per-request stage-boundary hook factory (keyed by customer id),
  /// threaded into AssessmentRequest::stage_boundary_hook.
  /// sim::StageLatencyPlan::HookFor provides a seeded implementation.
  std::function<std::function<void(const char*)>(const std::string&)>
      stage_hook_factory;
};

/// One spool pass: every response in file order, plus the requests that
/// never reached the service (shed at admission or failed ingestion
/// terminally) recorded as error responses in the same order.
struct SpoolReport {
  std::vector<ServeResponse> responses;
  /// Responses with a non-OK terminal status.
  std::size_t failures = 0;
};

/// Scans `dir` for *.csv files (sorted by name) not already in `seen`,
/// appends the newly found names to `seen`, and returns their full paths.
/// The sort makes customer ids and admission order reproducible.
StatusOr<std::vector<std::string>> ScanSpool(const std::string& dir,
                                             std::set<std::string>* seen);

/// Logical customer id of one spool file: the file name up to the FIRST
/// '.', so a batch sequence ("acme.0001.csv", "acme.0002.csv") addresses
/// one customer stream. This is the keying `doppler monitor` uses to
/// route batches into per-customer sliding windows; `doppler serve` keeps
/// its historical full-file-name ids (every drop is an independent
/// request there, and journals depend on the exact names).
std::string SpoolCustomerId(const std::string& path);

/// Reads one spool file through the quality gate with jittered-backoff
/// retries on transient (kUnavailable) failures, bounded by `deadline`.
StatusOr<quality::GatedTrace> IngestWithRetry(const std::string& path,
                                              const SpoolOptions& options,
                                              const Deadline& deadline,
                                              Rng* rng);

/// Ingests and submits every file in `paths` against `service`, waits for
/// all terminal responses, and folds shed/ingest-failed requests into the
/// report. Every path produces exactly one response; the call never
/// throws, blocks indefinitely, or aborts the pass on one bad file.
SpoolReport DrainSpool(AssessmentService& service,
                       const std::vector<std::string>& paths,
                       const SpoolOptions& options);

/// Machine-readable summary of a spool pass: per-request terminal status
/// (code + message), pinned epoch, completed stage names, the elastic pick
/// when present, and the service's admission totals.
std::string RenderSpoolReportJson(const SpoolReport& report,
                                  const AssessmentService::Stats& stats);

/// Human-readable counterpart (one row per request plus a totals line).
std::string RenderSpoolReportText(const SpoolReport& report,
                                  const AssessmentService::Stats& stats);

}  // namespace doppler::serve

#endif  // DOPPLER_SERVE_SPOOL_H_
