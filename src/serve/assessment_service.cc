#include "serve/assessment_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace doppler::serve {

namespace {

// RED metrics for the serving path: request rates by outcome, queue
// pressure, and per-outcome latency. Names follow the dotted scheme in
// DESIGN.md §6.
obs::Counter* SubmittedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.submitted");
  return kCounter;
}

obs::Counter* AdmittedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.admitted");
  return kCounter;
}

obs::Counter* CompletedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.completed");
  return kCounter;
}

obs::Counter* FailedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.failed");
  return kCounter;
}

obs::Counter* ShedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.shed");
  return kCounter;
}

obs::Counter* ExpiredCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.expired");
  return kCounter;
}

obs::Counter* DegradedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.confidence_shed");
  return kCounter;
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const kGauge =
      obs::DefaultMetrics().GetGauge("serve.queue_depth");
  return kGauge;
}

// Admission-queue wait (submit to worker pickup), the half of latency the
// per-outcome histograms can't see. Shared name with the thread pool's
// exec.queue_wait so both layers are comparable.
obs::Histogram* QueueWaitHistogram() {
  static obs::Histogram* const kHistogram =
      obs::DefaultMetrics().GetHistogram("serve.queue_wait");
  return kHistogram;
}

obs::FlightStageTiming ToFlightTiming(const dma::StageTiming& timing) {
  return obs::FlightStageTiming{timing.stage, timing.seconds};
}

// One latency histogram per terminal outcome so overload diagnosis can
// separate "requests are slow" from "requests are dying at the deadline".
obs::Histogram* LatencyHistogramFor(StatusCode code) {
  static obs::Histogram* const kOk =
      obs::DefaultMetrics().GetHistogram("serve.latency.ok");
  static obs::Histogram* const kExpired =
      obs::DefaultMetrics().GetHistogram("serve.latency.deadline_exceeded");
  static obs::Histogram* const kError =
      obs::DefaultMetrics().GetHistogram("serve.latency.error");
  switch (code) {
    case StatusCode::kOk:
      return kOk;
    case StatusCode::kDeadlineExceeded:
      return kExpired;
    default:
      return kError;
  }
}

}  // namespace

AssessmentService::AssessmentService(SnapshotRegistry* registry,
                                     ServiceOptions options)
    : registry_(registry), options_(options) {
  options_.workers = std::max(1, options_.workers);
  options_.queue_depth = std::max(1, options_.queue_depth);
  options_.degrade_watermark =
      std::clamp(options_.degrade_watermark, 0.0, 1.0);
  pool_ = std::make_unique<exec::ThreadPool>(
      options_.workers, static_cast<std::size_t>(options_.queue_depth));
}

// The pool destructor drains every queued task before joining, so every
// admitted request's promise resolves — shutdown never orphans a future.
AssessmentService::~AssessmentService() = default;

ServeResponse AssessmentService::Process(dma::AssessmentRequest& request,
                                         bool confidence_shed,
                                         double queue_wait_seconds) {
  DOPPLER_TRACE_SPAN("serve.process");
  const auto start = std::chrono::steady_clock::now();
  QueueWaitHistogram()->Observe(queue_wait_seconds);

  // Pin the snapshot for the request's whole lifetime: a Swap during the
  // assessment is invisible here, and the pinned pipeline stays alive
  // until this shared_ptr drops.
  const ServingSnapshot snapshot = registry_->Acquire();

  ServeResponse response;
  response.customer_id = request.customer_id;
  response.snapshot_epoch = snapshot.epoch;
  response.confidence_shed = confidence_shed;

  if (request.database_traces.empty()) {
    response.status =
        InvalidArgumentError("assessment request carries no traces");
  } else {
    dma::RequestContext ctx(request);
    response.status = snapshot.pipeline->RunStages(ctx, dma::kAllStages);
    // Salvage whatever completed — a deadline-expired request still ships
    // its finished stages (the paper's DMA UI renders partial reports the
    // same way).
    dma::AssessmentOutcome outcome = snapshot.pipeline->Finish(ctx);
    response.completed_stages = outcome.completed_stages;
    if (response.completed_stages != 0 || response.status.ok()) {
      response.outcome = std::move(outcome);
    }
  }

  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();
  LatencyHistogramFor(response.status.code())->Observe(seconds);
  obs::FlightCause cause = obs::FlightCause::kCompleted;
  if (response.status.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    CompletedCounter()->Increment();
  } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    ExpiredCounter()->Increment();
    cause = obs::FlightCause::kExpired;
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    FailedCounter()->Increment();
    cause = obs::FlightCause::kFailed;
  }
  if (options_.flight_recorder != nullptr) {
    obs::FlightRecord record;
    record.request_id = response.customer_id;
    record.snapshot_epoch = response.snapshot_epoch;
    record.status = response.status.code();
    record.status_message = response.status.message();
    record.cause = cause;
    record.confidence_shed = confidence_shed;
    record.queue_wait_seconds = queue_wait_seconds;
    record.total_seconds = seconds;
    if (response.outcome.has_value()) {
      record.stage_timings.reserve(response.outcome->stage_timings.size());
      for (const dma::StageTiming& timing : response.outcome->stage_timings) {
        record.stage_timings.push_back(ToFlightTiming(timing));
      }
    }
    options_.flight_recorder->Record(std::move(record));
  }
  return response;
}

StatusOr<std::future<ServeResponse>> AssessmentService::Submit(
    dma::AssessmentRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  SubmittedCounter()->Increment();

  // Graceful degradation before load shedding: under sustained pressure
  // the optional confidence resample goes first. Judged at admission so
  // the decision rides the queue state that caused it.
  bool confidence_shed = false;
  const std::size_t depth = pool_->QueueDepth();
  QueueDepthGauge()->Set(static_cast<double>(depth));
  if (request.compute_confidence &&
      static_cast<double>(depth) >=
          options_.degrade_watermark *
              static_cast<double>(options_.queue_depth)) {
    request.compute_confidence = false;
    confidence_shed = true;
  }

  auto promise = std::make_shared<std::promise<ServeResponse>>();
  std::future<ServeResponse> future = promise->get_future();
  // The request moves into shared state because std::function requires a
  // copyable callable; the task is the sole owner either way.
  auto boxed = std::make_shared<dma::AssessmentRequest>(std::move(request));
  const auto enqueue_time = std::chrono::steady_clock::now();
  const bool admitted =
      pool_->TrySubmit([this, promise, boxed, confidence_shed, enqueue_time] {
        const double queue_wait =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - enqueue_time)
                .count();
        promise->set_value(Process(*boxed, confidence_shed, queue_wait));
      });
  if (!admitted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    ShedCounter()->Increment();
    // A shed request never waited (fast-reject) and never pinned a
    // snapshot, but it still earns a journal entry — operators debugging
    // overload need the who/when of every rejection.
    if (options_.flight_recorder != nullptr) {
      obs::FlightRecord record;
      record.request_id = boxed->customer_id;
      record.status = StatusCode::kResourceExhausted;
      record.status_message = "admission queue full";
      record.cause = obs::FlightCause::kShed;
      options_.flight_recorder->Record(std::move(record));
    }
    return ResourceExhaustedError(
        "admission queue full (" + std::to_string(options_.queue_depth) +
        " waiting); request '" + boxed->customer_id + "' shed");
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  AdmittedCounter()->Increment();
  if (confidence_shed) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
    DegradedCounter()->Increment();
  }
  return future;
}

AssessmentService::Stats AssessmentService::stats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.expired = expired_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t AssessmentService::QueueDepth() const {
  return pool_->QueueDepth();
}

}  // namespace doppler::serve
