#include "serve/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metrics.h"

namespace doppler::serve {

double BackoffDelaySeconds(const BackoffPolicy& policy, int attempt,
                           Rng* rng) {
  const int exponent = std::max(0, attempt - 1);
  double delay = policy.initial_delay_seconds *
                 std::pow(policy.multiplier, static_cast<double>(exponent));
  delay = std::min(delay, policy.max_delay_seconds);
  if (rng != nullptr && policy.jitter > 0.0) {
    const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
    delay *= 1.0 - jitter * rng->Uniform();
  }
  return delay;
}

Status RetryWithBackoff(const BackoffPolicy& policy, const Deadline& deadline,
                        const std::function<Status()>& op, Rng* rng) {
  static obs::Counter* const kRetries =
      obs::DefaultMetrics().GetCounter("serve.ingest_retries");
  Status last = OkStatus();
  const int attempts = std::max(1, policy.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (deadline.IsExpired()) {
      return DeadlineExceededError("deadline expired while retrying: " +
                                   last.ToString());
    }
    last = op();
    if (last.code() != StatusCode::kUnavailable) return last;
    if (attempt == attempts) break;
    kRetries->Increment();
    const double delay = BackoffDelaySeconds(policy, attempt, rng);
    // Never sleep past the budget: a deadline that cannot cover the delay
    // ends the retry loop now rather than waking up already expired.
    if (deadline.RemainingSeconds() <= delay) {
      return DeadlineExceededError(
          "deadline cannot cover the next backoff delay; last transient "
          "failure: " +
          last.ToString());
    }
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
  return last;
}

}  // namespace doppler::serve
