#include "serve/spool.h"

#include <algorithm>
#include <filesystem>
#include <future>
#include <sstream>
#include <utility>

#include "dma/pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/json_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace doppler::serve {

namespace {

/// The seven pipeline stages in canonical order, for rendering a
/// completed-stage mask as names.
constexpr dma::Stage kStageOrder[] = {
    dma::kStagePreprocess, dma::kStageQuality,    dma::kStageLayout,
    dma::kStageRecommend,  dma::kStageBaseline,   dma::kStageConfidence,
    dma::kStageRightsizing,
};

std::vector<std::string> CompletedStageNames(dma::StageMask mask) {
  std::vector<std::string> names;
  for (dma::Stage stage : kStageOrder) {
    if (mask & stage) names.emplace_back(dma::StageName(stage));
  }
  return names;
}

ServeResponse ErrorResponse(std::string customer_id, Status status) {
  ServeResponse response;
  response.customer_id = std::move(customer_id);
  response.status = std::move(status);
  return response;
}

obs::Counter* IngestFailedCounter() {
  static obs::Counter* const kCounter =
      obs::DefaultMetrics().GetCounter("serve.ingest_failed");
  return kCounter;
}

}  // namespace

StatusOr<std::vector<std::string>> ScanSpool(const std::string& dir,
                                             std::set<std::string>* seen) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return InvalidArgumentError("spool '" + dir + "' is not a directory");
  }
  std::vector<std::filesystem::path> fresh;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".csv") {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (seen != nullptr && seen->count(name) != 0) continue;
    fresh.push_back(entry.path());
  }
  if (ec) {
    return UnavailableError("cannot scan spool '" + dir +
                            "': " + ec.message());
  }
  std::sort(fresh.begin(), fresh.end());
  std::vector<std::string> paths;
  paths.reserve(fresh.size());
  for (const auto& path : fresh) {
    if (seen != nullptr) seen->insert(path.filename().string());
    paths.push_back(path.string());
  }
  return paths;
}

std::string SpoolCustomerId(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

StatusOr<quality::GatedTrace> IngestWithRetry(const std::string& path,
                                              const SpoolOptions& options,
                                              const Deadline& deadline,
                                              Rng* rng) {
  quality::GateOptions gate;
  gate.policy = options.quality_policy;
  StatusOr<quality::GatedTrace> gated =
      InternalError("spool ingest never attempted");
  int attempt = 0;
  const Status status = RetryWithBackoff(
      options.backoff, deadline,
      [&]() -> Status {
        ++attempt;
        if (options.io_fault_hook) {
          const Status injected = options.io_fault_hook(path, attempt);
          if (!injected.ok()) return injected;
        }
        gated = quality::ReadTraceFileGated(path, gate);
        return gated.status();
      },
      rng);
  if (!status.ok()) return status;
  return gated;
}

SpoolReport DrainSpool(AssessmentService& service,
                       const std::vector<std::string>& paths,
                       const SpoolOptions& options) {
  SpoolReport report;
  report.responses.reserve(paths.size());

  // Per-file jitter streams fork off one seed so a file's retry schedule
  // does not depend on how many files preceded it in the pass.
  Rng root(options.backoff_seed);

  struct Pending {
    std::size_t slot;
    std::future<ServeResponse> future;
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const std::string customer_id =
        std::filesystem::path(paths[i]).filename().string();
    const Deadline deadline = options.deadline_seconds > 0.0
                                  ? Deadline::After(options.deadline_seconds)
                                  : Deadline();
    Rng rng = root.Fork(i);
    StatusOr<quality::GatedTrace> gated =
        IngestWithRetry(paths[i], options, deadline, &rng);
    if (!gated.ok()) {
      report.responses.push_back(ErrorResponse(customer_id, gated.status()));
      IngestFailedCounter()->Increment();
      // Requests that die before submission still journal: the flight
      // recorder is the one place every terminal fate is accounted for.
      if (obs::FlightRecorder* recorder = service.options().flight_recorder;
          recorder != nullptr) {
        obs::FlightRecord record;
        record.request_id = customer_id;
        record.status = gated.status().code();
        record.status_message = gated.status().message();
        record.cause = obs::FlightCause::kIngestFailed;
        recorder->Record(std::move(record));
      }
      continue;
    }
    dma::AssessmentRequest request;
    request.customer_id = customer_id;
    request.target = options.target;
    request.database_traces = {std::move(gated->trace)};
    request.quality_policy = options.quality_policy;
    request.ingest_quality = std::move(gated->report);
    request.compute_confidence = options.compute_confidence;
    request.deadline = deadline;
    if (options.stage_hook_factory) {
      request.stage_boundary_hook = options.stage_hook_factory(customer_id);
    }
    StatusOr<std::future<ServeResponse>> admitted =
        service.Submit(std::move(request));
    if (!admitted.ok()) {
      report.responses.push_back(
          ErrorResponse(customer_id, admitted.status()));
      continue;
    }
    report.responses.push_back(ErrorResponse(customer_id, OkStatus()));
    pending.push_back({report.responses.size() - 1, std::move(*admitted)});
  }
  for (Pending& entry : pending) {
    report.responses[entry.slot] = entry.future.get();
  }
  for (const ServeResponse& response : report.responses) {
    if (!response.status.ok()) ++report.failures;
  }
  return report;
}

std::string RenderSpoolReportJson(const SpoolReport& report,
                                  const AssessmentService::Stats& stats) {
  JsonWriter json;
  json.BeginObject();
  json.Key("requests").BeginArray();
  for (const ServeResponse& response : report.responses) {
    json.BeginObject();
    json.Key("customer_id").String(response.customer_id);
    json.Key("status").BeginObject();
    json.Key("code").String(StatusCodeToString(response.status.code()));
    json.Key("message").String(response.status.message());
    json.EndObject();
    json.Key("snapshot_epoch")
        .Int(static_cast<long long>(response.snapshot_epoch));
    json.Key("confidence_shed").Bool(response.confidence_shed);
    json.Key("completed_stages").BeginArray();
    for (const std::string& name :
         CompletedStageNames(response.completed_stages)) {
      json.String(name);
    }
    json.EndArray();
    if (response.outcome.has_value() &&
        (response.completed_stages & dma::kStageRecommend)) {
      json.Key("sku").String(response.outcome->elastic.sku.id);
      json.Key("monthly_cost").Number(response.outcome->elastic.monthly_cost);
      json.Key("throttling_probability")
          .Number(response.outcome->elastic.throttling_probability);
    }
    json.EndObject();
  }
  json.EndArray();
  json.Key("stats").BeginObject();
  json.Key("submitted").Int(static_cast<long long>(stats.submitted));
  json.Key("admitted").Int(static_cast<long long>(stats.admitted));
  json.Key("shed").Int(static_cast<long long>(stats.shed));
  json.Key("confidence_shed").Int(static_cast<long long>(stats.degraded));
  json.Key("completed").Int(static_cast<long long>(stats.completed));
  json.Key("expired").Int(static_cast<long long>(stats.expired));
  json.Key("failed").Int(static_cast<long long>(stats.failed));
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string RenderSpoolReportText(const SpoolReport& report,
                                  const AssessmentService::Stats& stats) {
  TablePrinter table({"customer", "status", "epoch", "SKU", "monthly"});
  for (const ServeResponse& response : report.responses) {
    std::string sku = "-";
    std::string monthly = "-";
    if (response.outcome.has_value() &&
        (response.completed_stages & dma::kStageRecommend)) {
      sku = response.outcome->elastic.sku.DisplayName();
      monthly = FormatDollars(response.outcome->elastic.monthly_cost, 0);
    }
    table.AddRow({response.customer_id,
                  StatusCodeToString(response.status.code()),
                  std::to_string(response.snapshot_epoch), sku, monthly});
  }
  std::ostringstream out;
  table.Print(out);
  out << "\nServed " << report.responses.size() - report.failures << "/"
      << report.responses.size() << " requests (admitted " << stats.admitted
      << ", shed " << stats.shed << ", expired " << stats.expired
      << ", confidence shed " << stats.degraded << ")\n";
  return out.str();
}

}  // namespace doppler::serve
