#ifndef DOPPLER_SERVE_SNAPSHOT_REGISTRY_H_
#define DOPPLER_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dma/pipeline.h"

namespace doppler::serve {

/// Additional per-target pipelines of one serving generation, in the
/// deterministic order the targets were requested: each entry is (target
/// id, pipeline compiled for that TargetSpec's catalog).
using TargetPipelineList = std::vector<
    std::pair<std::string, std::shared_ptr<const dma::SkuRecommendationPipeline>>>;

/// One immutable serving generation: the compiled pipeline (which owns the
/// CompiledCatalog snapshot, pricing, recommenders and SKU-scoring pool)
/// plus a monotonically increasing epoch number for tracing which catalog
/// generation served a given response.
struct ServingSnapshot {
  std::uint64_t epoch = 0;
  /// Immutable after construction; safe to read from any worker.
  std::shared_ptr<const dma::SkuRecommendationPipeline> pipeline;
  /// Per-target pipelines published under the SAME epoch (one
  /// CompiledCatalog per requested target; `doppler serve --targets`).
  /// Empty for single-target serving. Readers pin the whole set with one
  /// Acquire(), so every target answers from the same generation.
  TargetPipelineList target_pipelines;
};

/// RCU-style holder of the current serving snapshot. Readers Acquire() a
/// shared_ptr pin (a refcount bump under a mutex held only for the copy)
/// and keep assessing against it for the request's whole lifetime; Swap()
/// publishes a repriced/recompiled pipeline by replacing that pointer.
/// In-flight requests finish on the epoch they pinned — the old snapshot
/// is destroyed only when its last pin drops — so a catalog reprice NEVER
/// stalls or perturbs traffic already admitted.
///
/// Not std::atomic<std::shared_ptr<>>: libstdc++ 12's _Sp_atomic unlocks
/// the reader side with a relaxed fetch_sub, so its plain read of the
/// stored pointer carries no release edge against the writer's plain
/// store — ThreadSanitizer reports that as a data race (correctly, per
/// the abstract machine, though it is benign on real hardware). A mutex
/// held for a pointer copy is verifiable, and at one Acquire() per
/// admitted request it is invisible next to a multi-millisecond
/// assessment.
class SnapshotRegistry {
 public:
  /// Installs the initial snapshot as epoch 1, together with any
  /// per-target pipelines that should share its epoch.
  explicit SnapshotRegistry(
      std::shared_ptr<const dma::SkuRecommendationPipeline> initial,
      TargetPipelineList target_pipelines = {});

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Pins the current snapshot (one refcount bump under mu_).
  ServingSnapshot Acquire() const;

  /// Publishes `next` (and its per-target pipelines) as the new current
  /// snapshot and returns its epoch. Writers are expected to be rare (a
  /// reprice, a SIGHUP); concurrent swaps serialise on mu_ and each still
  /// gets a unique epoch.
  std::uint64_t Swap(
      std::shared_ptr<const dma::SkuRecommendationPipeline> next,
      TargetPipelineList target_pipelines = {});

  /// Epoch of the snapshot Swap installed most recently (1 = initial).
  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  /// Guards current_ for the duration of a pointer copy/replace only;
  /// never held across assessment work.
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace doppler::serve

#endif  // DOPPLER_SERVE_SNAPSHOT_REGISTRY_H_
