#ifndef DOPPLER_SERVE_BACKOFF_H_
#define DOPPLER_SERVE_BACKOFF_H_

#include <functional>

#include "util/deadline.h"
#include "util/random.h"
#include "util/status.h"

namespace doppler::serve {

/// Jittered exponential backoff for transient failures (a spool file still
/// being written, an injected I/O fault). Attempt k waits
/// initial * multiplier^(k-1), capped at `max_delay_seconds`, then
/// multiplied by a uniform jitter in [1 - jitter, 1] so a burst of
/// requests retrying the same hot file decorrelates instead of
/// thundering back in lockstep.
struct BackoffPolicy {
  int max_attempts = 4;
  double initial_delay_seconds = 0.005;
  double multiplier = 2.0;
  double max_delay_seconds = 0.25;
  /// Fraction of the delay randomised away, in [0, 1).
  double jitter = 0.5;
};

/// The delay before retry `attempt` (1-based: the wait after the attempt'th
/// failure), jittered from `rng`. Deterministic for a given Rng stream.
double BackoffDelaySeconds(const BackoffPolicy& policy, int attempt, Rng* rng);

/// Runs `op` until it succeeds, fails terminally, or the budget runs out.
/// Only kUnavailable is treated as transient; any other error returns
/// immediately. Between attempts the caller sleeps the jittered delay —
/// but never past `deadline`: when the deadline cannot cover the next
/// delay (or has already expired) the wait is abandoned and
/// kDeadlineExceeded is returned, so a retry loop can never hold a
/// request beyond its budget. Exhausting max_attempts returns the last
/// transient status.
Status RetryWithBackoff(const BackoffPolicy& policy, const Deadline& deadline,
                        const std::function<Status()>& op, Rng* rng);

}  // namespace doppler::serve

#endif  // DOPPLER_SERVE_BACKOFF_H_
