#ifndef DOPPLER_SERVE_ASSESSMENT_SERVICE_H_
#define DOPPLER_SERVE_ASSESSMENT_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "dma/pipeline.h"
#include "dma/request_context.h"
#include "exec/thread_pool.h"
#include "obs/flight_recorder.h"
#include "serve/snapshot_registry.h"
#include "util/statusor.h"

namespace doppler::serve {

/// Admission + execution knobs for the long-lived assessment service.
struct ServiceOptions {
  /// Assessment worker threads (request-level; each pinned snapshot's
  /// pipeline may additionally run its own SKU-scoring pool).
  int workers = 2;
  /// Bounded admission queue depth. A Submit finding the queue full is
  /// rejected immediately with kResourceExhausted — the service NEVER
  /// queues unboundedly and never blocks the submitter.
  int queue_depth = 64;
  /// Graceful degradation: when the queue is at least this full (as a
  /// fraction of queue_depth) at admission time, the confidence-resampling
  /// stage — the most expensive optional stage, and the cheapest quality
  /// loss since it only annotates the recommendation with a bootstrap
  /// agreement score — is shed from the request before whole requests are.
  double degrade_watermark = 0.75;
  /// Optional terminal-request journal (borrowed, may be nullptr). Every
  /// request that reaches a terminal state — completed, shed at admission,
  /// expired, or failed — appends one FlightRecord. Recording never alters
  /// assessment results: reports are byte-identical recorder on or off.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Terminal record of one served request. `status` is always terminal:
/// kOk, kDeadlineExceeded (partial work, see completed_stages), or the
/// pipeline's own failure status; shed requests never construct one of
/// these (Submit rejects them synchronously).
struct ServeResponse {
  std::string customer_id;
  Status status;
  /// Stages that ran to completion (dma::Stage flags) — the full mask on
  /// kOk, the completed prefix when the deadline expired mid-pipeline.
  dma::StageMask completed_stages = 0;
  /// Epoch of the catalog snapshot the request was pinned to.
  std::uint64_t snapshot_epoch = 0;
  /// True when overload pressure shed the confidence stage.
  bool confidence_shed = false;
  /// The (possibly partial) outcome; present whenever at least one stage
  /// completed, so deadline-expired responses still carry what they have.
  std::optional<dma::AssessmentOutcome> outcome;
};

/// The long-lived serving front of the SKU recommendation pipeline:
/// a bounded admission queue fanning requests across a fixed worker pool,
/// each request pinned to the SnapshotRegistry's current catalog snapshot
/// for its whole lifetime. Robustness properties:
///  - load shedding: a full queue rejects instantly (kResourceExhausted);
///  - cooperative deadlines: stage-boundary checks end expired requests
///    with kDeadlineExceeded and partial results;
///  - graceful degradation: sustained queue pressure sheds the confidence
///    stage before shedding whole requests;
///  - hot swap: Swap()ping the registry mid-flight never perturbs admitted
///    requests — they finish byte-identical on their pinned epoch.
class AssessmentService {
 public:
  /// Borrows `registry`, which must outlive the service.
  AssessmentService(SnapshotRegistry* registry, ServiceOptions options);

  /// Drains the admission queue (every admitted request still completes
  /// with a terminal status) and joins the workers.
  ~AssessmentService();

  AssessmentService(const AssessmentService&) = delete;
  AssessmentService& operator=(const AssessmentService&) = delete;

  /// Admits `request` or rejects it NOW: returns kResourceExhausted when
  /// the admission queue is full (the request is dropped, nothing blocks),
  /// otherwise a future that resolves to the request's terminal response.
  /// Thread-safe.
  StatusOr<std::future<ServeResponse>> Submit(dma::AssessmentRequest request);

  /// Point-in-time admission counters (monotonic since construction).
  /// submitted = admitted + shed; admitted = completed + expired + failed
  /// once the service drains.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t completed = 0;
    std::uint64_t expired = 0;
    std::uint64_t failed = 0;
  };
  Stats stats() const;

  /// Requests waiting for a worker (diagnostic; racy by nature).
  std::size_t QueueDepth() const;

  const ServiceOptions& options() const { return options_; }

 private:
  ServeResponse Process(dma::AssessmentRequest& request, bool confidence_shed,
                        double queue_wait_seconds);

  SnapshotRegistry* registry_;
  ServiceOptions options_;
  std::unique_ptr<exec::ThreadPool> pool_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace doppler::serve

#endif  // DOPPLER_SERVE_ASSESSMENT_SERVICE_H_
