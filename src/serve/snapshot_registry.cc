#include "serve/snapshot_registry.h"

#include <utility>

#include "obs/metrics.h"

namespace doppler::serve {

namespace {

std::shared_ptr<const ServingSnapshot> MakeSnapshot(
    std::uint64_t epoch,
    std::shared_ptr<const dma::SkuRecommendationPipeline> pipeline,
    TargetPipelineList target_pipelines) {
  auto snapshot = std::make_shared<ServingSnapshot>();
  snapshot->epoch = epoch;
  snapshot->pipeline = std::move(pipeline);
  snapshot->target_pipelines = std::move(target_pipelines);
  return snapshot;
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(
    std::shared_ptr<const dma::SkuRecommendationPipeline> initial,
    TargetPipelineList target_pipelines)
    : current_(MakeSnapshot(1, std::move(initial),
                            std::move(target_pipelines))) {
  epoch_.store(1, std::memory_order_release);
  // Publish the initial epoch too, so a stats snapshot taken before the
  // first Swap already shows epoch 1 instead of a missing gauge.
  obs::DefaultMetrics().GetGauge("serve.snapshot_epoch")->Set(1.0);
}

ServingSnapshot SnapshotRegistry::Acquire() const {
  std::shared_ptr<const ServingSnapshot> pin;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pin = current_;
  }
  return *pin;
}

std::uint64_t SnapshotRegistry::Swap(
    std::shared_ptr<const dma::SkuRecommendationPipeline> next,
    TargetPipelineList target_pipelines) {
  std::uint64_t epoch = 0;
  // The outgoing snapshot is released outside the lock: if this swap
  // drops the last pin, the old pipeline's destructor must not run with
  // mu_ held.
  std::shared_ptr<const ServingSnapshot> outgoing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_.load(std::memory_order_relaxed) + 1;
    outgoing = std::move(current_);
    current_ = MakeSnapshot(epoch, std::move(next),
                            std::move(target_pipelines));
    epoch_.store(epoch, std::memory_order_release);
  }
  outgoing.reset();
  static obs::Counter* const kSwaps =
      obs::DefaultMetrics().GetCounter("serve.snapshot_swaps");
  kSwaps->Increment();
  obs::DefaultMetrics().GetGauge("serve.snapshot_epoch")->Set(
      static_cast<double>(epoch));
  return epoch;
}

}  // namespace doppler::serve
