#include "core/recommender.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace doppler::core {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ResourceVector;

/// Records profiling dimensions the trace never carried: the assessment
/// narrowed Eq. 1's joint demand to the collected dimensions (which can
/// only understate throttling), so the pick is flagged as degraded.
void NoteDegradedDims(const std::vector<ResourceDim>& profile_dims,
                      const telemetry::PerfTrace& trace,
                      Recommendation* recommendation) {
  for (ResourceDim dim : profile_dims) {
    if (!trace.Has(dim)) recommendation->missing_profile_dims.push_back(dim);
  }
  recommendation->degraded = !recommendation->missing_profile_dims.empty();
  if (!recommendation->degraded) return;
  static obs::Counter* const kDegraded =
      obs::DefaultMetrics().GetCounter("recommend.degraded");
  kDegraded->Increment();
  std::string names;
  for (ResourceDim dim : recommendation->missing_profile_dims) {
    if (!names.empty()) names += ", ";
    names += catalog::ResourceDimName(dim);
  }
  recommendation->rationale +=
      " [degraded: " + names + " not collected; throttling may be "
      "understated]";
}

}  // namespace

ElasticRecommender::ElasticRecommender(const catalog::CompiledCatalog* compiled,
                                       const ThrottlingEstimator* estimator,
                                       const CustomerProfiler* profiler,
                                       const GroupModel* group_model,
                                       Options options)
    : compiled_(compiled),
      estimator_(estimator),
      profiler_(profiler),
      group_model_(group_model),
      options_(options) {}

ElasticRecommender::ElasticRecommender(const catalog::CompiledCatalog* compiled,
                                       const ThrottlingEstimator* estimator,
                                       const CustomerProfiler* profiler,
                                       const GroupModel* group_model)
    : ElasticRecommender(compiled, estimator, profiler, group_model,
                         Options()) {}

StatusOr<Recommendation> ElasticRecommender::RecommendDb(
    const telemetry::PerfTrace& trace,
    const telemetry::TraceStatsCache* stats) const {
  const catalog::CompiledView candidates =
      compiled_->ForDeployment(Deployment::kSqlDb).view();
  if (candidates.empty()) {
    return FailedPreconditionError("catalog contains no SQL DB SKUs");
  }
  DOPPLER_ASSIGN_OR_RETURN(
      PricePerformanceCurve curve,
      PricePerformanceCurve::Build(trace, candidates, compiled_->pricing(),
                                   *estimator_, executor_, stats));
  return SelectFromCurve(std::move(curve), trace, stats);
}

StatusOr<Recommendation> ElasticRecommender::RecommendMi(
    const telemetry::PerfTrace& trace, const catalog::FileLayout& layout,
    const telemetry::TraceStatsCache* stats) const {
  DOPPLER_ASSIGN_OR_RETURN(
      MiCompiledFilterResult filtered,
      FilterMiCandidates(*compiled_, layout, trace, {}, stats));
  DOPPLER_ASSIGN_OR_RETURN(
      PricePerformanceCurve curve,
      PricePerformanceCurve::Build(trace, filtered.candidates,
                                   compiled_->pricing(), *estimator_,
                                   executor_, stats, &compiled_->target()));
  DOPPLER_ASSIGN_OR_RETURN(Recommendation recommendation,
                           SelectFromCurve(std::move(curve), trace, stats));
  if (filtered.restricted_to_bc) {
    recommendation.rationale +=
        " (GP premium-disk layouts could not reach 95% IOPS/throughput "
        "satisfaction; search restricted to Business Critical)";
  }
  return recommendation;
}

StatusOr<Recommendation> ElasticRecommender::Recommend(
    const telemetry::PerfTrace& trace, Deployment deployment,
    const catalog::FileLayout& layout,
    const telemetry::TraceStatsCache* stats) const {
  if (deployment == Deployment::kSqlDb) return RecommendDb(trace, stats);
  return RecommendMi(trace, layout, stats);
}

namespace {

// Curve-type tally (paper §5.1 reports the fleet-wide flat/simple/complex
// split); one increment per recommendation produced.
void CountCurveShape(CurveShape shape) {
  static obs::Counter* const kFlat =
      obs::DefaultMetrics().GetCounter("recommend.curve.flat");
  static obs::Counter* const kSimple =
      obs::DefaultMetrics().GetCounter("recommend.curve.simple");
  static obs::Counter* const kComplex =
      obs::DefaultMetrics().GetCounter("recommend.curve.complex");
  switch (shape) {
    case CurveShape::kFlat:
      kFlat->Increment();
      break;
    case CurveShape::kSimple:
      kSimple->Increment();
      break;
    case CurveShape::kComplex:
      kComplex->Increment();
      break;
  }
}

}  // namespace

StatusOr<Recommendation> ElasticRecommender::SelectFromCurve(
    PricePerformanceCurve curve, const telemetry::PerfTrace& trace,
    const telemetry::TraceStatsCache* stats) const {
  DOPPLER_TRACE_SPAN("recommend.select");
  Recommendation recommendation;
  recommendation.curve_shape = curve.Classify(options_.classify_epsilon);
  CountCurveShape(recommendation.curve_shape);
  DOPPLER_LOG(kDebug) << "curve classified as "
                      << CurveShapeName(recommendation.curve_shape) << " over "
                      << curve.points().size() << " points";

  if (recommendation.curve_shape == CurveShape::kFlat) {
    // Every SKU satisfies the workload: the cheapest is the most
    // cost-efficient option (paper §5.1).
    DOPPLER_ASSIGN_OR_RETURN(
        PricePerformancePoint point,
        curve.CheapestFullySatisfying(options_.full_satisfaction_epsilon));
    recommendation.sku = point.sku;
    recommendation.monthly_cost = point.monthly_price;
    recommendation.throttling_probability = point.MonotoneProbability();
    recommendation.rationale =
        "flat price-performance curve: every relevant SKU meets 100% of the "
        "workload's needs, so the cheapest is optimal";
    NoteDegradedDims(profiler_->dims(), trace, &recommendation);
    recommendation.curve = std::move(curve);
    return recommendation;
  }

  // Profile the customer and pull the learned group target (Eqs. 2-6).
  StatusOr<CustomerProfile> profiled = [&] {
    DOPPLER_TRACE_SPAN("recommend.profile");
    return profiler_->Profile(trace, stats);
  }();
  DOPPLER_ASSIGN_OR_RETURN(CustomerProfile profile, std::move(profiled));
  recommendation.group_id = profile.group_id;
  recommendation.group_target = group_model_->TargetProbability(profile.group_id);

  DOPPLER_ASSIGN_OR_RETURN(
      PricePerformancePoint point,
      curve.ClosestBelowTarget(recommendation.group_target));
  recommendation.sku = point.sku;
  recommendation.monthly_cost = point.monthly_price;
  recommendation.throttling_probability = point.MonotoneProbability();

  std::string negotiable_dims;
  for (std::size_t i = 0; i < profile.summary.dims.size(); ++i) {
    if (profile.summary.negotiable[i]) {
      if (!negotiable_dims.empty()) negotiable_dims += ", ";
      negotiable_dims += catalog::ResourceDimName(profile.summary.dims[i]);
    }
  }
  recommendation.rationale =
      std::string(CurveShapeName(recommendation.curve_shape)) +
      " curve; profiled into group " + std::to_string(profile.group_id + 1) +
      (negotiable_dims.empty()
           ? " (no negotiable dimensions)"
           : " (negotiable: " + negotiable_dims + ")") +
      "; similar migrated customers settle at ~" +
      FormatPercent(recommendation.group_target, 1) +
      " throttling probability";
  NoteDegradedDims(profiler_->dims(), trace, &recommendation);
  recommendation.curve = std::move(curve);
  return recommendation;
}

BaselineRecommender::BaselineRecommender(
    const catalog::CompiledCatalog* compiled, double quantile)
    : compiled_(compiled), quantile_(quantile) {}

StatusOr<ResourceVector> BaselineRecommender::ScalarRequirements(
    const telemetry::PerfTrace& trace,
    const telemetry::TraceStatsCache* cache) const {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  ResourceVector needs;
  for (ResourceDim dim : trace.PresentDims()) {
    // Inverted dimensions need the LOW quantile: the tightest latency the
    // workload relies on.
    const double q = catalog::IsInvertedDim(dim) ? 1.0 - quantile_ : quantile_;
    // The cache holds the sorted series; stats::Quantile sorts a copy and
    // interpolates identically, so both paths agree bit for bit.
    needs.Set(dim, cache != nullptr
                       ? cache->Quantile(dim, q)
                       : stats::Quantile(trace.Values(dim), q));
  }
  return needs;
}

StatusOr<Recommendation> BaselineRecommender::Recommend(
    const telemetry::PerfTrace& trace, Deployment deployment,
    const telemetry::TraceStatsCache* cache) const {
  DOPPLER_ASSIGN_OR_RETURN(ResourceVector needs,
                           ScalarRequirements(trace, cache));
  const catalog::CompiledView candidates =
      compiled_->ForDeployment(deployment).view();
  if (candidates.empty()) {
    return FailedPreconditionError("catalog has no SKUs for the deployment");
  }
  // Compiled candidates are cheapest-first; the first SKU meeting every
  // scalar requirement wins. Capacities and the monthly bill read the
  // snapshot's memoized values — no per-call derivation.
  for (const catalog::CompiledEntry& entry : candidates) {
    const ResourceVector& caps = entry.capacities;
    bool fits = true;
    for (ResourceDim dim : needs.PresentDims()) {
      if (!caps.Has(dim)) continue;
      if (ResourceVector::Exceeds(dim, needs.Get(dim), caps.Get(dim))) {
        fits = false;
        break;
      }
    }
    if (fits) {
      Recommendation recommendation;
      recommendation.sku = *entry.sku;
      recommendation.monthly_cost = entry.monthly_price;
      recommendation.throttling_probability = 0.0;
      recommendation.rationale =
          "baseline: cheapest SKU meeting the " +
          FormatPercent(quantile_, 0) +
          " quantile of every collected counter";
      return recommendation;
    }
  }
  return NotFoundError(
      "baseline strategy found no SKU meeting every scalar requirement");
}

}  // namespace doppler::core
