#include "core/mi_filter.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace doppler::core {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ServiceTier;
using catalog::Sku;

// Fraction of samples where `values[i] <= limit`.
double SatisfiedFraction(const std::vector<double>& values, double limit) {
  if (values.empty()) return 1.0;
  std::size_t satisfied = 0;
  for (double v : values) {
    if (v <= limit) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(values.size());
}

}  // namespace

StatusOr<MiFilterResult> FilterMiCandidates(
    const catalog::SkuCatalog& catalog, const catalog::FileLayout& layout,
    const telemetry::PerfTrace& trace, const MiFilterOptions& options) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  DOPPLER_TRACE_SPAN("ppm.mi_filter");
  DOPPLER_ASSIGN_OR_RETURN(catalog::LayoutLimits limits,
                           catalog::ComputeLayoutLimits(layout));

  // Storage requirement: the layout itself, or the observed allocated size
  // when the trace reports more.
  double storage_need = limits.total_size_gib;
  if (trace.Has(ResourceDim::kStorageGb)) {
    const std::vector<double>& storage = trace.Values(ResourceDim::kStorageGb);
    storage_need =
        std::max(storage_need, *std::max_element(storage.begin(), storage.end()));
  }

  // Workload throughput proxy per sample: data IO volume plus log writes.
  std::vector<double> throughput_mibps;
  if (trace.Has(ResourceDim::kIops)) {
    const std::vector<double>& iops = trace.Values(ResourceDim::kIops);
    throughput_mibps.resize(iops.size());
    for (std::size_t i = 0; i < iops.size(); ++i) {
      throughput_mibps[i] = iops[i] * options.mib_per_io;
      if (trace.Has(ResourceDim::kLogRateMbps)) {
        throughput_mibps[i] += trace.Values(ResourceDim::kLogRateMbps)[i];
      }
    }
  }

  const double iops_ok =
      trace.Has(ResourceDim::kIops)
          ? SatisfiedFraction(trace.Values(ResourceDim::kIops),
                              limits.total_iops)
          : 1.0;
  const double throughput_ok =
      SatisfiedFraction(throughput_mibps, limits.total_throughput_mibps);

  const bool gp_layout_ok = iops_ok >= options.iops_satisfaction &&
                            throughput_ok >= options.throughput_satisfaction;

  MiFilterResult result;
  result.layout_limits = limits;
  result.restricted_to_bc = !gp_layout_ok;

  const std::vector<Sku> mi_skus = catalog.ForDeployment(Deployment::kSqlMi);
  if (mi_skus.empty()) {
    return FailedPreconditionError("catalog contains no SQL MI SKUs");
  }

  for (const Sku& sku : mi_skus) {
    // Storage must be met at 100% (options.storage_satisfaction of it).
    if (sku.max_data_gb < storage_need * options.storage_satisfaction) {
      continue;
    }
    if (sku.tier == ServiceTier::kGeneralPurpose) {
      if (!gp_layout_ok) continue;  // Step 1: GP dropped, BC only.
      // Step 2: the effective GP IOPS limit is the sum over the data
      // files' disks, never above the instance cap.
      const double effective_iops = std::min(limits.total_iops, sku.max_iops);
      result.candidates.push_back({sku, effective_iops});
    } else {
      // BC runs on local SSD; the SKU record's limits apply.
      result.candidates.push_back({sku, -1.0});
    }
  }

  if (result.candidates.empty()) {
    return NotFoundError(
        "no MI SKU can host the layout (storage need " +
        std::to_string(storage_need) + " GB)");
  }
  static obs::Counter* const kCandidates =
      obs::DefaultMetrics().GetCounter("ppm.mi_candidates");
  static obs::Counter* const kRestricted =
      obs::DefaultMetrics().GetCounter("ppm.mi_restricted_to_bc");
  kCandidates->Increment(result.candidates.size());
  if (result.restricted_to_bc) kRestricted->Increment();
  return result;
}

}  // namespace doppler::core
