#include "core/mi_filter.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace doppler::core {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;
using catalog::ServiceTier;
using catalog::Sku;

// Fraction of samples where `values[i] <= limit`.
double SatisfiedFraction(const std::vector<double>& values, double limit) {
  if (values.empty()) return 1.0;
  std::size_t satisfied = 0;
  for (double v : values) {
    if (v <= limit) ++satisfied;
  }
  return static_cast<double>(satisfied) / static_cast<double>(values.size());
}

// Trace-derived requirements shared by both overloads: the storage need
// and whether the layout's premium-disk limits clear the paper's Step 1
// satisfaction bars for General Purpose.
struct MiRequirements {
  double storage_need = 0.0;
  bool gp_layout_ok = false;
};

// Fraction of samples where `values[i] <= limit`, by binary search on a
// sorted series: the same integer count SatisfiedFraction produces over
// the unsorted series, divided by the same n — bit-identical.
double SatisfiedFractionSorted(const std::vector<double>& sorted,
                               double limit) {
  if (sorted.empty()) return 1.0;
  const std::size_t satisfied = static_cast<std::size_t>(
      std::upper_bound(sorted.begin(), sorted.end(), limit) - sorted.begin());
  return static_cast<double>(satisfied) / static_cast<double>(sorted.size());
}

MiRequirements ComputeMiRequirements(const telemetry::PerfTrace& trace,
                                     const catalog::LayoutLimits& limits,
                                     const MiFilterOptions& options,
                                     const telemetry::TraceStatsCache* stats) {
  MiRequirements req;
  // Only a cache over this exact trace object can stand in for its series.
  if (stats != nullptr && &stats->trace() != &trace) stats = nullptr;

  // Storage requirement: the layout itself, or the observed allocated size
  // when the trace reports more.
  req.storage_need = limits.total_size_gib;
  if (trace.Has(ResourceDim::kStorageGb)) {
    const std::vector<double>& storage = trace.Values(ResourceDim::kStorageGb);
    req.storage_need = std::max(
        req.storage_need, *std::max_element(storage.begin(), storage.end()));
  }

  // Workload throughput proxy per sample: data IO volume plus log writes.
  std::vector<double> throughput_mibps;
  if (trace.Has(ResourceDim::kIops)) {
    const std::vector<double>& iops = trace.Values(ResourceDim::kIops);
    throughput_mibps.resize(iops.size());
    for (std::size_t i = 0; i < iops.size(); ++i) {
      throughput_mibps[i] = iops[i] * options.mib_per_io;
      if (trace.Has(ResourceDim::kLogRateMbps)) {
        throughput_mibps[i] += trace.Values(ResourceDim::kLogRateMbps)[i];
      }
    }
  }

  // The IOPS bar reads a raw trace column, so the memoized sorted series
  // answers it by binary search. The throughput proxy is derived per call
  // (IOPS x IO size + log rate) and stays a linear scan.
  const double iops_ok =
      trace.Has(ResourceDim::kIops)
          ? (stats != nullptr
                 ? SatisfiedFractionSorted(stats->Sorted(ResourceDim::kIops),
                                           limits.total_iops)
                 : SatisfiedFraction(trace.Values(ResourceDim::kIops),
                                     limits.total_iops))
          : 1.0;
  const double throughput_ok =
      SatisfiedFraction(throughput_mibps, limits.total_throughput_mibps);

  req.gp_layout_ok = iops_ok >= options.iops_satisfaction &&
                     throughput_ok >= options.throughput_satisfaction;
  return req;
}

// Steps 1-3 keep/drop decision for one SKU; fills `iops_limit` with the
// effective override (negative = use the SKU record).
bool KeepMiCandidate(const Sku& sku, const MiRequirements& req,
                     const catalog::LayoutLimits& limits,
                     const MiFilterOptions& options, double* iops_limit) {
  // Storage must be met at 100% (options.storage_satisfaction of it).
  if (sku.max_data_gb < req.storage_need * options.storage_satisfaction) {
    return false;
  }
  if (sku.tier == ServiceTier::kGeneralPurpose) {
    if (!req.gp_layout_ok) return false;  // Step 1: GP dropped, BC only.
    // Step 2: the effective GP IOPS limit is the sum over the data files'
    // disks, never above the instance cap.
    *iops_limit = std::min(limits.total_iops, sku.max_iops);
  } else {
    // BC runs on local SSD; the SKU record's limits apply.
    *iops_limit = -1.0;
  }
  return true;
}

void CountMiFilterOutcome(std::size_t num_candidates, bool restricted_to_bc) {
  static obs::Counter* const kCandidates =
      obs::DefaultMetrics().GetCounter("ppm.mi_candidates");
  static obs::Counter* const kRestricted =
      obs::DefaultMetrics().GetCounter("ppm.mi_restricted_to_bc");
  kCandidates->Increment(num_candidates);
  if (restricted_to_bc) kRestricted->Increment();
}

}  // namespace

StatusOr<MiCompiledFilterResult> FilterMiCandidates(
    const catalog::CompiledCatalog& compiled, const catalog::FileLayout& layout,
    const telemetry::PerfTrace& trace, const MiFilterOptions& options,
    const telemetry::TraceStatsCache* stats) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  DOPPLER_TRACE_SPAN("ppm.mi_filter");
  DOPPLER_ASSIGN_OR_RETURN(catalog::LayoutLimits limits,
                           compiled.LayoutLimitsFor(layout));
  const MiRequirements req =
      ComputeMiRequirements(trace, limits, options, stats);

  MiCompiledFilterResult result;
  result.layout_limits = limits;
  result.restricted_to_bc = !req.gp_layout_ok;

  const catalog::CompiledView mi_view =
      compiled.ForDeployment(Deployment::kSqlMi).view();
  if (mi_view.empty()) {
    return FailedPreconditionError("catalog contains no SQL MI SKUs");
  }

  for (const catalog::CompiledEntry& entry : mi_view) {
    double iops_limit = -1.0;
    if (KeepMiCandidate(*entry.sku, req, limits, options, &iops_limit)) {
      result.candidates.push_back({&entry, iops_limit});
    }
  }

  if (result.candidates.empty()) {
    return NotFoundError(
        "no MI SKU can host the layout (storage need " +
        std::to_string(req.storage_need) + " GB)");
  }
  CountMiFilterOutcome(result.candidates.size(), result.restricted_to_bc);
  return result;
}

}  // namespace doppler::core
