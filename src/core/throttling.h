#ifndef DOPPLER_CORE_THROTTLING_H_
#define DOPPLER_CORE_THROTTLING_H_

#include <array>
#include <mutex>
#include <optional>
#include <vector>

#include "catalog/compiled_catalog.h"
#include "catalog/resource.h"
#include "stats/kde.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/statusor.h"

namespace doppler::exec {
class ThreadPool;
}

namespace doppler::core {

/// A per-row capacity series for ONE dimension: capacity[t] is the limit in
/// force at the trace's t-th sample. This is how serverless autoscale enters
/// paper Eq. 1 — the provisioned capacity R_cpu becomes a function of time
/// (the simulated autoscaler lags demand; core/autoscale.h), so the
/// exceedance test for that dimension compares row against row instead of
/// row against a constant.
struct MovingCapacity {
  catalog::ResourceDim dim = catalog::ResourceDim::kCpu;
  /// One entry per trace sample, same row order as the trace columns.
  std::vector<double> capacity;
};

/// Estimates the probability that a workload would hit resource throttling
/// on a target with the given capacities (paper Eq. 1):
///
///   P_n(SKU_i) = P(r_cpu > R_cpu  U  r_ram > R_ram  U ... )
///
/// with the IO-latency dimension inverted (the workload is throttled when
/// the target cannot deliver latency as low as the workload needs). Only
/// dimensions present in BOTH the trace and the capacity vector take part.
class ThrottlingEstimator {
 public:
  virtual ~ThrottlingEstimator() = default;

  /// P(any modelled dimension exceeds capacity) in [0, 1]. Fails with
  /// INVALID_ARGUMENT on an empty trace or when no dimension is shared
  /// between trace and capacities.
  virtual StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const = 0;

  /// Batch counterpart for curve building: the throttling probability of
  /// every capacity vector against ONE shared trace, in candidate order.
  /// Fails with the error of the first (in candidate order) failing
  /// candidate, matching a serial loop of Probability calls. With a
  /// non-null `executor`, candidates are partitioned across the pool in
  /// deterministic chunks; `stats` optionally shares memoized per-dimension
  /// sorted state (ignored unless it caches this exact trace object).
  ///
  /// The base implementation simply loops Probability; estimators with
  /// amortisable per-trace state override it (NonParametricEstimator builds
  /// an ExceedanceIndex, DESIGN.md §9). Overrides must stay bit-identical
  /// to the per-candidate loop — this is an evaluation-strategy hook, not a
  /// semantics hook.
  virtual StatusOr<std::vector<double>> EstimateCurveProbabilities(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceVector>& capacities,
      exec::ThreadPool* executor = nullptr,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// Convenience overload over a compiled deployment view (no IOPS
  /// overrides): evaluates every entry's memoized capacity vector.
  StatusOr<std::vector<double>> EstimateCurveProbabilities(
      const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
      exec::ThreadPool* executor = nullptr,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// Paper Eq. 1 with ONE dimension's capacity a function of time (the
  /// serverless autoscale extension): P(any dimension exceeds its limit)
  /// where `moving.dim`'s limit at row t is `moving.capacity[t]` and every
  /// other dimension keeps its constant limit from `capacities` (a constant
  /// entry for `moving.dim`, if present, is superseded by the series). The
  /// base implementation is the definitional row-major scan; overrides must
  /// stay bit-identical to it. Fails with INVALID_ARGUMENT when the series
  /// length differs from the trace, the trace lacks `moving.dim`, the trace
  /// is empty, or no dimension is shared.
  virtual StatusOr<double> ProbabilityMoving(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities,
      const MovingCapacity& moving) const;

  /// Human-readable estimator name for benchmark output.
  virtual const char* name() const = 0;
};

/// The production estimator (paper §3.2, "non-parametric multi-variate"):
/// the joint frequency, over time points, of any dimension exceeding its
/// capacity. Exact with respect to the empirical joint distribution, O(n·d)
/// per SKU, and the reason Doppler scales to full catalogs.
///
/// Implemented as a columnar kernel: the trace's contiguous per-dimension
/// columns (PerfTrace::Columns) are swept one at a time with an early-exit
/// union test, which keeps the scan cache-friendly and allocation-free on
/// the hot path. Thread-safe: concurrent Probability calls on shared traces
/// are the unit of work the parallel curve build fans out.
class NonParametricEstimator : public ThrottlingEstimator {
 public:
  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;

  /// Amortized batch path (DESIGN.md §9): builds one ExceedanceIndex over
  /// the union of candidate dimensions — argsort once per dimension,
  /// exceedance bitsets memoized per distinct capacity value — then counts
  /// each candidate's union by word-wise OR + popcount, O(d·n/64) per SKU.
  /// Bit-identical to looping Probability: both count exactly the rows
  /// where any shared dimension exceeds its capacity and divide by n.
  StatusOr<std::vector<double>> EstimateCurveProbabilities(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceVector>& capacities,
      exec::ThreadPool* executor = nullptr,
      const telemetry::TraceStatsCache* stats = nullptr) const override;
  using ThrottlingEstimator::EstimateCurveProbabilities;

  /// Index-backed moving-capacity path: the constant dimensions reuse the
  /// memoized exceedance bitsets; the moving dimension builds its bitset by
  /// a direct row-vs-row compare (ExceedanceIndex::CountExceedingUnionMoving).
  /// Bit-identical to the base row-major scan.
  StatusOr<double> ProbabilityMoving(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities,
      const MovingCapacity& moving) const override;

  const char* name() const override { return "non-parametric"; }
};

/// The smoothed alternative the paper evaluated and rejected on runtime
/// grounds (§3.2, "Gaussian smoothing"): a Gaussian KDE per dimension with
/// Silverman bandwidth; the joint exceedance combines the per-dimension
/// exceedances under an independence approximation,
/// P(any) = 1 - prod_d (1 - e_d).
///
/// Unbound (default constructor), the KDE is copied out of the trace and
/// re-fit on every call — the per-call cost the paper rejected, kept as-is
/// so the bench_perf_engine ablation still quantifies it. Bound to a
/// TraceStatsCache, calls whose trace IS the cache's trace fit each
/// dimension once from the cache's memoized sorted series and reuse the
/// fit, so the §3.2 estimator comparison measures the smoothing model
/// rather than redundant sorting and re-fitting. Note the bound path sums
/// the kernel CDF over the sample in sorted order, so results may differ
/// from the unbound path by floating-point summation order (never used on
/// the golden path, which is non-parametric).
class KdeEstimator : public ThrottlingEstimator {
 public:
  KdeEstimator() = default;

  /// Binds `stats` (borrowed; must outlive the estimator). Calls with any
  /// other trace fall back to the unbound per-call fit.
  explicit KdeEstimator(const telemetry::TraceStatsCache* stats)
      : stats_(stats) {}

  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;
  const char* name() const override { return "gaussian-kde"; }

 private:
  /// The memoized fit for one dimension of the bound cache's trace; fits on
  /// first use. The pointer stays valid for the estimator's lifetime.
  StatusOr<const stats::GaussianKde*> FittedKde(catalog::ResourceDim dim) const;

  const telemetry::TraceStatsCache* stats_ = nullptr;
  // Memoized per-dimension fits over stats_'s sorted series, built lazily
  // under the mutex so concurrent Probability calls may share them.
  mutable std::mutex mu_;
  mutable std::array<std::optional<stats::GaussianKde>,
                     catalog::kNumResourceDims>
      fitted_;
};

/// The copula-family alternative the paper cites (§3.2, "multivariate
/// kernel density estimation based on vine copulas"): a Gaussian copula
/// over empirical marginals. Marginals are rank-transformed to normal
/// scores, their correlation matrix is estimated, and the joint exceedance
/// is evaluated by Monte Carlo: sample correlated normals, map back
/// through the empirical quantile functions, count samples exceeding any
/// capacity. Unlike KdeEstimator's independence approximation this models
/// cross-dimension dependence, at a further runtime cost — which is the
/// paper's reason for rejecting the family in production.
class GaussianCopulaEstimator : public ThrottlingEstimator {
 public:
  /// `monte_carlo_samples` trades accuracy for runtime; `seed` fixes the
  /// sampling so estimates are reproducible.
  explicit GaussianCopulaEstimator(int monte_carlo_samples = 4000,
                                   std::uint64_t seed = 97)
      : samples_(monte_carlo_samples), seed_(seed) {}

  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;
  const char* name() const override { return "gaussian-copula"; }

 private:
  int samples_;
  std::uint64_t seed_;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_THROTTLING_H_
