#ifndef DOPPLER_CORE_THROTTLING_H_
#define DOPPLER_CORE_THROTTLING_H_

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::core {

/// Estimates the probability that a workload would hit resource throttling
/// on a target with the given capacities (paper Eq. 1):
///
///   P_n(SKU_i) = P(r_cpu > R_cpu  U  r_ram > R_ram  U ... )
///
/// with the IO-latency dimension inverted (the workload is throttled when
/// the target cannot deliver latency as low as the workload needs). Only
/// dimensions present in BOTH the trace and the capacity vector take part.
class ThrottlingEstimator {
 public:
  virtual ~ThrottlingEstimator() = default;

  /// P(any modelled dimension exceeds capacity) in [0, 1]. Fails with
  /// INVALID_ARGUMENT on an empty trace or when no dimension is shared
  /// between trace and capacities.
  virtual StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const = 0;

  /// Human-readable estimator name for benchmark output.
  virtual const char* name() const = 0;
};

/// The production estimator (paper §3.2, "non-parametric multi-variate"):
/// the joint frequency, over time points, of any dimension exceeding its
/// capacity. Exact with respect to the empirical joint distribution, O(n·d)
/// per SKU, and the reason Doppler scales to full catalogs.
///
/// Implemented as a columnar kernel: the trace's contiguous per-dimension
/// columns (PerfTrace::Columns) are swept one at a time with an early-exit
/// union test, which keeps the scan cache-friendly and allocation-free on
/// the hot path. Thread-safe: concurrent Probability calls on shared traces
/// are the unit of work the parallel curve build fans out.
class NonParametricEstimator : public ThrottlingEstimator {
 public:
  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;
  const char* name() const override { return "non-parametric"; }
};

/// The smoothed alternative the paper evaluated and rejected on runtime
/// grounds (§3.2, "Gaussian smoothing"): a Gaussian KDE per dimension with
/// Silverman bandwidth; the joint exceedance combines the per-dimension
/// exceedances under an independence approximation,
/// P(any) = 1 - prod_d (1 - e_d). The KDE is re-fit per call, which is what
/// makes curve generation over a 150+-SKU catalog impractical — the
/// bench_perf_engine benchmark quantifies the gap.
class KdeEstimator : public ThrottlingEstimator {
 public:
  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;
  const char* name() const override { return "gaussian-kde"; }
};

/// The copula-family alternative the paper cites (§3.2, "multivariate
/// kernel density estimation based on vine copulas"): a Gaussian copula
/// over empirical marginals. Marginals are rank-transformed to normal
/// scores, their correlation matrix is estimated, and the joint exceedance
/// is evaluated by Monte Carlo: sample correlated normals, map back
/// through the empirical quantile functions, count samples exceeding any
/// capacity. Unlike KdeEstimator's independence approximation this models
/// cross-dimension dependence, at a further runtime cost — which is the
/// paper's reason for rejecting the family in production.
class GaussianCopulaEstimator : public ThrottlingEstimator {
 public:
  /// `monte_carlo_samples` trades accuracy for runtime; `seed` fixes the
  /// sampling so estimates are reproducible.
  explicit GaussianCopulaEstimator(int monte_carlo_samples = 4000,
                                   std::uint64_t seed = 97)
      : samples_(monte_carlo_samples), seed_(seed) {}

  StatusOr<double> Probability(
      const telemetry::PerfTrace& trace,
      const catalog::ResourceVector& capacities) const override;
  const char* name() const override { return "gaussian-copula"; }

 private:
  int samples_;
  std::uint64_t seed_;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_THROTTLING_H_
