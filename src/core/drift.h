#ifndef DOPPLER_CORE_DRIFT_H_
#define DOPPLER_CORE_DRIFT_H_

#include <string>
#include <vector>

#include "core/price_performance.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::core {

/// Automated SKU-change detection (paper §5.2.3: "Since changes in
/// resource utilization patterns trigger changes in the price-performance
/// curves, Doppler can automatically detect the need to change SKUs to
/// accommodate changing workload requirements"). The detector splits the
/// customer's telemetry into a baseline window and a recent window, builds
/// the curve on each, and compares where the current SKU lands.

struct DriftReport {
  /// Current SKU's monotone throttling probability on each window's curve.
  double baseline_probability = 0.0;
  double recent_probability = 0.0;
  /// True when the recent window pushes the current SKU past the
  /// tolerance while the baseline was within it — the Fig. 11 situation.
  bool needs_change = false;
  /// Cheapest SKU fully satisfying the recent window (empty id when none).
  std::string recommended_sku_id;
  std::string recommended_display_name;
  double recommended_monthly_cost = 0.0;
};

struct DriftOptions {
  /// Fraction of the trace forming the recent window (taken from the end).
  double recent_fraction = 0.3;
  /// Throttling probability above which the current SKU counts as
  /// outgrown.
  double tolerance = 0.05;
};

/// Runs the comparison over a compiled candidate view. Fails when the
/// trace is too short to split (each window needs at least two samples),
/// the candidate list is empty, or the current SKU is not among the
/// candidates.
StatusOr<DriftReport> DetectSkuDrift(const telemetry::PerfTrace& trace,
                                     catalog::CompiledView candidates,
                                     const catalog::PricingService& pricing,
                                     const ThrottlingEstimator& estimator,
                                     const std::string& current_sku_id,
                                     const DriftOptions& options = {});

}  // namespace doppler::core

#endif  // DOPPLER_CORE_DRIFT_H_
