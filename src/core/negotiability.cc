#include "core/negotiability.h"

#include <algorithm>
#include <cmath>

#include "stats/auc.h"
#include "stats/descriptive.h"
#include "stats/outliers.h"
#include "stats/stl.h"

namespace doppler::core {

StatusOr<NegotiabilityScores> NegotiabilityStrategy::Evaluate(
    const telemetry::PerfTrace& trace,
    const std::vector<catalog::ResourceDim>& dims,
    const telemetry::TraceStatsCache* stats) const {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  if (dims.empty()) {
    return InvalidArgumentError("no profiling dimensions given");
  }
  NegotiabilityScores result;
  result.dims = dims;
  result.scores.reserve(dims.size());
  result.negotiable.reserve(dims.size());
  for (catalog::ResourceDim dim : dims) {
    const double score =
        trace.Has(dim) ? ScoreSeriesWithStats(trace.Values(dim), stats, dim)
                       : 0.0;
    result.scores.push_back(score);
    result.negotiable.push_back(score > NegotiableCutoff());
  }
  return result;
}

double ThresholdingStrategy::SpikeDurationFraction(
    const std::vector<double>& values) {
  if (values.empty()) return 1.0;
  return SpikeDurationFraction(values, stats::Max(values),
                               stats::StdDev(values));
}

double ThresholdingStrategy::SpikeDurationFraction(
    const std::vector<double>& values, double max, double sd) {
  if (values.empty()) return 1.0;
  if (sd <= 0.0) return 1.0;  // A constant counter "peaks" the whole time.
  const double window_low = max - sd;
  std::size_t inside = 0;
  for (double v : values) {
    if (v >= window_low) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(values.size());
}

double ThresholdingStrategy::ScoreSeries(
    const std::vector<double>& values) const {
  return 1.0 - SpikeDurationFraction(values);
}

double ThresholdingStrategy::ScoreSeriesWithStats(
    const std::vector<double>& values,
    const telemetry::TraceStatsCache* stats, catalog::ResourceDim dim) const {
  if (stats == nullptr || values.empty()) return ScoreSeries(values);
  // Same Max/StdDev the uncached path computes, read from the memo; the
  // fraction itself is recomputed over the series either way, so the score
  // is bit-identical.
  return 1.0 -
         SpikeDurationFraction(values, stats->Max(dim), stats->StdDev(dim));
}

double MinMaxAucStrategy::ScoreSeries(const std::vector<double>& values) const {
  return stats::MinMaxScalerAuc(values);
}

double MaxAucStrategy::ScoreSeries(const std::vector<double>& values) const {
  return stats::MaxScalerAuc(values);
}

double OutlierPercentageStrategy::ScoreSeries(
    const std::vector<double>& values) const {
  // A 5% outlier mass is already extremely spiky; saturate there so the
  // score spans [0, 1] like the other strategies.
  return std::min(1.0, stats::OutlierFraction(values) / 0.05);
}

double StlVarianceStrategy::ScoreSeries(
    const std::vector<double>& values) const {
  stats::StlOptions options;
  options.period = period_;
  StatusOr<stats::StlDecomposition> decomposition =
      stats::DecomposeStl(values, options);
  if (!decomposition.ok()) {
    // Series shorter than two periods: fall back to treating all variance
    // beyond a flat mean as unexplained.
    const double var = stats::Variance(values);
    const double mean = stats::Mean(values);
    if (var <= 0.0 || mean == 0.0) return 0.0;
    return std::min(1.0, var / (mean * mean));
  }
  return 1.0 - decomposition->VarianceExplained(values);
}

double CombinedStrategy::ScoreSeries(const std::vector<double>& values) const {
  return 1.0 - ThresholdingStrategy::SpikeDurationFraction(values);
}

StatusOr<NegotiabilityScores> CombinedStrategy::EvaluateCombined(
    const telemetry::PerfTrace& trace,
    const std::vector<catalog::ResourceDim>& dims) const {
  DOPPLER_ASSIGN_OR_RETURN(NegotiabilityScores combined, Evaluate(trace, dims));
  MinMaxAucStrategy auc;
  DOPPLER_ASSIGN_OR_RETURN(NegotiabilityScores auc_scores,
                           auc.Evaluate(trace, dims));
  combined.scores.insert(combined.scores.end(), auc_scores.scores.begin(),
                         auc_scores.scores.end());
  return combined;
}

std::vector<std::shared_ptr<NegotiabilityStrategy>> AllStrategies(double rho) {
  return {
      std::make_shared<MinMaxAucStrategy>(),
      std::make_shared<MaxAucStrategy>(),
      std::make_shared<ThresholdingStrategy>(rho),
      std::make_shared<OutlierPercentageStrategy>(),
      std::make_shared<StlVarianceStrategy>(),
      std::make_shared<CombinedStrategy>(rho),
  };
}

}  // namespace doppler::core
