#include "core/profiler.h"

#include <cmath>

namespace doppler::core {

int GroupIdFromBits(const std::vector<bool>& negotiable) {
  int id = 0;
  for (std::size_t i = 0; i < negotiable.size(); ++i) {
    if (!negotiable[i]) id |= 1 << i;
  }
  return id;
}

std::vector<int> GroupBits(int group_id, std::size_t num_dims) {
  std::vector<int> bits(num_dims, 0);
  for (std::size_t i = 0; i < num_dims; ++i) {
    bits[i] = (group_id >> i) & 1;
  }
  return bits;
}

CustomerProfiler::CustomerProfiler(
    std::shared_ptr<NegotiabilityStrategy> strategy,
    std::vector<catalog::ResourceDim> dims)
    : strategy_(std::move(strategy)), dims_(std::move(dims)) {}

StatusOr<CustomerProfile> CustomerProfiler::Profile(
    const telemetry::PerfTrace& trace,
    const telemetry::TraceStatsCache* stats) const {
  if (strategy_ == nullptr) {
    return FailedPreconditionError("profiler has no strategy");
  }
  CustomerProfile profile;
  DOPPLER_ASSIGN_OR_RETURN(profile.summary,
                           strategy_->Evaluate(trace, dims_, stats));
  profile.group_id = GroupIdFromBits(profile.summary.negotiable);
  return profile;
}

StatusOr<GroupModel> GroupModel::Fit(
    const std::vector<std::pair<int, double>>& chosen) {
  if (chosen.empty()) {
    return InvalidArgumentError("cannot fit a group model on no customers");
  }
  GroupModel model;
  std::map<int, std::vector<double>> by_group;
  double total = 0.0;
  for (const auto& [group, probability] : chosen) {
    by_group[group].push_back(probability);
    total += probability;
  }
  model.global_mean_ = total / static_cast<double>(chosen.size());
  for (const auto& [group, probabilities] : by_group) {
    GroupStats stats;
    stats.group_id = group;
    stats.count = static_cast<int>(probabilities.size());
    double sum = 0.0;
    for (double p : probabilities) sum += p;
    stats.mean_probability = sum / static_cast<double>(probabilities.size());
    double sq = 0.0;
    for (double p : probabilities) {
      const double d = p - stats.mean_probability;
      sq += d * d;
    }
    stats.std_probability =
        std::sqrt(sq / static_cast<double>(probabilities.size()));
    stats.mean_score = 1.0 - stats.mean_probability;
    model.groups_[group] = stats;
  }
  return model;
}

StatusOr<GroupModel> GroupModel::FitWithPrior(
    const std::vector<std::pair<int, double>>& fresh, const GroupModel& prior,
    double prior_weight) {
  if (prior_weight < 0.0) {
    return InvalidArgumentError("prior weight must be non-negative");
  }
  if (fresh.empty()) return prior;
  DOPPLER_ASSIGN_OR_RETURN(GroupModel fresh_model, Fit(fresh));

  GroupModel blended;
  // Start from the prior's groups; blend or keep.
  for (const auto& [group, prior_stats] : prior.groups_) {
    const auto it = fresh_model.groups_.find(group);
    if (it == fresh_model.groups_.end()) {
      blended.groups_[group] = prior_stats;
      continue;
    }
    const GroupStats& fresh_stats = it->second;
    GroupStats merged = fresh_stats;
    const double denominator =
        prior_weight + static_cast<double>(fresh_stats.count);
    merged.mean_probability =
        (prior_weight * prior_stats.mean_probability +
         static_cast<double>(fresh_stats.count) *
             fresh_stats.mean_probability) /
        denominator;
    merged.mean_score = 1.0 - merged.mean_probability;
    merged.count = prior_stats.count + fresh_stats.count;
    blended.groups_[group] = merged;
  }
  // Groups only seen in the fresh data enter as-is.
  for (const auto& [group, fresh_stats] : fresh_model.groups_) {
    if (blended.groups_.find(group) == blended.groups_.end()) {
      blended.groups_[group] = fresh_stats;
    }
  }
  const double total_fresh = static_cast<double>(fresh.size());
  blended.global_mean_ =
      (prior_weight * prior.global_mean_ +
       total_fresh * fresh_model.global_mean_) /
      (prior_weight + total_fresh);
  return blended;
}

StatusOr<GroupModel> GroupModel::FromStats(std::vector<GroupStats> stats,
                                           double global_mean) {
  if (stats.empty()) {
    return InvalidArgumentError("group model needs at least one group");
  }
  GroupModel model;
  model.global_mean_ = global_mean;
  for (GroupStats& group : stats) {
    if (model.groups_.find(group.group_id) != model.groups_.end()) {
      return InvalidArgumentError("duplicate group id " +
                                  std::to_string(group.group_id));
    }
    group.mean_score = 1.0 - group.mean_probability;
    model.groups_[group.group_id] = std::move(group);
  }
  return model;
}

double GroupModel::TargetProbability(int group_id) const {
  const auto it = groups_.find(group_id);
  if (it == groups_.end()) return global_mean_;
  return it->second.mean_probability;
}

std::vector<GroupStats> GroupModel::AllGroups() const {
  std::vector<GroupStats> all;
  all.reserve(groups_.size());
  for (const auto& [_, stats] : groups_) all.push_back(stats);
  return all;
}

}  // namespace doppler::core
