#ifndef DOPPLER_CORE_PROFILER_H_
#define DOPPLER_CORE_PROFILER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/sku.h"
#include "core/negotiability.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::core {

/// A customer's workload profile: the negotiability summary plus the group
/// the customer enumerates into (paper Eq. 2: group membership is a
/// function of per-dimension negotiability).
struct CustomerProfile {
  NegotiabilityScores summary;
  /// Enumeration group id: bit i set iff dimension i (profile order) is
  /// NON-negotiable, so id 0 = fully negotiable, matching Table 3 where
  /// "0 denotes negotiable" and group 1 is (0,0,0).
  int group_id = 0;

  /// Number of dimensions profiled.
  std::size_t num_dims() const { return summary.dims.size(); }
};

/// Turns negotiable flags into the enumeration group id (bit per
/// non-negotiable dimension, profile order).
int GroupIdFromBits(const std::vector<bool>& negotiable);

/// Renders a group id back into 0/1 flags per dimension (0 = negotiable),
/// e.g. for printing Table 3 rows.
std::vector<int> GroupBits(int group_id, std::size_t num_dims);

/// Profiles customers with a chosen negotiability strategy and straight
/// 2^k enumeration — the configuration deployed in DMA (paper §5.2.1:
/// "the final strategy deployed in production utilizes the thresholding
/// algorithm, then employs straightforward enumeration").
class CustomerProfiler {
 public:
  /// `dims` are the profiling dimensions (ProfilingDims(deployment)).
  CustomerProfiler(std::shared_ptr<NegotiabilityStrategy> strategy,
                   std::vector<catalog::ResourceDim> dims);

  /// Profiles one performance history. A non-null `stats` cache (built over
  /// the same trace) lets the strategy reuse memoized per-dimension order
  /// statistics; the profile is bit-identical either way.
  StatusOr<CustomerProfile> Profile(
      const telemetry::PerfTrace& trace,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  const std::vector<catalog::ResourceDim>& dims() const { return dims_; }
  const NegotiabilityStrategy& strategy() const { return *strategy_; }

 private:
  std::shared_ptr<NegotiabilityStrategy> strategy_;
  std::vector<catalog::ResourceDim> dims_;
};

/// Per-group statistics over the migrated fleet: where customers of this
/// group fix their SKUs on their price-performance curves (paper Eq. 3 and
/// Table 3). "Score" is 1 - throttling probability of the chosen SKU.
struct GroupStats {
  int group_id = 0;
  int count = 0;
  double mean_probability = 0.0;  ///< Mean chosen-SKU throttling prob.
  double std_probability = 0.0;
  double mean_score = 1.0;        ///< 1 - mean_probability.
};

/// The learned mapping group -> typical chosen throttling probability,
/// fitted offline from migrated customers and shipped as static input to
/// the DMA tool (paper §4).
class GroupModel {
 public:
  /// Fits from (group id, chosen-SKU throttling probability) pairs.
  /// Fails on an empty sample.
  static StatusOr<GroupModel> Fit(
      const std::vector<std::pair<int, double>>& chosen);

  /// Fits from fresh pairs blended with a prior model: each group's target
  /// becomes (prior_weight * prior + n_g * mean_g) / (prior_weight + n_g),
  /// so a handful of new observations nudges rather than replaces the
  /// shipped profile (the §5.5 feedback-loop retraining step). Groups with
  /// no fresh data keep the prior's stats.
  static StatusOr<GroupModel> FitWithPrior(
      const std::vector<std::pair<int, double>>& fresh,
      const GroupModel& prior, double prior_weight);

  /// Reconstructs a model from previously computed statistics (the
  /// persistence path: DMA ships profiles as static files, §4). Fails on
  /// an empty stats list or duplicate group ids.
  static StatusOr<GroupModel> FromStats(std::vector<GroupStats> stats,
                                        double global_mean);

  /// Target probability for a group (paper Eq. 3). Unseen groups fall back
  /// to the global mean across all training customers.
  double TargetProbability(int group_id) const;

  /// Stats per observed group, ordered by group id.
  std::vector<GroupStats> AllGroups() const;

  /// Global mean chosen probability (the fallback).
  double global_mean() const { return global_mean_; }

 private:
  std::map<int, GroupStats> groups_;
  double global_mean_ = 0.0;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_PROFILER_H_
