#include "core/autoscale.h"

#include <algorithm>
#include <vector>

#include "catalog/resource.h"

namespace doppler::core {

StatusOr<AutoscaleSimulation> SimulateServerlessAutoscale(
    const telemetry::PerfTrace& trace, const catalog::Sku& sku,
    const catalog::ServerlessAutoscalePolicy& policy) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  if (!trace.Has(catalog::ResourceDim::kCpu)) {
    return InvalidArgumentError(
        "autoscale simulation needs a CPU demand column");
  }
  if (sku.vcores <= 0) {
    return InvalidArgumentError("SKU has no positive vCore count");
  }

  const std::vector<double>& demand =
      trace.Values(catalog::ResourceDim::kCpu);
  const double max_vcores = static_cast<double>(sku.vcores);
  const double floor_vcores =
      sku.serverless && sku.min_vcores > 0.0
          ? sku.min_vcores
          : policy.min_vcores_fraction * max_vcores;

  AutoscaleSimulation result;
  result.capacity.dim = catalog::ResourceDim::kCpu;
  std::vector<double>& provisioned = result.capacity.capacity;
  provisioned.resize(demand.size());

  // Causal fold: row t is provisioned from the EMA of demand through row
  // t-1; the EMA then absorbs row t for the next step.
  double ema = demand[0];
  provisioned[0] =
      std::clamp(policy.headroom * demand[0], floor_vcores, max_vcores);
  double sum = provisioned[0];
  for (std::size_t t = 1; t < demand.size(); ++t) {
    provisioned[t] =
        std::clamp(policy.headroom * ema, floor_vcores, max_vcores);
    sum += provisioned[t];
    ema = policy.ema_alpha * demand[t] + (1.0 - policy.ema_alpha) * ema;
  }
  result.mean_provisioned_vcores = sum / static_cast<double>(demand.size());

  // Usage bill: natively usage-billed SKUs carry their own per-vCore-hour
  // rate; provisioned SKUs costed as-if-serverless derive one from the
  // hourly rate plus the policy premium.
  const double rate_per_vcore_hour =
      sku.serverless && sku.price_per_vcore_hour > 0.0
          ? sku.price_per_vcore_hour
          : (sku.price_per_hour / max_vcores) * policy.price_premium;
  result.monthly_cost =
      result.mean_provisioned_vcores * rate_per_vcore_hour * 730.0;
  return result;
}

}  // namespace doppler::core
