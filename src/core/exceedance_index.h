#ifndef DOPPLER_CORE_EXCEEDANCE_INDEX_H_
#define DOPPLER_CORE_EXCEEDANCE_INDEX_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/kernels/bitset_arena.h"

namespace doppler::core {

/// Scratch-lifetime policy shared by the throttling kernels (DESIGN.md §9):
/// per-thread scratch buffers are reused across evaluations so the hot path
/// never allocates after warm-up, but one oversized trace must not pin its
/// high-water mark for the lifetime of the thread. After each use, a buffer
/// whose capacity exceeds this bound is released back to the allocator.
/// Steady-state DMA traces sit far below it (a 30-day trace is ~4.3k rows,
/// ~4 KiB of scan marks or ~0.5 KiB of bitset words), so the trim only ever
/// fires after an outlier trace.
inline constexpr std::size_t kScratchRetainBytes = std::size_t{1} << 20;

/// Applies the policy above to one scratch vector: keep the buffer when its
/// footprint is within kScratchRetainBytes, release it otherwise. Allocator-
/// generic so cache-aligned scratch (util/aligned.h) gets the same policy.
template <typename T, typename Alloc>
void TrimScratch(std::vector<T, Alloc>& scratch) {
  if (scratch.capacity() * sizeof(T) > kScratchRetainBytes) {
    scratch = std::vector<T, Alloc>();
  }
}

/// One memoized exceedance set: the rows of a trace whose demand in one
/// dimension exceeds one capacity value, packed 64 rows per word (row r is
/// bit r%64 of word r/64; padding bits past the last row are zero). The
/// words live in the owning dimension's BitsetArena — 64-byte aligned,
/// zero-padded at birth, stable until the memo generation is dropped — so
/// the set itself is just a view. The pointer is non-const because the
/// streaming index patches memoized sets bit-by-bit in place; offline
/// callers only read through it.
struct ExceedanceSet {
  std::uint64_t* words = nullptr;
  std::size_t num_words = 0;
  /// Popcount over `words` — the number of exceeding rows.
  std::size_t count = 0;
};

/// Amortized per-(trace, dimension) exceedance index (DESIGN.md §9).
///
/// Offline (construction): each demand column is argsorted once — reusing
/// TraceStatsCache sorted state when a cache over the same trace is
/// supplied — so the rows exceeding ANY capacity C form a contiguous run of
/// the sorted permutation: the suffix of rows with value > C for normal
/// dimensions, the prefix with value < C for inverted ones (kIoLatencyMs).
/// The run boundary is a binary search; strict comparisons keep rows tied
/// exactly at the capacity out of the set, matching ResourceVector::Exceeds.
///
/// Online (evaluation): SetFor() materialises the run as a word-packed
/// bitset, memoized per *distinct* capacity value, so adjacent SKUs on a
/// price-sorted curve that share capacity values share the bitset build.
/// CountExceedingUnion() ORs the per-dimension bitsets for one capacity
/// vector and popcounts — O(d·n/64) per SKU instead of the O(n·d) column
/// rescan — with word-level skip of saturated words and a per-dimension
/// early exit once every row is counted. Counting is exact integer
/// arithmetic over the same row set as the columnar scan, so probabilities
/// are bit-identical to the row-major formulation.
///
/// Thread safety: the memo is guarded per dimension, so one index may be
/// shared by every worker of a parallel curve build. A memoized set's
/// content depends only on (dimension, capacity) — never on which worker
/// built it first — which keeps counter totals and results deterministic at
/// any thread count.
///
/// Invalidation contract (hardened in DESIGN.md §13): like TraceStatsCache,
/// the index BORROWS the trace (and the cache, when given); both must
/// outlive it and must not be mutated concurrently with reads. Sequential
/// mutation is tolerated: each dimension records the trace generation its
/// sorted state and memo were built against, and SetFor() drops the stale
/// memo and refreshes the sorted view when the trace has moved on — so a
/// mutated window invalidates its borrowers instead of serving sets built
/// over sorted order that no longer matches the data.
class ExceedanceIndex {
 public:
  /// Indexes the subset of `dims` present in `trace`. When `stats` is a
  /// cache over the SAME trace object its memoized argsort is borrowed
  /// (no extra sort); a cache over any other trace is ignored, so callers
  /// may pass whatever cache travels with the request.
  ExceedanceIndex(const telemetry::PerfTrace& trace,
                  const std::vector<catalog::ResourceDim>& dims,
                  const telemetry::TraceStatsCache* stats = nullptr);

  ExceedanceIndex(const ExceedanceIndex&) = delete;
  ExceedanceIndex& operator=(const ExceedanceIndex&) = delete;

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_words() const { return num_words_; }

  /// True when the dimension was requested at construction and present in
  /// the trace.
  bool Covers(catalog::ResourceDim dim) const {
    return dims_[Index(dim)].covered;
  }

  /// The memoized exceedance set for one (dimension, capacity); builds it
  /// on first use (counted as `ppm.index_misses`, charging the set's row
  /// count to `ppm.samples_scanned`), returns the memo on every later call
  /// (`ppm.index_hits`). The reference stays valid until the trace is next
  /// mutated (the memo is dropped then). The dimension must be covered.
  const ExceedanceSet& SetFor(catalog::ResourceDim dim, double capacity) const;

  /// Number of rows throttled by ANY covered dimension priced in
  /// `capacities` — the exact numerator of paper Eq. 1. Dimensions absent
  /// from the capacity vector are skipped; with a single participating
  /// dimension the memoized count is returned without touching scratch.
  std::size_t CountExceedingUnion(
      const catalog::ResourceVector& capacities) const;

  /// Moving-capacity union (the serverless autoscale extension of Eq. 1):
  /// like CountExceedingUnion, but `moving_dim`'s limit at row r is
  /// `moving_capacity[r]` instead of a constant. The moving dimension's
  /// exceedance set cannot be memoized (it depends on the whole series), so
  /// it is built by a direct row-vs-row compare seeding the union scratch
  /// (its row reads are charged to `ppm.samples_scanned`); the constant
  /// dimensions then OR in their memoized sets exactly as the constant
  /// union does, skipping `moving_dim` and dimensions absent from
  /// `capacities`. Exact integer counting over the same row set as a
  /// row-major scan. Preconditions: the trace models `moving_dim` and the
  /// series length equals num_rows().
  std::size_t CountExceedingUnionMoving(
      const catalog::ResourceVector& capacities,
      catalog::ResourceDim moving_dim,
      const std::vector<double>& moving_capacity) const;

  /// Covered dimensions in enum order.
  const std::vector<catalog::ResourceDim>& covered_dims() const {
    return covered_dims_;
  }

 private:
  struct DimState {
    bool covered = false;
    // Borrowed from TraceStatsCache when possible, else the owned copies.
    // Mutable because SetFor refreshes them under `mu` after a trace
    // mutation (generation mismatch).
    mutable const std::vector<double>* sorted = nullptr;
    mutable const std::vector<std::uint32_t>* perm = nullptr;
    mutable std::vector<double> own_sorted;
    mutable std::vector<std::uint32_t> own_perm;
    // PerfTrace::generation() the sorted state and memo were built
    // against; SetFor refreshes both when the trace has moved on.
    mutable std::uint64_t generation = 0;
    mutable std::mutex mu;
    // std::map for node stability: SetFor hands out references that must
    // survive later insertions by other workers.
    mutable std::map<double, ExceedanceSet> memo;
    // Backing store for the memoized bitsets: cache-line-aligned spans,
    // zeroed (padding bits included) at allocation, reclaimed wholesale by
    // Reset() when a trace mutation drops the memo. Guarded by `mu`.
    mutable kernels::BitsetArena arena;
  };

  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  const telemetry::PerfTrace* trace_;
  // The cache whose argsort is borrowed, or null when sorting locally;
  // kept so a generation refresh can re-borrow (which forces the cache's
  // own rebuild) instead of silently diverging from it.
  const telemetry::TraceStatsCache* stats_ = nullptr;
  std::size_t num_rows_ = 0;
  std::size_t num_words_ = 0;
  std::array<DimState, catalog::kNumResourceDims> dims_;
  std::vector<catalog::ResourceDim> covered_dims_;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_EXCEEDANCE_INDEX_H_
