#ifndef DOPPLER_CORE_PRICE_PERFORMANCE_H_
#define DOPPLER_CORE_PRICE_PERFORMANCE_H_

#include <string>
#include <vector>

#include "catalog/compiled_catalog.h"
#include "catalog/pricing.h"
#include "catalog/sku.h"
#include "core/throttling.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/statusor.h"

namespace doppler::exec {
class ThreadPool;
}

namespace doppler::core {

/// A candidate for curve building on the compiled-snapshot path: borrows a
/// CompiledEntry (valid for the snapshot's lifetime), plus an optional MI
/// file-layout IOPS override (paper §3.2 Step 2: the GP MI IOPS limit is
/// the sum of the per-file storage-tier limits, not the SKU record's
/// number). Negative `iops_limit` means "use the memoized capacities".
struct CompiledCandidateRef {
  const catalog::CompiledEntry* entry = nullptr;
  double iops_limit = -1.0;
};

/// One point of a price-performance curve.
struct PricePerformancePoint {
  catalog::Sku sku;
  double monthly_price = 0.0;
  /// Raw estimated throttling probability for this SKU.
  double throttling_probability = 0.0;
  /// Monotone-enforced performance (fraction of resource needs satisfied):
  /// non-decreasing along the price axis (paper §3.2: "we enforce
  /// monotonicity ... so that customers cannot select SKUs that are more
  /// expensive and less performant").
  double performance = 0.0;

  /// Monotone-enforced throttling probability (1 - performance).
  double MonotoneProbability() const { return 1.0 - performance; }
};

/// Curve shape classes (paper §5.1 / Fig. 8).
enum class CurveShape {
  kFlat,     ///< Every relevant SKU satisfies ~100% of needs.
  kSimple,   ///< SKUs split between ~0% and ~100%; the cheapest 100% wins.
  kComplex,  ///< A genuine ranking across intermediate probabilities.
};

const char* CurveShapeName(CurveShape shape);

/// The personalised rank of relevant SKUs: each candidate priced through
/// the billing interface and scored by its estimated throttling
/// probability, sorted by monthly price (paper §3.2, Fig. 4b).
class PricePerformanceCurve {
 public:
  /// Builds the curve for `trace` over a whole compiled deployment view:
  /// reads the memoized monthly prices and capacity vectors, performs no
  /// catalog copy and — because compiled entries are already in (billed
  /// price, id) order — no per-request sort unless the view's target
  /// repriced a candidate against the trace (TargetSpec::reprice_for_trace,
  /// e.g. usage-billed serverless SKUs). Fails when the candidate list or
  /// trace is empty, or when estimation fails. Scoring goes through the
  /// estimator's batch API (ThrottlingEstimator::EstimateCurveProbabilities):
  /// with a non-null `executor` candidates are partitioned across the pool
  /// (each one is scored into its own slot by index, so the result is
  /// bit-identical to the serial path at any thread count), and a non-null
  /// `stats` cache over this trace lets index-backed estimators reuse its
  /// memoized argsort instead of re-sorting.
  static StatusOr<PricePerformanceCurve> Build(
      const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
      const catalog::PricingService& pricing,
      const ThrottlingEstimator& estimator,
      exec::ThreadPool* executor = nullptr,
      const telemetry::TraceStatsCache* stats = nullptr);

  /// Compiled-snapshot path over a filtered subset (the MI route, where
  /// each candidate carries a layout-derived IOPS override). `candidates`
  /// must preserve the compiled view's relative order. `target` supplies
  /// the per-trace repricing hook (nullptr = no repricing).
  static StatusOr<PricePerformanceCurve> Build(
      const telemetry::PerfTrace& trace,
      const std::vector<CompiledCandidateRef>& candidates,
      const catalog::PricingService& pricing,
      const ThrottlingEstimator& estimator,
      exec::ThreadPool* executor = nullptr,
      const telemetry::TraceStatsCache* stats = nullptr,
      const catalog::TargetSpec* target = nullptr);

  /// Points ordered by ascending monthly price.
  const std::vector<PricePerformancePoint>& points() const { return points_; }

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Shape classification: flat when every performance is >= 1 - epsilon;
  /// simple when every performance is outside (epsilon, 1 - epsilon); else
  /// complex.
  CurveShape Classify(double epsilon = 0.01) const;

  /// Cheapest point with performance >= 1 - epsilon; NOT_FOUND when no SKU
  /// fully satisfies the workload.
  StatusOr<PricePerformancePoint> CheapestFullySatisfying(
      double epsilon = 0.01) const;

  /// The point implementing paper Eqs. 4-6: among points whose monotone
  /// throttling probability is <= target, the one closest to the target
  /// (ties to the cheaper). Falls back to the lowest-probability point
  /// when nothing is below the target.
  StatusOr<PricePerformancePoint> ClosestBelowTarget(double target) const;

  /// Point for a given SKU id; NOT_FOUND when the SKU is not a candidate.
  StatusOr<PricePerformancePoint> FindSku(const std::string& sku_id) const;

  /// Index of a SKU id in price order; NOT_FOUND when absent.
  StatusOr<std::size_t> IndexOfSku(const std::string& sku_id) const;

  /// Monthly prices / performances in price order (for plotting).
  std::vector<double> Prices() const;
  std::vector<double> Performances() const;

 private:
  // Internal accessor unifying the two compiled candidate sources (whole
  // view vs. filtered ref list); defined in the .cc.
  struct CompiledSpan;
  static StatusOr<PricePerformanceCurve> BuildCompiled(
      const telemetry::PerfTrace& trace, const CompiledSpan& span,
      const catalog::PricingService& pricing,
      const ThrottlingEstimator& estimator, exec::ThreadPool* executor,
      const telemetry::TraceStatsCache* stats);

  std::vector<PricePerformancePoint> points_;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_PRICE_PERFORMANCE_H_
