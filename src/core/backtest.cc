#include "core/backtest.h"

#include <algorithm>
#include <cmath>

#include "core/mi_filter.h"
#include "ml/hierarchical.h"
#include "ml/kmeans.h"

namespace doppler::core {

namespace {

using catalog::Deployment;
using catalog::ServiceTier;

// Picks the over-provisioned choice: the first point whose price reaches
// `ratio` times the cheapest fully satisfying point's price, itself fully
// satisfying (over-provisioned customers buy too much, not too little).
StatusOr<PricePerformancePoint> OverProvisionedChoice(
    const PricePerformanceCurve& curve, double ratio) {
  // Anchor at the cheapest fully satisfying SKU; when the workload cannot
  // be fully satisfied by any SKU (e.g. log-rate demand above every cap),
  // anchor at the cheapest point reaching the curve's best performance —
  // an over-provisioned customer overshoots whatever the best buy is.
  StatusOr<PricePerformancePoint> anchor = curve.CheapestFullySatisfying();
  if (!anchor.ok()) {
    if (curve.empty()) return NotFoundError("curve is empty");
    double best_performance = 0.0;
    for (const PricePerformancePoint& point : curve.points()) {
      best_performance = std::max(best_performance, point.performance);
    }
    for (const PricePerformancePoint& point : curve.points()) {
      if (point.performance >= best_performance) {
        anchor = point;
        break;
      }
    }
  }
  for (const PricePerformancePoint& point : curve.points()) {
    if (point.monthly_price >= anchor->monthly_price * ratio &&
        point.performance >= anchor->performance) {
      return point;
    }
  }
  return curve.points().back();
}

}  // namespace

StatusOr<BacktestDataset> BuildBacktestDataset(
    std::vector<workload::SyntheticCustomer> fleet,
    const catalog::CompiledCatalog& compiled,
    const ThrottlingEstimator& estimator, Rng* rng) {
  if (fleet.empty()) return InvalidArgumentError("fleet is empty");
  if (rng == nullptr) return InvalidArgumentError("rng must not be null");

  BacktestDataset dataset;
  dataset.deployment = fleet.front().deployment;
  dataset.customers.reserve(fleet.size());
  dataset.curves.reserve(fleet.size());

  for (workload::SyntheticCustomer& customer : fleet) {
    PricePerformanceCurve curve;
    if (customer.deployment == Deployment::kSqlDb) {
      DOPPLER_ASSIGN_OR_RETURN(
          curve, PricePerformanceCurve::Build(
                     customer.trace,
                     compiled.ForDeployment(Deployment::kSqlDb).view(),
                     compiled.pricing(), estimator));
    } else {
      DOPPLER_ASSIGN_OR_RETURN(
          MiCompiledFilterResult filtered,
          FilterMiCandidates(compiled, customer.layout, customer.trace));
      DOPPLER_ASSIGN_OR_RETURN(
          curve, PricePerformanceCurve::Build(
                     customer.trace, filtered.candidates, compiled.pricing(),
                     estimator, nullptr, nullptr, &compiled.target()));
    }

    LabeledCustomer labeled;
    labeled.curve_shape = curve.Classify();

    PricePerformancePoint chosen;
    if (customer.over_provisioned) {
      DOPPLER_ASSIGN_OR_RETURN(
          chosen, OverProvisionedChoice(curve, rng->Uniform(2.0, 5.0)));
    } else if (labeled.curve_shape == CurveShape::kFlat) {
      DOPPLER_ASSIGN_OR_RETURN(chosen, curve.CheapestFullySatisfying());
    } else {
      DOPPLER_ASSIGN_OR_RETURN(chosen,
                               curve.ClosestBelowTarget(customer.tolerance));
    }
    labeled.chosen_sku_id = chosen.sku.id;
    labeled.chosen_probability = chosen.MonotoneProbability();
    labeled.chosen_tier = chosen.sku.tier;
    labeled.customer = std::move(customer);

    dataset.customers.push_back(std::move(labeled));
    dataset.curves.push_back(std::move(curve));
  }
  return dataset;
}

const char* GroupingMethodName(GroupingMethod method) {
  switch (method) {
    case GroupingMethod::kEnumeration:
      return "enumeration";
    case GroupingMethod::kKMeans:
      return "k-means";
    case GroupingMethod::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

StatusOr<BacktestResult> RunBacktest(const BacktestDataset& dataset,
                                     const NegotiabilityStrategy& strategy,
                                     const BacktestOptions& options) {
  if (dataset.customers.empty()) {
    return InvalidArgumentError("dataset is empty");
  }
  const std::vector<catalog::ResourceDim> dims =
      workload::ProfilingDims(dataset.deployment);

  // Indices of customers under evaluation.
  std::vector<std::size_t> evaluated;
  for (std::size_t i = 0; i < dataset.customers.size(); ++i) {
    if (options.exclude_over_provisioned &&
        dataset.customers[i].customer.over_provisioned) {
      continue;
    }
    evaluated.push_back(i);
  }
  if (evaluated.empty()) {
    return FailedPreconditionError("no customers left to evaluate");
  }

  // Summarise every evaluated customer.
  std::vector<NegotiabilityScores> summaries(dataset.customers.size());
  for (std::size_t i : evaluated) {
    DOPPLER_ASSIGN_OR_RETURN(
        summaries[i],
        options.grouping == GroupingMethod::kEnumeration
            ? strategy.Evaluate(dataset.customers[i].customer.trace, dims)
            : strategy.EvaluateForClustering(
                  dataset.customers[i].customer.trace, dims));
  }

  // Group assignment.
  std::vector<int> groups(dataset.customers.size(), 0);
  const int default_clusters = 1 << dims.size();
  const int k =
      options.num_clusters > 0 ? options.num_clusters : default_clusters;
  switch (options.grouping) {
    case GroupingMethod::kEnumeration:
      for (std::size_t i : evaluated) {
        groups[i] = GroupIdFromBits(summaries[i].negotiable);
      }
      break;
    case GroupingMethod::kKMeans: {
      std::vector<std::vector<double>> points;
      points.reserve(evaluated.size());
      for (std::size_t i : evaluated) points.push_back(summaries[i].scores);
      Rng rng(options.seed);
      ml::KMeansOptions kmeans_options;
      kmeans_options.k = k;
      DOPPLER_ASSIGN_OR_RETURN(ml::KMeansResult clustering,
                               ml::KMeans(points, kmeans_options, &rng));
      for (std::size_t j = 0; j < evaluated.size(); ++j) {
        groups[evaluated[j]] = clustering.assignments[j];
      }
      break;
    }
    case GroupingMethod::kHierarchical: {
      std::vector<std::vector<double>> points;
      points.reserve(evaluated.size());
      for (std::size_t i : evaluated) points.push_back(summaries[i].scores);
      DOPPLER_ASSIGN_OR_RETURN(std::vector<int> labels,
                               ml::HierarchicalCluster(points, k));
      for (std::size_t j = 0; j < evaluated.size(); ++j) {
        groups[evaluated[j]] = labels[j];
      }
      break;
    }
  }

  // Fit the group model on the evaluated customers (the paper's training
  // base: successfully migrated customers, over-provisioned excluded when
  // the experiment says so). Flat-curve customers are skipped: every
  // choice on a flat curve sits at ~0 throttling, so it carries no signal
  // about the group's tolerance and would drag every target to zero.
  std::vector<std::pair<int, double>> training;
  training.reserve(evaluated.size());
  for (std::size_t i : evaluated) {
    if (dataset.customers[i].curve_shape == CurveShape::kFlat) continue;
    training.emplace_back(groups[i], dataset.customers[i].chosen_probability);
  }
  if (training.empty()) {
    // Degenerate all-flat fleet: targets are irrelevant (every curve
    // short-circuits to the cheapest SKU), but the model must exist.
    for (std::size_t i : evaluated) {
      training.emplace_back(groups[i],
                            dataset.customers[i].chosen_probability);
    }
  }
  DOPPLER_ASSIGN_OR_RETURN(GroupModel model, GroupModel::Fit(training));

  // Score: does the Eq. 4-6 selection reproduce each chosen SKU?
  BacktestResult result;
  result.group_stats = model.AllGroups();
  for (std::size_t i : evaluated) {
    const PricePerformanceCurve& curve = dataset.curves[i];
    PricePerformancePoint picked;
    if (curve.Classify() == CurveShape::kFlat) {
      DOPPLER_ASSIGN_OR_RETURN(picked, curve.CheapestFullySatisfying());
    } else {
      DOPPLER_ASSIGN_OR_RETURN(
          picked, curve.ClosestBelowTarget(model.TargetProbability(groups[i])));
    }
    const bool match = picked.sku.id == dataset.customers[i].chosen_sku_id;
    ++result.evaluated;
    if (match) ++result.correct;
    TierAccuracy& tier = result.by_tier[dataset.customers[i].chosen_tier];
    ++tier.total;
    if (match) ++tier.correct;
  }
  result.accuracy =
      static_cast<double>(result.correct) / static_cast<double>(result.evaluated);
  for (auto& [_, tier] : result.by_tier) {
    tier.accuracy = tier.total > 0 ? static_cast<double>(tier.correct) /
                                         static_cast<double>(tier.total)
                                   : 0.0;
  }
  return result;
}

std::map<CurveShape, double> CurveShapeBreakdown(
    const BacktestDataset& dataset) {
  std::map<CurveShape, double> breakdown;
  if (dataset.customers.empty()) return breakdown;
  for (const LabeledCustomer& customer : dataset.customers) {
    breakdown[customer.curve_shape] += 1.0;
  }
  for (auto& [_, fraction] : breakdown) {
    fraction /= static_cast<double>(dataset.customers.size());
  }
  return breakdown;
}

}  // namespace doppler::core
