#include "core/confidence.h"

#include <algorithm>

#include "stats/bootstrap.h"

namespace doppler::core {

StatusOr<ConfidenceResult> ScoreConfidence(const telemetry::PerfTrace& trace,
                                           const RecommendFn& recommend,
                                           const ConfidenceOptions& options,
                                           Rng* rng) {
  if (!recommend) return InvalidArgumentError("recommend function not set");
  if (rng == nullptr) return InvalidArgumentError("rng must not be null");
  if (options.runs <= 0) return InvalidArgumentError("runs must be positive");
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }

  ConfidenceResult result;
  DOPPLER_ASSIGN_OR_RETURN(result.original, recommend(trace));

  const std::size_t window_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.window_days * 86400.0 /
                                  static_cast<double>(trace.interval_seconds())));

  stats::Bootstrap bootstrap(trace.num_samples(), rng);
  for (int run = 0; run < options.runs; ++run) {
    std::vector<std::size_t> indices;
    switch (options.scheme) {
      case BootstrapScheme::kWindow:
        indices = bootstrap.SampleWindow(window_samples);
        break;
      case BootstrapScheme::kIid:
        indices = bootstrap.SampleWithReplacement(trace.num_samples());
        break;
    }
    const telemetry::PerfTrace resampled = trace.Select(indices);
    StatusOr<Recommendation> rerun = recommend(resampled);
    // A failing bootstrap run (e.g. a degenerate window) counts as a
    // non-matching run: it is evidence the recommendation is unstable.
    ++result.runs;
    if (rerun.ok() && rerun->sku.id == result.original.sku.id) {
      ++result.matching_runs;
    }
  }
  result.score =
      static_cast<double>(result.matching_runs) / static_cast<double>(result.runs);
  return result;
}

}  // namespace doppler::core
