#ifndef DOPPLER_CORE_BACKTEST_H_
#define DOPPLER_CORE_BACKTEST_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/compiled_catalog.h"
#include "core/negotiability.h"
#include "core/price_performance.h"
#include "core/profiler.h"
#include "core/throttling.h"
#include "util/random.h"
#include "util/statusor.h"
#include "workload/population.h"

namespace doppler::core {

/// A synthetic customer with the SKU choice the paper's migrated customers
/// would have made: the behavioural model fixes each customer at the point
/// of their own price-performance curve closest (from below) to their
/// personal throttling tolerance; the over-provisioned segment instead
/// overshoots the cheapest fully-satisfying SKU by 2-5x in price (§5.1).
struct LabeledCustomer {
  workload::SyntheticCustomer customer;
  std::string chosen_sku_id;
  /// Monotone throttling probability at the chosen point.
  double chosen_probability = 0.0;
  /// True tier of the chosen SKU (drives Table 5's micro accuracy).
  catalog::ServiceTier chosen_tier = catalog::ServiceTier::kGeneralPurpose;
  CurveShape curve_shape = CurveShape::kComplex;
};

/// A labelled fleet plus its (expensive) per-customer curves, so the many
/// experiments over one fleet build each curve once.
struct BacktestDataset {
  std::vector<LabeledCustomer> customers;
  /// Curves aligned with `customers`.
  std::vector<PricePerformanceCurve> curves;
  catalog::Deployment deployment = catalog::Deployment::kSqlDb;
};

/// Builds the dataset: generates curves for every customer (via the MI
/// storage-tier path for MI fleets) over the compiled snapshot and assigns
/// chosen SKUs. Curves copy their SKUs, so the dataset safely outlives the
/// snapshot.
StatusOr<BacktestDataset> BuildBacktestDataset(
    std::vector<workload::SyntheticCustomer> fleet,
    const catalog::CompiledCatalog& compiled,
    const ThrottlingEstimator& estimator, Rng* rng);

/// How customers are grouped from their negotiability summaries.
enum class GroupingMethod {
  kEnumeration,   ///< 2^k groups straight from the binary flags (production).
  kKMeans,        ///< k-means on the continuous score vectors.
  kHierarchical,  ///< Agglomerative clustering on the score vectors.
};

const char* GroupingMethodName(GroupingMethod method);

struct BacktestOptions {
  GroupingMethod grouping = GroupingMethod::kEnumeration;
  /// Exclude the over-provisioned segment from evaluation (Table 5 on,
  /// Table 4 off).
  bool exclude_over_provisioned = true;
  /// Cluster count for kKMeans/kHierarchical; 0 = 2^(num profiling dims).
  int num_clusters = 0;
  std::uint64_t seed = 7;
};

/// Per-tier slice of the accuracy (Table 5's "micro accuracy").
struct TierAccuracy {
  int correct = 0;
  int total = 0;
  double accuracy = 0.0;
};

struct BacktestResult {
  double accuracy = 0.0;
  int correct = 0;
  int evaluated = 0;
  /// Accuracy sliced by the tier of the customer's true chosen SKU.
  std::map<catalog::ServiceTier, TierAccuracy> by_tier;
  /// Group statistics of the fitted model (Table 3).
  std::vector<GroupStats> group_stats;
};

/// Back-tests one negotiability strategy against the labelled fleet: fit
/// the group model on the evaluated customers' (group, chosen probability)
/// pairs, then check how often the Eq. 4-6 selection reproduces each
/// customer's chosen SKU (paper §5.2: match frequency against migrated
/// customers is the accuracy proxy).
StatusOr<BacktestResult> RunBacktest(const BacktestDataset& dataset,
                                     const NegotiabilityStrategy& strategy,
                                     const BacktestOptions& options);

/// Fraction of customers per curve shape (paper Fig. 9).
std::map<CurveShape, double> CurveShapeBreakdown(const BacktestDataset& dataset);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_BACKTEST_H_
