#include "core/forecast.h"

#include <algorithm>
#include <cmath>

namespace doppler::core {

namespace {

using catalog::ResourceDim;

constexpr double kSecondsPerMonth = 30.0 * 86400.0;

}  // namespace

double LinearSlopePerSample(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  // Closed-form least squares with x = 0..n-1.
  const double mean_x = static_cast<double>(n - 1) / 2.0;
  double mean_y = 0.0;
  for (double v : values) mean_y += v;
  mean_y /= static_cast<double>(n);
  double cov = 0.0;
  double var_x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    cov += dx * (values[i] - mean_y);
    var_x += dx * dx;
  }
  return var_x > 0.0 ? cov / var_x : 0.0;
}

StatusOr<GrowthForecast> ForecastUpgrades(
    const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
    const catalog::PricingService& pricing,
    const ThrottlingEstimator& estimator, const std::string& current_sku_id,
    const ForecastOptions& options) {
  if (trace.num_samples() < 2) {
    return InvalidArgumentError("forecast needs at least two samples");
  }
  if (options.horizon_months < 1) {
    return InvalidArgumentError("horizon must cover at least one month");
  }
  if (candidates.empty()) {
    return InvalidArgumentError("no candidate SKUs");
  }

  GrowthForecast forecast;
  const double samples_per_month =
      kSecondsPerMonth / static_cast<double>(trace.interval_seconds());

  // Fit per-dimension growth.
  for (ResourceDim dim : trace.PresentDims()) {
    if (options.freeze_latency && dim == ResourceDim::kIoLatencyMs) {
      forecast.monthly_growth.Set(dim, 0.0);
      continue;
    }
    const double slope = LinearSlopePerSample(trace.Values(dim));
    forecast.monthly_growth.Set(dim, slope * samples_per_month);
  }

  for (int month = 1; month <= options.horizon_months; ++month) {
    // Extrapolated demand: shift every sample by the fitted growth. Demand
    // never extrapolates below zero.
    telemetry::PerfTrace shifted(trace.interval_seconds());
    shifted.set_id(trace.id() + "+" + std::to_string(month) + "mo");
    for (ResourceDim dim : trace.PresentDims()) {
      const double delta =
          forecast.monthly_growth.Get(dim) * static_cast<double>(month);
      std::vector<double> values = trace.Values(dim);
      for (double& v : values) v = std::max(0.0, v + delta);
      DOPPLER_RETURN_IF_ERROR(shifted.SetSeries(dim, std::move(values)));
    }

    DOPPLER_ASSIGN_OR_RETURN(
        PricePerformanceCurve curve,
        PricePerformanceCurve::Build(shifted, candidates, pricing, estimator));

    HorizonPoint point;
    point.month = month;
    StatusOr<PricePerformancePoint> best = curve.CheapestFullySatisfying();
    if (best.ok()) {
      point.recommended_sku_id = best->sku.id;
      point.recommended_display_name = best->sku.DisplayName();
      point.recommended_monthly_cost = best->monthly_price;
    }
    if (!current_sku_id.empty()) {
      StatusOr<PricePerformancePoint> current = curve.FindSku(current_sku_id);
      if (!current.ok()) return current.status();
      point.current_sku_probability = current->MonotoneProbability();
      if (forecast.upgrade_due_month == 0 &&
          point.current_sku_probability > options.tolerance) {
        forecast.upgrade_due_month = month;
      }
    }
    forecast.timeline.push_back(std::move(point));
  }
  return forecast;
}

}  // namespace doppler::core
