#ifndef DOPPLER_CORE_FEEDBACK_H_
#define DOPPLER_CORE_FEEDBACK_H_

#include <string>
#include <vector>

#include "core/profiler.h"
#include "util/statusor.h"

namespace doppler::core {

/// One tracked migration journey (paper §4: once DMA integrates with Azure
/// Migrate, "we will be able to keep a record of all the recommended SKUs
/// from Doppler and whether these SKUs were selected for migration, and we
/// will be able to examine the retention of each customer").
struct MigrationFeedback {
  std::string customer_id;
  /// Enumeration group the customer profiled into at assessment time.
  int group_id = 0;
  /// What Doppler recommended.
  std::string recommended_sku_id;
  /// What the customer actually migrated to; empty = did not migrate.
  std::string adopted_sku_id;
  /// Monotone throttling probability at the adopted curve point (only
  /// meaningful when adopted_sku_id is set).
  double adopted_probability = 0.0;
  /// Days the customer has kept the adopted SKU so far.
  double retention_days = 0.0;
};

/// The §5.5 feedback loop: accumulates migration outcomes, surfaces
/// adoption/retention metrics, and periodically re-trains the group model
/// from the retained customers' adopted throttling probabilities — the
/// same signal the offline fit used, now observed live.
class FeedbackLoop {
 public:
  struct Options {
    /// Retention horizon after which an adopted SKU counts as "optimal"
    /// (the paper's 40-day rule).
    double retention_threshold_days = 40.0;
    /// Minimum retained-and-unprocessed records before a refresh fires.
    int min_feedback_per_refresh = 20;
    /// Pseudo-count weight of the shipped model per group when blending.
    double prior_weight = 25.0;
  };

  /// Starts from the shipped (offline-fitted) model.
  FeedbackLoop(GroupModel initial, Options options);
  explicit FeedbackLoop(GroupModel initial)
      : FeedbackLoop(std::move(initial), Options()) {}

  /// Records one journey.
  void Record(MigrationFeedback feedback);

  /// Re-trains when enough retained records accumulated since the last
  /// refresh; returns true when the model changed.
  bool MaybeRefresh();

  /// The current (possibly refreshed) model.
  const GroupModel& model() const { return model_; }

  /// Fraction of recorded journeys that migrated at all.
  double MigrationRate() const;

  /// Among migrated journeys: fraction that adopted exactly the
  /// recommended SKU.
  double AdoptionRate() const;

  /// Among migrated journeys: fraction retained past the threshold.
  double RetentionRate() const;

  std::size_t total_recorded() const { return records_.size(); }
  int refreshes() const { return refreshes_; }

 private:
  Options options_;
  GroupModel model_;
  std::vector<MigrationFeedback> records_;
  std::size_t processed_ = 0;  ///< Records consumed by past refreshes.
  int refreshes_ = 0;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_FEEDBACK_H_
