#include "core/heuristics.h"

namespace doppler::core {

StatusOr<PricePerformancePoint> LargestPerformanceIncrease(
    const PricePerformanceCurve& curve, double epsilon) {
  const auto& points = curve.points();
  if (points.empty()) return NotFoundError("curve is empty");
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const double drop = points[i].MonotoneProbability() -
                        points[i + 1].MonotoneProbability();
    if (drop <= epsilon) return points[i];
  }
  return points.back();
}

StatusOr<PricePerformancePoint> LargestSlope(
    const PricePerformanceCurve& curve) {
  const auto& points = curve.points();
  if (points.empty()) return NotFoundError("curve is empty");
  if (points.size() == 1) return points.front();
  double best_slope = -1.0;
  std::size_t best_index = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double drop = points[i - 1].MonotoneProbability() -
                        points[i].MonotoneProbability();
    const double price = points[i - 1].monthly_price;
    const double slope = price > 0.0 ? drop / price : drop;
    if (slope > best_slope) {
      best_slope = slope;
      best_index = i;
    }
  }
  return points[best_index];
}

StatusOr<PricePerformancePoint> PerformanceThreshold(
    const PricePerformanceCurve& curve, double gamma) {
  for (const PricePerformancePoint& point : curve.points()) {
    if (point.performance >= gamma) return point;
  }
  return NotFoundError("no SKU reaches the performance threshold");
}

}  // namespace doppler::core
