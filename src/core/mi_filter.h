#ifndef DOPPLER_CORE_MI_FILTER_H_
#define DOPPLER_CORE_MI_FILTER_H_

#include <vector>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/file_layout.h"
#include "core/price_performance.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/statusor.h"

namespace doppler::core {

/// Knobs of the MI SKU filtration step (paper §3.2, "Determining file
/// storage tier for MI", Step 1). The 95% satisfaction rate "is chosen
/// based on file layout analysis of current on-cloud Azure SQL MI
/// resources" (paper footnote 2).
struct MiFilterOptions {
  /// Required fraction of storage need met (paper: "a minimum of 100%").
  double storage_satisfaction = 1.0;
  /// Required fraction of IOPS samples satisfied by the layout limits.
  double iops_satisfaction = 0.95;
  /// Required fraction of file-throughput samples satisfied.
  double throughput_satisfaction = 0.95;
  /// Throughput proxy: MiB moved per IO (the collector does not report
  /// file throughput directly, so it is derived as IOPS x IO size + log
  /// rate).
  double mib_per_io = 0.0625;  // 64 KiB pages.
};

/// Step 1 output: candidates borrow their CompiledEntry from the snapshot
/// (valid for its lifetime), in the snapshot's cheapest-first order, with
/// their effective IOPS limits already resolved (Step 2), ready for curve
/// building.
struct MiCompiledFilterResult {
  std::vector<CompiledCandidateRef> candidates;
  /// True when no General Purpose layout met the IOPS/throughput bar and
  /// the search was restricted to Business Critical (paper Step 1).
  bool restricted_to_bc = false;
  /// The storage-tier limits implied by the file layout.
  catalog::LayoutLimits layout_limits;
};

/// Runs Steps 1-2 for a workload migrating to SQL MI, over the snapshot's
/// pre-sorted MI view and its precomputed storage-tier table — no catalog
/// copy, no SKU copies:
///  1. Resolve each data file to its storage tier and sum the per-disk
///     IOPS/throughput limits.
///  2. Keep GP SKUs whose max data size covers the layout at 100% and
///     whose layout-derived limits satisfy >= 95% of the workload's IOPS
///     and throughput samples. If none qualifies, restrict to BC SKUs
///     (whose local-SSD limits come from the SKU record instead).
///  3. GP candidates carry the layout IOPS sum as their effective limit.
/// Fails when the catalog has no MI SKUs or the layout is unplaceable.
/// A non-null `stats` cache over this trace resolves the IOPS satisfaction
/// fraction by binary search on the memoized sorted series (an identical
/// integer count, so the keep/drop decisions cannot change).
StatusOr<MiCompiledFilterResult> FilterMiCandidates(
    const catalog::CompiledCatalog& compiled,
    const catalog::FileLayout& layout, const telemetry::PerfTrace& trace,
    const MiFilterOptions& options = {},
    const telemetry::TraceStatsCache* stats = nullptr);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_MI_FILTER_H_
