#ifndef DOPPLER_CORE_CONFIDENCE_H_
#define DOPPLER_CORE_CONFIDENCE_H_

#include <functional>

#include "core/recommender.h"
#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "util/statusor.h"

namespace doppler::core {

/// A recommendation procedure to bootstrap: trace in, recommendation out.
/// Both the DB and MI elastic paths fit this shape.
using RecommendFn =
    std::function<StatusOr<Recommendation>(const telemetry::PerfTrace&)>;

/// Bootstrap resampling scheme for the confidence score.
enum class BootstrapScheme {
  /// Contiguous random sub-window (preserves spike autocorrelation; the
  /// default, matching the paper's "bootstrap window sizes").
  kWindow,
  /// Classic iid resample with replacement of the full length.
  kIid,
};

struct ConfidenceOptions {
  int runs = 30;                ///< Bootstrap repetitions.
  double window_days = 7.0;     ///< Sub-window length for kWindow.
  BootstrapScheme scheme = BootstrapScheme::kWindow;
};

/// Result of the confidence procedure.
struct ConfidenceResult {
  /// Fraction of bootstrap runs whose recommended SKU matches the
  /// original recommendation (paper §3.4).
  double score = 0.0;
  int runs = 0;
  int matching_runs = 0;
  /// The original (full-data) recommendation the runs are compared to.
  Recommendation original;
};

/// Derives the confidence score: rerun the full recommendation on `runs`
/// random subsets of the raw counter data and report the agreement with
/// the full-data recommendation. Stable utilisation patterns yield scores
/// near 1; volatile ones flag that more data should be collected (the
/// guardrail surfaced in DMA).
///
/// Object-identity guarantee: the original run invokes `recommend` with
/// the caller's `trace` object itself; every bootstrap run passes a
/// freshly materialised resample. Callers may therefore compare addresses
/// to reuse per-trace memoized state (sorted series, argsort, exceedance
/// bitsets) for the original run only — the pipeline's confidence stage
/// does exactly that. Resamples must NOT share that state: their row
/// order and multiset differ.
StatusOr<ConfidenceResult> ScoreConfidence(const telemetry::PerfTrace& trace,
                                           const RecommendFn& recommend,
                                           const ConfidenceOptions& options,
                                           Rng* rng);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_CONFIDENCE_H_
