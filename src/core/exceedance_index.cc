#include "core/exceedance_index.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/metrics.h"
#include "util/aligned.h"
#include "util/kernels/kernels.h"

namespace doppler::core {

namespace {

using catalog::ResourceDim;
using catalog::ResourceVector;

// Counter pointers resolved once; every memo access costs a relaxed add.
// `ppm.samples_scanned` is charged on construction misses only — the rows
// materialised into a bitset — because the union path never re-reads the
// demand columns. The charge is a function of (dimension, capacity) alone,
// never of scheduling, so counter totals stay identical at any job count.
void CountIndexMiss(std::size_t set_rows) {
  static obs::Counter* const kMisses =
      obs::DefaultMetrics().GetCounter("ppm.index_misses");
  static obs::Counter* const kSamples =
      obs::DefaultMetrics().GetCounter("ppm.samples_scanned");
  kMisses->Increment();
  kSamples->Increment(set_rows);
}

void CountIndexHit() {
  static obs::Counter* const kHits =
      obs::DefaultMetrics().GetCounter("ppm.index_hits");
  kHits->Increment();
}

void CountUnionWords(std::size_t words) {
  static obs::Counter* const kWords =
      obs::DefaultMetrics().GetCounter("ppm.index_union_words");
  kWords->Increment(words);
}

// Same permutation TraceStatsCache::Argsort builds: ascending value, ties
// by ascending row index.
void SortColumn(const std::vector<double>& values,
                std::vector<std::uint32_t>& perm,
                std::vector<double>& sorted) {
  const std::size_t n = values.size();
  perm.resize(n);
  std::iota(perm.begin(), perm.end(), std::uint32_t{0});
  std::sort(perm.begin(), perm.end(),
            [&values](std::uint32_t a, std::uint32_t b) {
              if (values[a] != values[b]) return values[a] < values[b];
              return a < b;
            });
  sorted.resize(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = values[perm[i]];
}

}  // namespace

ExceedanceIndex::ExceedanceIndex(const telemetry::PerfTrace& trace,
                                 const std::vector<ResourceDim>& dims,
                                 const telemetry::TraceStatsCache* stats)
    : trace_(&trace),
      num_rows_(trace.num_samples()),
      num_words_((trace.num_samples() + 63) / 64) {
  // A cache over a different trace is silently ignored: the confidence
  // resampler hands the original trace's cache around while evaluating
  // bootstrap resamples, and reusing its argsort there would be wrong.
  if (stats != nullptr && &stats->trace() != &trace) stats = nullptr;
  stats_ = stats;
  for (ResourceDim dim : dims) {
    if (!trace.Has(dim)) continue;
    DimState& state = dims_[Index(dim)];
    if (state.covered) continue;
    state.covered = true;
    covered_dims_.push_back(dim);
    if (stats != nullptr) {
      state.sorted = &stats->Sorted(dim);
      state.perm = &stats->Argsort(dim);
    } else {
      SortColumn(trace.Values(dim), state.own_perm, state.own_sorted);
      state.sorted = &state.own_sorted;
      state.perm = &state.own_perm;
    }
    state.generation = trace.generation();
  }
  // Enum order regardless of the order dimensions were requested in, so the
  // union sweep below is deterministic for a given trace and candidate set.
  std::sort(covered_dims_.begin(), covered_dims_.end());
}

const ExceedanceSet& ExceedanceIndex::SetFor(ResourceDim dim,
                                             double capacity) const {
  const DimState& state = dims_[Index(dim)];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.generation != trace_->generation()) {
    // The trace was mutated since this dimension's state was built: the
    // memoized sets describe rows that no longer exist, so drop them and
    // refresh the sorted view before answering. Re-borrowing through the
    // cache accessors forces the cache's own generation-checked rebuild,
    // so both borrower and owner converge on the mutated data.
    state.memo.clear();
    state.arena.Reset();
    if (stats_ != nullptr) {
      state.sorted = &stats_->Sorted(dim);
      state.perm = &stats_->Argsort(dim);
    } else {
      SortColumn(trace_->Values(dim), state.own_perm, state.own_sorted);
    }
    state.generation = trace_->generation();
  }
  const auto it = state.memo.find(capacity);
  if (it != state.memo.end()) {
    CountIndexHit();
    return it->second;
  }

  // Exceeding rows are one contiguous run of the sorted permutation.
  // Normal dimension: demand > C, the suffix of rows above the capacity
  // (strict comparison leaves rows tied at the capacity out). Inverted
  // dimension: demand < C, the prefix of rows below it. The run boundary
  // comes from the sorted-scan hybrid: a branch-free count kernel for
  // short columns, binary search otherwise — same integer either way.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  const std::vector<double>& sorted = *state.sorted;
  std::size_t begin = 0;
  std::size_t end = num_rows_;
  if (catalog::IsInvertedDim(dim)) {
    end = kernels::SortedCountBelow(ops, sorted.data(), num_rows_, capacity);
  } else {
    begin = num_rows_ -
            kernels::SortedCountAbove(ops, sorted.data(), num_rows_, capacity);
  }

  // The bitset lives in this dimension's arena: cache-line aligned, zeroed
  // at allocation (padding bits included), stable until the next
  // generation drop.
  ExceedanceSet set;
  std::uint64_t* const words = state.arena.Allocate(num_words_);
  set.words = words;
  set.num_words = num_words_;
  set.count = end - begin;
  const std::uint32_t* const perm = state.perm->data();
  for (std::size_t j = begin; j < end; ++j) {
    const std::uint32_t row = perm[j];
    words[row >> 6] |= std::uint64_t{1} << (row & 63);
  }
  assert(kernels::PaddingBitsAreZero(words, num_words_, num_rows_));
  CountIndexMiss(set.count);
  return state.memo.emplace(capacity, set).first->second;
}

std::size_t ExceedanceIndex::CountExceedingUnion(
    const ResourceVector& capacities) const {
  // Gather the participating memoized sets first, so the union sweep below
  // runs allocation- and lock-free.
  std::array<const ExceedanceSet*, catalog::kNumResourceDims> sets;
  std::size_t num_sets = 0;
  for (ResourceDim dim : covered_dims_) {
    if (!capacities.Has(dim)) continue;
    sets[num_sets++] = &SetFor(dim, capacities.Get(dim));
  }
  if (num_sets == 0) return 0;
  // Single participating dimension: the memoized popcount is the answer.
  if (num_sets == 1) return sets[0]->count;

  // Word-wise OR accumulation through the dispatched union kernel; the
  // popcount of newly-set bits per set gives the union size without a
  // final pass, saturated words are skipped inside the kernel, and a
  // dimension cannot grow a saturated union (early exit).
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  thread_local AlignedVector<std::uint64_t> union_words;
  union_words.assign(num_words_, 0);
  std::size_t count = 0;
  std::size_t words_touched = 0;
  for (std::size_t k = 0; k < num_sets && count < num_rows_; ++k) {
    const ExceedanceSet& set = *sets[k];
    if (set.count == 0) continue;
    count += ops.union_count(union_words.data(), set.words, num_words_);
    words_touched += num_words_;
  }
  CountUnionWords(words_touched);
  TrimScratch(union_words);
  return count;
}

std::size_t ExceedanceIndex::CountExceedingUnionMoving(
    const ResourceVector& capacities, ResourceDim moving_dim,
    const std::vector<double>& moving_capacity) const {
  static obs::Counter* const kSamples =
      obs::DefaultMetrics().GetCounter("ppm.samples_scanned");

  // Seed the union with the moving dimension's exceedance set, built by
  // the row-vs-row bitset kernel (same strict comparisons as the memoized
  // sets: ResourceVector::Exceeds semantics). Every row is read once,
  // charged below — a deterministic function of the query, not of
  // scheduling.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  const std::vector<double>& demand = trace_->Values(moving_dim);
  const bool inverted = catalog::IsInvertedDim(moving_dim);
  thread_local AlignedVector<std::uint64_t> union_words;
  union_words.assign(num_words_, 0);
  std::size_t count =
      inverted ? ops.bitset_below(demand.data(), moving_capacity.data(),
                                  num_rows_, union_words.data())
               : ops.bitset_above(demand.data(), moving_capacity.data(),
                                  num_rows_, union_words.data());
  assert(
      kernels::PaddingBitsAreZero(union_words.data(), num_words_, num_rows_));
  kSamples->Increment(num_rows_);

  // OR in the constant dimensions' memoized sets, exactly as the constant
  // union does. The moving dimension's constant entry (if any) is
  // superseded by the series, so it is skipped here.
  std::size_t words_touched = 0;
  for (ResourceDim dim : covered_dims_) {
    if (count >= num_rows_) break;
    if (dim == moving_dim || !capacities.Has(dim)) continue;
    const ExceedanceSet& set = SetFor(dim, capacities.Get(dim));
    if (set.count == 0) continue;
    count += ops.union_count(union_words.data(), set.words, num_words_);
    words_touched += num_words_;
  }
  CountUnionWords(words_touched);
  TrimScratch(union_words);
  return count;
}

}  // namespace doppler::core
