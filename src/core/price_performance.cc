#include "core/price_performance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace doppler::core {

const char* CurveShapeName(CurveShape shape) {
  switch (shape) {
    case CurveShape::kFlat:
      return "flat";
    case CurveShape::kSimple:
      return "simple";
    case CurveShape::kComplex:
      return "complex";
  }
  return "?";
}

// Uniform accessor over the two compiled candidate sources: a whole
// deployment view (no IOPS overrides) or a filtered ref list (MI path).
// Avoids materialising a ref vector for the common DB route.
struct PricePerformanceCurve::CompiledSpan {
  const catalog::CompiledEntry* entries = nullptr;
  const CompiledCandidateRef* refs = nullptr;
  std::size_t count = 0;
  /// The target whose reprice_for_trace hook applies; nullptr = none.
  const catalog::TargetSpec* target = nullptr;

  const catalog::CompiledEntry& entry(std::size_t i) const {
    return refs != nullptr ? *refs[i].entry : entries[i];
  }
  double iops_limit(std::size_t i) const {
    return refs != nullptr ? refs[i].iops_limit : -1.0;
  }
};

StatusOr<PricePerformanceCurve> PricePerformanceCurve::BuildCompiled(
    const telemetry::PerfTrace& trace, const CompiledSpan& span,
    const catalog::PricingService& pricing,
    const ThrottlingEstimator& estimator, exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats) {
  if (span.count == 0) {
    return InvalidArgumentError("no candidate SKUs for curve building");
  }
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  DOPPLER_TRACE_SPAN("ppm.curve_build");
  static obs::Counter* const kSkusEvaluated =
      obs::DefaultMetrics().GetCounter("ppm.skus_evaluated");
  kSkusEvaluated->Increment(span.count);
  DOPPLER_LOG(kDebug) << "building price-performance curve over " << span.count
                      << " compiled SKUs, " << trace.num_samples()
                      << " samples";

  // Mean CPU demand feeds the target's per-trace repricing hook (usage-
  // billed serverless SKUs); 0 when the trace carries no CPU counter
  // (pricing then assumes the worst case).
  double mean_cpu = 0.0;
  if (trace.Has(catalog::ResourceDim::kCpu)) {
    const std::vector<double>& cpu = trace.Values(catalog::ResourceDim::kCpu);
    for (double v : cpu) mean_cpu += v;
    mean_cpu /= static_cast<double>(cpu.size());
  }
  const catalog::RepriceForTraceFn reprice =
      span.target != nullptr ? span.target->reprice_for_trace : nullptr;

  // Batch scoring over the memoized capacity vectors (with the MI route's
  // per-candidate IOPS overrides applied first); see the Candidate overload
  // for the determinism rationale.
  std::vector<catalog::ResourceVector> capacity_vectors;
  capacity_vectors.reserve(span.count);
  for (std::size_t i = 0; i < span.count; ++i) {
    const catalog::CompiledEntry& entry = span.entry(i);
    const double iops_limit = span.iops_limit(i);
    capacity_vectors.push_back(
        iops_limit >= 0.0 ? entry.sku->CapacitiesWithIopsLimit(iops_limit)
                          : entry.capacities);
  }
  DOPPLER_ASSIGN_OR_RETURN(const std::vector<double> probabilities,
                           estimator.EstimateCurveProbabilities(
                               trace, capacity_vectors, executor, stats));

  PricePerformanceCurve curve;
  std::vector<PricePerformancePoint>& points = curve.points_;
  points.resize(span.count);
  // A hook re-price (negative return = keep the compiled price)
  // invalidates the memoized price order; when every candidate keeps its
  // compiled price the pre-sorted order stands and the sort is skipped.
  bool repriced = false;
  for (std::size_t i = 0; i < span.count; ++i) {
    const catalog::CompiledEntry& entry = span.entry(i);
    PricePerformancePoint& point = points[i];
    point.sku = *entry.sku;
    const double hook_price =
        reprice != nullptr ? reprice(*entry.sku, mean_cpu, pricing) : -1.0;
    point.monthly_price = hook_price >= 0.0 ? hook_price : entry.monthly_price;
    repriced |= hook_price >= 0.0;
    point.throttling_probability = probabilities[i];
    point.performance = 1.0 - probabilities[i];
  }

  if (repriced) {
    // Same (monthly price, id) comparator the compile step sorted by;
    // compiled entries arrive pre-sorted, so the sort is needed only when
    // a hook re-price perturbed the order.
    std::sort(
        points.begin(), points.end(),
        [](const PricePerformancePoint& a, const PricePerformancePoint& b) {
          if (a.monthly_price != b.monthly_price) {
            return a.monthly_price < b.monthly_price;
          }
          return a.sku.id < b.sku.id;
        });
  }

  double best = 0.0;
  for (PricePerformancePoint& point : points) {
    best = std::max(best, point.performance);
    point.performance = best;
  }
  return curve;
}

StatusOr<PricePerformanceCurve> PricePerformanceCurve::Build(
    const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
    const catalog::PricingService& pricing,
    const ThrottlingEstimator& estimator, exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats) {
  CompiledSpan span;
  span.entries = candidates.begin();
  span.count = candidates.size();
  span.target = candidates.target();
  return BuildCompiled(trace, span, pricing, estimator, executor, stats);
}

StatusOr<PricePerformanceCurve> PricePerformanceCurve::Build(
    const telemetry::PerfTrace& trace,
    const std::vector<CompiledCandidateRef>& candidates,
    const catalog::PricingService& pricing,
    const ThrottlingEstimator& estimator, exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats,
    const catalog::TargetSpec* target) {
  CompiledSpan span;
  span.refs = candidates.data();
  span.count = candidates.size();
  span.target = target;
  return BuildCompiled(trace, span, pricing, estimator, executor, stats);
}

CurveShape PricePerformanceCurve::Classify(double epsilon) const {
  bool all_full = true;
  bool all_extreme = true;
  for (const PricePerformancePoint& point : points_) {
    const bool full = point.performance >= 1.0 - epsilon;
    const bool empty_perf = point.performance <= epsilon;
    all_full &= full;
    all_extreme &= (full || empty_perf);
  }
  if (all_full) return CurveShape::kFlat;
  if (all_extreme) return CurveShape::kSimple;
  return CurveShape::kComplex;
}

StatusOr<PricePerformancePoint> PricePerformanceCurve::CheapestFullySatisfying(
    double epsilon) const {
  for (const PricePerformancePoint& point : points_) {
    if (point.performance >= 1.0 - epsilon) return point;
  }
  return NotFoundError("no SKU satisfies the workload at 100%");
}

StatusOr<PricePerformancePoint> PricePerformanceCurve::ClosestBelowTarget(
    double target) const {
  if (points_.empty()) return NotFoundError("curve is empty");

  const PricePerformancePoint* best = nullptr;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const PricePerformancePoint& point : points_) {
    const double p = point.MonotoneProbability();
    if (p > target) continue;
    const double gap = target - p;
    // Strict inequality keeps the cheaper point on ties (price order).
    if (gap < best_gap) {
      best_gap = gap;
      best = &point;
    }
  }
  if (best != nullptr) return *best;

  // Nothing satisfies the constraint (Eq. 6); fall back to the most
  // performant point, cheapest among equals.
  const PricePerformancePoint* fallback = &points_.front();
  for (const PricePerformancePoint& point : points_) {
    if (point.performance > fallback->performance) fallback = &point;
  }
  return *fallback;
}

StatusOr<PricePerformancePoint> PricePerformanceCurve::FindSku(
    const std::string& sku_id) const {
  for (const PricePerformancePoint& point : points_) {
    if (point.sku.id == sku_id) return point;
  }
  return NotFoundError("SKU '" + sku_id + "' is not on the curve");
}

StatusOr<std::size_t> PricePerformanceCurve::IndexOfSku(
    const std::string& sku_id) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].sku.id == sku_id) return i;
  }
  return NotFoundError("SKU '" + sku_id + "' is not on the curve");
}

std::vector<double> PricePerformanceCurve::Prices() const {
  std::vector<double> prices;
  prices.reserve(points_.size());
  for (const auto& point : points_) prices.push_back(point.monthly_price);
  return prices;
}

std::vector<double> PricePerformanceCurve::Performances() const {
  std::vector<double> performances;
  performances.reserve(points_.size());
  for (const auto& point : points_) performances.push_back(point.performance);
  return performances;
}

}  // namespace doppler::core
