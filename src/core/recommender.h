#ifndef DOPPLER_CORE_RECOMMENDER_H_
#define DOPPLER_CORE_RECOMMENDER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/file_layout.h"
#include "catalog/pricing.h"
#include "core/mi_filter.h"
#include "core/price_performance.h"
#include "core/profiler.h"
#include "core/throttling.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/statusor.h"

namespace doppler::exec {
class ThreadPool;
}

namespace doppler::core {

/// The full answer Doppler surfaces for one workload: the optimal SKU plus
/// everything the Resource Use Module needs to explain the choice.
struct Recommendation {
  catalog::Sku sku;
  double monthly_cost = 0.0;
  /// Monotone throttling probability at the recommended point.
  double throttling_probability = 0.0;
  CurveShape curve_shape = CurveShape::kComplex;
  /// Enumeration group the customer profiled into (-1 when profiling was
  /// skipped, e.g. flat curves or the baseline strategy).
  int group_id = -1;
  /// The group's target probability used in Eqs. 4-6 (0 when unused).
  double group_target = 0.0;
  /// One-sentence explanation of why this SKU was picked.
  std::string rationale;
  /// Degraded-mode assessment (telemetry quality gate): profiling
  /// dimensions the trace never carried. The joint demand (Eq. 1) was
  /// narrowed to the collected dimensions, which can only understate
  /// throttling, so the recommendation's confidence is reduced.
  std::vector<catalog::ResourceDim> missing_profile_dims;
  /// True when missing_profile_dims is non-empty.
  bool degraded = false;
  /// The personalised rank behind the choice.
  PricePerformanceCurve curve;
};

/// The Doppler "elastic" strategy (paper §3): price-performance curve,
/// customer profiling, and the Eq. 4-6 selection against the learned group
/// target. Flat curves short-circuit to the cheapest fully satisfying SKU.
class ElasticRecommender {
 public:
  struct Options {
    /// Tolerance for treating performance as "100%".
    double full_satisfaction_epsilon = 0.01;
    /// Curve classification epsilon.
    double classify_epsilon = 0.01;
  };

  /// Serving-path constructor: all dependencies are borrowed and must
  /// outlive the recommender. The compiled snapshot carries the candidate
  /// sets, memoized prices, and the billing interface; the hot path does
  /// no catalog copies or sorts.
  ElasticRecommender(const catalog::CompiledCatalog* compiled,
                     const ThrottlingEstimator* estimator,
                     const CustomerProfiler* profiler,
                     const GroupModel* group_model, Options options);

  /// Default-options overload (a default argument of a nested aggregate
  /// cannot appear inside the enclosing class definition).
  ElasticRecommender(const catalog::CompiledCatalog* compiled,
                     const ThrottlingEstimator* estimator,
                     const CustomerProfiler* profiler,
                     const GroupModel* group_model);

  /// Optional execution pool for the per-SKU curve build; nullptr (the
  /// default) keeps the serial path. The pool is borrowed and must outlive
  /// the recommender. Results are bit-identical with or without it.
  void SetExecutor(exec::ThreadPool* executor) { executor_ = executor; }

  /// Recommendation for a workload migrating to Azure SQL DB. A non-null
  /// `stats` cache (built over the same trace) is reused for profiling.
  StatusOr<Recommendation> RecommendDb(
      const telemetry::PerfTrace& trace,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// Recommendation for a workload migrating to Azure SQL MI; the file
  /// layout drives premium-disk Steps 1-2.
  StatusOr<Recommendation> RecommendMi(
      const telemetry::PerfTrace& trace, const catalog::FileLayout& layout,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// Deployment-dispatching convenience used by the DMA pipeline.
  StatusOr<Recommendation> Recommend(
      const telemetry::PerfTrace& trace, catalog::Deployment deployment,
      const catalog::FileLayout& layout,
      const telemetry::TraceStatsCache* stats = nullptr) const;

 private:
  StatusOr<Recommendation> SelectFromCurve(
      PricePerformanceCurve curve, const telemetry::PerfTrace& trace,
      const telemetry::TraceStatsCache* stats) const;

  const catalog::CompiledCatalog* compiled_;
  const ThrottlingEstimator* estimator_;
  const CustomerProfiler* profiler_;
  const GroupModel* group_model_;
  exec::ThreadPool* executor_ = nullptr;
  Options options_;
};

/// The pre-Doppler baseline (paper §2): collapse every counter series to a
/// scalar (a high quantile, default the 95th percentile; 1.0 = max) and
/// return the cheapest SKU whose capacities meet every scalar. Tends to
/// over-provision, and fails with NOT_FOUND when no SKU meets all maxima —
/// exactly the failure mode §5.3 reports.
class BaselineRecommender {
 public:
  /// Serving-path constructor over a borrowed compiled snapshot.
  explicit BaselineRecommender(const catalog::CompiledCatalog* compiled,
                               double quantile = 0.95);

  StatusOr<Recommendation> Recommend(
      const telemetry::PerfTrace& trace, catalog::Deployment deployment,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// The scalar requirement the baseline derives per dimension. A non-null
  /// `stats` cache reads the quantiles from the memoized sorted series
  /// (bit-identical to sorting in place here).
  StatusOr<catalog::ResourceVector> ScalarRequirements(
      const telemetry::PerfTrace& trace,
      const telemetry::TraceStatsCache* stats = nullptr) const;

 private:
  const catalog::CompiledCatalog* compiled_;
  double quantile_;
};

}  // namespace doppler::core

#endif  // DOPPLER_CORE_RECOMMENDER_H_
