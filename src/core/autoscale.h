#ifndef DOPPLER_CORE_AUTOSCALE_H_
#define DOPPLER_CORE_AUTOSCALE_H_

#include "catalog/sku.h"
#include "catalog/target.h"
#include "core/throttling.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::core {

/// Output of the deterministic serverless autoscale simulation: the per-row
/// provisioned CPU capacity (the MOVING capacity the throttling estimator
/// evaluates paper Eq. 1 against), and the usage bill it implies.
struct AutoscaleSimulation {
  /// Provisioned vCores at each trace row (dim = kCpu).
  MovingCapacity capacity;
  /// Time-average of the provisioned series, in vCores.
  double mean_provisioned_vcores = 0.0;
  /// Monthly bill for the provisioned capacity: mean vCores x the SKU's
  /// per-vCore-hour rate (derived from the hourly rate, times the policy
  /// premium, when the SKU is not natively usage-billed) x 730 h.
  double monthly_cost = 0.0;
};

/// Simulates a serverless autoscaler following the trace's CPU demand
/// (paper Eq. 1 extension; DESIGN.md §14): provisioned capacity tracks an
/// exponentially-smoothed view of demand with headroom, clamped to the
/// SKU's scale range [floor, sku.vcores] where the floor is the SKU's own
/// serverless floor (sku.min_vcores) or policy.min_vcores_fraction of max
/// for provisioned SKUs being costed as-if-serverless.
///
/// The smoothing is causal: row t provisions against the EMA of demand up
/// to row t-1 (row 0 sees its own demand — the autoscaler's initial
/// sizing), so a burst outruns the autoscaler for ~1/ema_alpha rows. That
/// lag is exactly why serverless throttling must be evaluated against the
/// moving series rather than the scale ceiling.
///
/// Deterministic: a pure fold over the CPU column. Fails with
/// INVALID_ARGUMENT when the trace is empty or lacks a CPU column, or when
/// the SKU has no positive vCore count.
StatusOr<AutoscaleSimulation> SimulateServerlessAutoscale(
    const telemetry::PerfTrace& trace, const catalog::Sku& sku,
    const catalog::ServerlessAutoscalePolicy& policy);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_AUTOSCALE_H_
