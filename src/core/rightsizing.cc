#include "core/rightsizing.h"

#include <algorithm>

namespace doppler::core {

StatusOr<RightSizingAssessment> AssessRightSizing(
    const PricePerformanceCurve& curve, const std::string& chosen_sku_id,
    const RightSizingOptions& options) {
  RightSizingAssessment assessment;
  DOPPLER_ASSIGN_OR_RETURN(assessment.current, curve.FindSku(chosen_sku_id));
  DOPPLER_ASSIGN_OR_RETURN(
      assessment.recommended,
      curve.CheapestFullySatisfying(options.full_satisfaction_epsilon));

  const double cheapest_price = assessment.recommended.monthly_price;
  assessment.price_headroom =
      cheapest_price > 0.0 ? assessment.current.monthly_price / cheapest_price
                           : 1.0;

  // A customer only counts as over-provisioned when their own SKU already
  // fully satisfies the workload AND costs well past the cheapest
  // satisfying point; a throttled customer is mis-, not over-provisioned.
  const bool current_satisfies =
      assessment.current.performance >= 1.0 - options.full_satisfaction_epsilon;
  assessment.over_provisioned =
      current_satisfies &&
      assessment.price_headroom >= options.price_ratio_threshold;

  assessment.monthly_savings = std::max(
      0.0, assessment.current.monthly_price - assessment.recommended.monthly_price);
  assessment.annual_savings = assessment.monthly_savings * 12.0;
  return assessment;
}

}  // namespace doppler::core
