#include "core/drift.h"

#include <algorithm>

namespace doppler::core {

StatusOr<DriftReport> DetectSkuDrift(const telemetry::PerfTrace& trace,
                                     catalog::CompiledView candidates,
                                     const catalog::PricingService& pricing,
                                     const ThrottlingEstimator& estimator,
                                     const std::string& current_sku_id,
                                     const DriftOptions& options) {
  if (options.recent_fraction <= 0.0 || options.recent_fraction >= 1.0) {
    return InvalidArgumentError("recent fraction must be in (0, 1)");
  }
  const std::size_t n = trace.num_samples();
  const std::size_t recent_samples = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(n) *
                                  options.recent_fraction));
  if (n < recent_samples + 2) {
    return InvalidArgumentError(
        "trace too short to split into baseline and recent windows");
  }

  const telemetry::PerfTrace baseline = trace.Window(0, n - recent_samples);
  const telemetry::PerfTrace recent =
      trace.Window(n - recent_samples, recent_samples);

  DOPPLER_ASSIGN_OR_RETURN(
      PricePerformanceCurve baseline_curve,
      PricePerformanceCurve::Build(baseline, candidates, pricing, estimator));
  DOPPLER_ASSIGN_OR_RETURN(
      PricePerformanceCurve recent_curve,
      PricePerformanceCurve::Build(recent, candidates, pricing, estimator));

  DOPPLER_ASSIGN_OR_RETURN(PricePerformancePoint baseline_point,
                           baseline_curve.FindSku(current_sku_id));
  DOPPLER_ASSIGN_OR_RETURN(PricePerformancePoint recent_point,
                           recent_curve.FindSku(current_sku_id));

  DriftReport report;
  report.baseline_probability = baseline_point.MonotoneProbability();
  report.recent_probability = recent_point.MonotoneProbability();
  report.needs_change =
      report.baseline_probability <= options.tolerance &&
      report.recent_probability > options.tolerance;

  StatusOr<PricePerformancePoint> best =
      recent_curve.CheapestFullySatisfying();
  if (best.ok()) {
    report.recommended_sku_id = best->sku.id;
    report.recommended_display_name = best->sku.DisplayName();
    report.recommended_monthly_cost = best->monthly_price;
  }
  return report;
}

}  // namespace doppler::core
