#ifndef DOPPLER_CORE_HEURISTICS_H_
#define DOPPLER_CORE_HEURISTICS_H_

#include "core/price_performance.h"
#include "util/statusor.h"

namespace doppler::core {

/// The three curve-shape heuristics the paper evaluated before settling on
/// customer profiling (§3.2, "Limitation"). All operate on the monotone
/// throttling probabilities in price order and are shown (Fig. 5 and the
/// bench_fig5_heuristics harness) to disagree with each other and with the
/// customers' actual choices on complex curves.

/// Largest Performance Increase: the first SKU after which the drop in
/// throttling probability stops being significant — the smallest i with
/// P(SKU_i) - P(SKU_{i+1}) <= epsilon (paper default epsilon = .001).
StatusOr<PricePerformancePoint> LargestPerformanceIncrease(
    const PricePerformanceCurve& curve, double epsilon = 0.001);

/// Largest Slope: the SKU after the point with the steepest drop in
/// throttling probability per dollar, i.e. the i maximising
/// (P(SKU_{i-1}) - P(SKU_i)) / Price(SKU_{i-1}).
StatusOr<PricePerformancePoint> LargestSlope(
    const PricePerformanceCurve& curve);

/// Performance Threshold: the first (cheapest) SKU whose performance
/// meets gamma (paper default gamma = 0.95). NOT_FOUND when no SKU
/// reaches the threshold.
StatusOr<PricePerformancePoint> PerformanceThreshold(
    const PricePerformanceCurve& curve, double gamma = 0.95);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_HEURISTICS_H_
