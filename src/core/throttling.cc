#include "core/throttling.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "core/exceedance_index.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "stats/kde.h"
#include "stats/normal.h"
#include "util/aligned.h"
#include "util/kernels/kernels.h"
#include "util/random.h"

namespace doppler::core {

namespace {

using catalog::ResourceDim;
using catalog::ResourceVector;

// Hot path: one call per candidate SKU per curve. Counter pointers are
// resolved once so each evaluation costs a relaxed atomic add.
// `samples_scanned` must be the rows the evaluation ACTUALLY visited —
// charged after the scan, so early exits report the truth, not the worst
// case. Index-backed batch evaluations pass 0 here: their row visits are
// charged at bitset-construction time (core/exceedance_index.cc), once per
// distinct capacity instead of once per SKU.
void CountEvaluation(std::size_t samples_scanned) {
  static obs::Counter* const kEvaluations =
      obs::DefaultMetrics().GetCounter("ppm.throttling_evaluations");
  static obs::Counter* const kSamples =
      obs::DefaultMetrics().GetCounter("ppm.samples_scanned");
  kEvaluations->Increment();
  kSamples->Increment(samples_scanned);
}

// Dimensions modelled by both the trace and the capacity vector.
StatusOr<std::vector<ResourceDim>> SharedDims(
    const telemetry::PerfTrace& trace, const ResourceVector& capacities) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (trace.Has(dim) && capacities.Has(dim)) dims.push_back(dim);
  }
  if (dims.empty()) {
    return InvalidArgumentError(
        "no resource dimension shared between trace and capacities");
  }
  return dims;
}

// Shared scoring skeleton for the batch API: every candidate's probability
// is written to its own slot and the first failure in candidate order wins,
// matching a serial loop with early return. Chunk boundaries come from
// ParallelFor and depend only on the candidate count and pool size, so the
// output is bit-identical at any thread count.
StatusOr<std::vector<double>> ScoreCandidates(
    std::size_t count, exec::ThreadPool* executor,
    const std::function<StatusOr<double>(std::size_t)>& score_one) {
  std::vector<double> probabilities(count, 0.0);
  std::vector<Status> failures(count);
  const auto score_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      StatusOr<double> probability = score_one(i);
      if (probability.ok()) {
        probabilities[i] = *probability;
      } else {
        failures[i] = probability.status();
      }
    }
  };
  if (executor != nullptr && count > 1) {
    executor->ParallelFor(count, score_range);
  } else {
    score_range(0, count);
  }
  for (const Status& failure : failures) {
    if (!failure.ok()) return failure;
  }
  return probabilities;
}

}  // namespace

StatusOr<std::vector<double>> ThrottlingEstimator::EstimateCurveProbabilities(
    const telemetry::PerfTrace& trace,
    const std::vector<ResourceVector>& capacities, exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats) const {
  (void)stats;  // The generic path has no per-trace state to share.
  return ScoreCandidates(capacities.size(), executor,
                         [&](std::size_t i) -> StatusOr<double> {
                           return Probability(trace, capacities[i]);
                         });
}

StatusOr<std::vector<double>> ThrottlingEstimator::EstimateCurveProbabilities(
    const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
    exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats) const {
  std::vector<ResourceVector> capacities;
  capacities.reserve(candidates.size());
  for (const catalog::CompiledEntry& entry : candidates) {
    capacities.push_back(entry.capacities);
  }
  return EstimateCurveProbabilities(trace, capacities, executor, stats);
}

namespace {

// Validates a moving-capacity query and returns the constant dimensions
// that take part (shared between trace and capacities, minus the moving
// dimension, whose constant entry — if any — is superseded by the series).
StatusOr<std::vector<ResourceDim>> MovingConstantDims(
    const telemetry::PerfTrace& trace, const ResourceVector& capacities,
    const MovingCapacity& moving) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  if (!trace.Has(moving.dim)) {
    return InvalidArgumentError(
        "trace does not model the moving-capacity dimension");
  }
  if (moving.capacity.size() != trace.num_samples()) {
    return InvalidArgumentError(
        "moving-capacity series length does not match the trace");
  }
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (dim != moving.dim && trace.Has(dim) && capacities.Has(dim)) {
      dims.push_back(dim);
    }
  }
  return dims;
}

}  // namespace

StatusOr<double> ThrottlingEstimator::ProbabilityMoving(
    const telemetry::PerfTrace& trace, const catalog::ResourceVector& capacities,
    const MovingCapacity& moving) const {
  DOPPLER_ASSIGN_OR_RETURN(const std::vector<ResourceDim> const_dims,
                           MovingConstantDims(trace, capacities, moving));
  const std::size_t n = trace.num_samples();
  const std::vector<double>& moving_demand = trace.Values(moving.dim);
  const bool moving_inverted = catalog::IsInvertedDim(moving.dim);

  // Definitional row-major scan (the oracle the index-backed override is
  // pinned against): a row is throttled when the moving dimension exceeds
  // its per-row limit or any constant dimension exceeds its fixed limit.
  std::size_t throttled = 0;
  for (std::size_t t = 0; t < n; ++t) {
    bool any = moving_inverted ? moving_demand[t] < moving.capacity[t]
                               : moving_demand[t] > moving.capacity[t];
    for (std::size_t k = 0; k < const_dims.size() && !any; ++k) {
      any = catalog::ResourceVector::Exceeds(const_dims[k],
                                             trace.Values(const_dims[k])[t],
                                             capacities.Get(const_dims[k]));
    }
    throttled += any;
  }
  CountEvaluation((const_dims.size() + 1) * n);
  return static_cast<double>(throttled) / static_cast<double>(n);
}

StatusOr<double> NonParametricEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  const std::size_t n = trace.num_samples();

  // Columnar union scan: instead of gathering every dimension per time
  // point (one cache line per dimension per row), sweep each contiguous
  // column once, marking rows throttled by ANY dimension so far. The
  // throttled-row count is identical to the row-major formulation — a row
  // is counted exactly once, by whichever column marks it first — so the
  // result is bit-for-bit the same at any scan order.
  const telemetry::DemandColumns matrix = trace.Columns(dims);

  const kernels::KernelOps& ops = kernels::ActiveKernels();

  // Single shared dimension: no mark buffer needed, pure count.
  if (matrix.num_columns == 1) {
    const double* const column = matrix.column(0);
    const double capacity = capacities.Get(matrix.dim(0));
    const std::size_t throttled = catalog::IsInvertedDim(matrix.dim(0))
                                      ? ops.count_below(column, n, capacity)
                                      : ops.count_above(column, n, capacity);
    CountEvaluation(n);
    return static_cast<double>(throttled) / static_cast<double>(n);
  }

  // Reused per thread so the hot loop never allocates after warm-up; each
  // worker of a parallel curve build gets its own buffer.
  thread_local AlignedVector<unsigned char> throttled_rows;
  throttled_rows.assign(n, 0);
  std::size_t throttled = 0;
  std::size_t columns_scanned = 0;
  for (std::size_t k = 0; k < matrix.num_columns; ++k) {
    const double* const column = matrix.column(k);
    const double capacity = capacities.Get(matrix.dim(k));
    // The mark kernel counts only NEWLY marked rows, so whichever column
    // marks a row first counts it — exactly the scalar loop's behaviour.
    throttled += catalog::IsInvertedDim(matrix.dim(k))
                     ? ops.mark_below(column, n, capacity,
                                      throttled_rows.data())
                     : ops.mark_above(column, n, capacity,
                                      throttled_rows.data());
    // Early-exit union test: once every row is throttled no further
    // dimension can change the count.
    ++columns_scanned;
    if (throttled == n) break;
  }
  // Charged after the loop so the early exit reports the rows actually
  // visited (each scanned column touches all n rows), not the worst-case
  // n·d the scan might have needed.
  CountEvaluation(columns_scanned * n);
  TrimScratch(throttled_rows);
  return static_cast<double>(throttled) / static_cast<double>(n);
}

StatusOr<std::vector<double>>
NonParametricEstimator::EstimateCurveProbabilities(
    const telemetry::PerfTrace& trace,
    const std::vector<ResourceVector>& capacities, exec::ThreadPool* executor,
    const telemetry::TraceStatsCache* stats) const {
  if (capacities.empty()) return std::vector<double>{};
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  // Index the union of candidate dimensions: one argsort per dimension any
  // candidate prices, shared by every candidate that prices it.
  std::array<bool, catalog::kNumResourceDims> wanted{};
  for (const ResourceVector& candidate : capacities) {
    for (ResourceDim dim : catalog::kAllResourceDims) {
      if (candidate.Has(dim)) {
        wanted[static_cast<std::size_t>(static_cast<int>(dim))] = true;
      }
    }
  }
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (wanted[static_cast<std::size_t>(static_cast<int>(dim))] &&
        trace.Has(dim)) {
      dims.push_back(dim);
    }
  }
  const ExceedanceIndex index(trace, dims, stats);
  const double n = static_cast<double>(trace.num_samples());
  return ScoreCandidates(
      capacities.size(), executor, [&](std::size_t i) -> StatusOr<double> {
        const ResourceVector& candidate = capacities[i];
        // Same failure mode as Probability: a candidate sharing no
        // dimension with the trace is an error, not a zero.
        bool any_shared = false;
        for (ResourceDim dim : catalog::kAllResourceDims) {
          if (trace.Has(dim) && candidate.Has(dim)) {
            any_shared = true;
            break;
          }
        }
        if (!any_shared) {
          return InvalidArgumentError(
              "no resource dimension shared between trace and capacities");
        }
        // Row visits were charged when the bitsets were built; the union
        // itself re-reads no samples.
        CountEvaluation(0);
        return static_cast<double>(index.CountExceedingUnion(candidate)) / n;
      });
}

StatusOr<double> NonParametricEstimator::ProbabilityMoving(
    const telemetry::PerfTrace& trace, const catalog::ResourceVector& capacities,
    const MovingCapacity& moving) const {
  DOPPLER_ASSIGN_OR_RETURN(const std::vector<ResourceDim> const_dims,
                           MovingConstantDims(trace, capacities, moving));
  // Index the constant dimensions only; the moving dimension's set is
  // built per call inside the union (its capacity series defeats the
  // per-capacity memo). Row visits are charged there and at memo misses.
  const ExceedanceIndex index(trace, const_dims);
  CountEvaluation(0);
  return static_cast<double>(index.CountExceedingUnionMoving(
             capacities, moving.dim, moving.capacity)) /
         static_cast<double>(trace.num_samples());
}

StatusOr<const stats::GaussianKde*> KdeEstimator::FittedKde(
    ResourceDim dim) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<stats::GaussianKde>& slot =
      fitted_[static_cast<std::size_t>(static_cast<int>(dim))];
  if (!slot.has_value()) {
    // The cache's memoized sorted series IS the dimension's sample (same
    // multiset), so the fit — one copy, one stddev pass — happens once per
    // dimension instead of once per Probability call.
    DOPPLER_ASSIGN_OR_RETURN(stats::GaussianKde kde,
                             stats::GaussianKde::Fit(stats_->Sorted(dim)));
    slot = std::move(kde);
  }
  // Slots are write-once under the mutex and the array itself never moves,
  // so the pointer stays valid and safe to read after unlock.
  return &*slot;
}

StatusOr<double> KdeEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  // Bound-cache fast path only applies to the cache's own trace object;
  // any other trace (bootstrap resamples, tests) takes the per-call fit.
  const bool bound = stats_ != nullptr && &stats_->trace() == &trace;
  double none_exceeds = 1.0;
  for (ResourceDim dim : dims) {
    std::optional<stats::GaussianKde> local;
    const stats::GaussianKde* kde = nullptr;
    if (bound) {
      DOPPLER_ASSIGN_OR_RETURN(kde, FittedKde(dim));
    } else {
      DOPPLER_ASSIGN_OR_RETURN(stats::GaussianKde fitted,
                               stats::GaussianKde::Fit(trace.Values(dim)));
      local = std::move(fitted);
      kde = &*local;
    }
    const double cap = capacities.Get(dim);
    // Inverted dimensions throttle when demand falls BELOW capacity.
    const double exceed =
        catalog::IsInvertedDim(dim) ? kde->Cdf(cap) : kde->Exceedance(cap);
    none_exceeds *= 1.0 - exceed;
  }
  // Every dimension's kernel CDF sums over all n sample points.
  CountEvaluation(dims.size() * trace.num_samples());
  return 1.0 - none_exceeds;
}

namespace {

// Cholesky factorisation of a symmetric positive-definite matrix with a
// diagonal jitter fallback: returns L with A ~= L L^T.
std::vector<std::vector<double>> Cholesky(
    std::vector<std::vector<double>> a) {
  const std::size_t n = a.size();
  // Jitter until the factorisation goes through (correlation matrices from
  // rank transforms are occasionally semi-definite).
  for (double jitter = 0.0; jitter < 0.2; jitter = jitter * 2.0 + 1e-6) {
    std::vector<std::vector<double>> l(n, std::vector<double>(n, 0.0));
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a[i][j] + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l[i][j] = std::sqrt(sum);
        } else {
          l[i][j] = sum / l[j][j];
        }
      }
    }
    if (ok) return l;
  }
  // Last resort: identity (independent sampling).
  std::vector<std::vector<double>> identity(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) identity[i][i] = 1.0;
  return identity;
}

}  // namespace

StatusOr<double> GaussianCopulaEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  const std::size_t d = dims.size();
  const std::size_t n = trace.num_samples();
  // The rank transform reads every dimension's full column.
  CountEvaluation(d * n);

  // Rank-transform each marginal to normal scores; keep the sorted sample
  // as the empirical quantile function.
  std::vector<std::vector<double>> sorted(d);
  std::vector<std::vector<double>> scores(d, std::vector<double>(n));
  for (std::size_t k = 0; k < d; ++k) {
    const std::vector<double>& values = trace.Values(dims[k]);
    sorted[k] = values;
    std::sort(sorted[k].begin(), sorted[k].end());
    // Average ranks via position in the sorted array (ties get adjacent
    // ranks, adequate for correlation estimation).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return values[a] < values[b];
    });
    for (std::size_t r = 0; r < n; ++r) {
      scores[k][order[r]] = stats::NormalQuantile(
          (static_cast<double>(r) + 1.0) / (static_cast<double>(n) + 1.0));
    }
  }

  // Correlation matrix of the normal scores.
  std::vector<std::vector<double>> correlation(d, std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < d; ++i) {
    correlation[i][i] = 1.0;
    for (std::size_t j = i + 1; j < d; ++j) {
      double cov = 0.0, var_i = 0.0, var_j = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        cov += scores[i][t] * scores[j][t];
        var_i += scores[i][t] * scores[i][t];
        var_j += scores[j][t] * scores[j][t];
      }
      const double denom = std::sqrt(var_i * var_j);
      const double rho = denom > 0.0 ? std::clamp(cov / denom, -0.999, 0.999)
                                     : 0.0;
      correlation[i][j] = correlation[j][i] = rho;
    }
  }
  const std::vector<std::vector<double>> chol = Cholesky(correlation);

  // Monte Carlo over the copula: correlated normals -> uniforms ->
  // empirical quantiles -> exceedance test.
  Rng rng(seed_);
  const int m = std::max(100, samples_);
  int exceed_count = 0;
  for (int s = 0; s < m; ++s) {
    // Independent normals, then correlate through L.
    std::vector<double> raw(d);
    for (std::size_t k = 0; k < d; ++k) raw[k] = rng.Normal();
    bool any = false;
    for (std::size_t k = 0; k < d && !any; ++k) {
      double zk = 0.0;
      for (std::size_t j = 0; j <= k; ++j) zk += chol[k][j] * raw[j];
      const double u = stats::NormalCdf(zk);
      // Empirical quantile: the u-th order statistic.
      const std::size_t idx = std::min(
          n - 1, static_cast<std::size_t>(u * static_cast<double>(n)));
      const double value = sorted[k][idx];
      any = ResourceVector::Exceeds(dims[k], value, capacities.Get(dims[k]));
    }
    exceed_count += any;
  }
  return static_cast<double>(exceed_count) / static_cast<double>(m);
}

}  // namespace doppler::core
