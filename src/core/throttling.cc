#include "core/throttling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "obs/metrics.h"
#include "stats/kde.h"
#include "stats/normal.h"
#include "util/random.h"

namespace doppler::core {

namespace {

using catalog::ResourceDim;
using catalog::ResourceVector;

// Hot path: one Probability call per candidate SKU per curve. Counter
// pointers are resolved once so each evaluation costs a relaxed atomic add.
void CountEvaluation(std::size_t samples_scanned) {
  static obs::Counter* const kEvaluations =
      obs::DefaultMetrics().GetCounter("ppm.throttling_evaluations");
  static obs::Counter* const kSamples =
      obs::DefaultMetrics().GetCounter("ppm.samples_scanned");
  kEvaluations->Increment();
  kSamples->Increment(samples_scanned);
}

// Dimensions modelled by both the trace and the capacity vector.
StatusOr<std::vector<ResourceDim>> SharedDims(
    const telemetry::PerfTrace& trace, const ResourceVector& capacities) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (trace.Has(dim) && capacities.Has(dim)) dims.push_back(dim);
  }
  if (dims.empty()) {
    return InvalidArgumentError(
        "no resource dimension shared between trace and capacities");
  }
  return dims;
}

}  // namespace

StatusOr<double> NonParametricEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  const std::size_t n = trace.num_samples();
  CountEvaluation(n);

  // Columnar union scan: instead of gathering every dimension per time
  // point (one cache line per dimension per row), sweep each contiguous
  // column once, marking rows throttled by ANY dimension so far. The
  // throttled-row count is identical to the row-major formulation — a row
  // is counted exactly once, by whichever column marks it first — so the
  // result is bit-for-bit the same at any scan order.
  const telemetry::DemandColumns matrix = trace.Columns(dims);

  // Single shared dimension: no mark buffer needed, pure count.
  if (matrix.num_columns == 1) {
    const double* const column = matrix.column(0);
    const double capacity = capacities.Get(matrix.dim(0));
    std::size_t throttled = 0;
    if (catalog::IsInvertedDim(matrix.dim(0))) {
      for (std::size_t i = 0; i < n; ++i) throttled += column[i] < capacity;
    } else {
      for (std::size_t i = 0; i < n; ++i) throttled += column[i] > capacity;
    }
    return static_cast<double>(throttled) / static_cast<double>(n);
  }

  // Reused per thread so the hot loop never allocates after warm-up; each
  // worker of a parallel curve build gets its own buffer.
  thread_local std::vector<unsigned char> throttled_rows;
  throttled_rows.assign(n, 0);
  std::size_t throttled = 0;
  for (std::size_t k = 0; k < matrix.num_columns; ++k) {
    const double* const column = matrix.column(k);
    const double capacity = capacities.Get(matrix.dim(k));
    if (catalog::IsInvertedDim(matrix.dim(k))) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!throttled_rows[i] && column[i] < capacity) {
          throttled_rows[i] = 1;
          ++throttled;
        }
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (!throttled_rows[i] && column[i] > capacity) {
          throttled_rows[i] = 1;
          ++throttled;
        }
      }
    }
    // Early-exit union test: once every row is throttled no further
    // dimension can change the count.
    if (throttled == n) break;
  }
  return static_cast<double>(throttled) / static_cast<double>(n);
}

StatusOr<double> KdeEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  CountEvaluation(trace.num_samples());
  double none_exceeds = 1.0;
  for (ResourceDim dim : dims) {
    DOPPLER_ASSIGN_OR_RETURN(stats::GaussianKde kde,
                             stats::GaussianKde::Fit(trace.Values(dim)));
    const double cap = capacities.Get(dim);
    // Inverted dimensions throttle when demand falls BELOW capacity.
    const double exceed =
        catalog::IsInvertedDim(dim) ? kde.Cdf(cap) : kde.Exceedance(cap);
    none_exceeds *= 1.0 - exceed;
  }
  return 1.0 - none_exceeds;
}

namespace {

// Cholesky factorisation of a symmetric positive-definite matrix with a
// diagonal jitter fallback: returns L with A ~= L L^T.
std::vector<std::vector<double>> Cholesky(
    std::vector<std::vector<double>> a) {
  const std::size_t n = a.size();
  // Jitter until the factorisation goes through (correlation matrices from
  // rank transforms are occasionally semi-definite).
  for (double jitter = 0.0; jitter < 0.2; jitter = jitter * 2.0 + 1e-6) {
    std::vector<std::vector<double>> l(n, std::vector<double>(n, 0.0));
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        double sum = a[i][j] + (i == j ? jitter : 0.0);
        for (std::size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
        if (i == j) {
          if (sum <= 0.0) {
            ok = false;
            break;
          }
          l[i][j] = std::sqrt(sum);
        } else {
          l[i][j] = sum / l[j][j];
        }
      }
    }
    if (ok) return l;
  }
  // Last resort: identity (independent sampling).
  std::vector<std::vector<double>> identity(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) identity[i][i] = 1.0;
  return identity;
}

}  // namespace

StatusOr<double> GaussianCopulaEstimator::Probability(
    const telemetry::PerfTrace& trace,
    const ResourceVector& capacities) const {
  DOPPLER_ASSIGN_OR_RETURN(std::vector<ResourceDim> dims,
                           SharedDims(trace, capacities));
  const std::size_t d = dims.size();
  const std::size_t n = trace.num_samples();
  CountEvaluation(n);

  // Rank-transform each marginal to normal scores; keep the sorted sample
  // as the empirical quantile function.
  std::vector<std::vector<double>> sorted(d);
  std::vector<std::vector<double>> scores(d, std::vector<double>(n));
  for (std::size_t k = 0; k < d; ++k) {
    const std::vector<double>& values = trace.Values(dims[k]);
    sorted[k] = values;
    std::sort(sorted[k].begin(), sorted[k].end());
    // Average ranks via position in the sorted array (ties get adjacent
    // ranks, adequate for correlation estimation).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return values[a] < values[b];
    });
    for (std::size_t r = 0; r < n; ++r) {
      scores[k][order[r]] = stats::NormalQuantile(
          (static_cast<double>(r) + 1.0) / (static_cast<double>(n) + 1.0));
    }
  }

  // Correlation matrix of the normal scores.
  std::vector<std::vector<double>> correlation(d, std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < d; ++i) {
    correlation[i][i] = 1.0;
    for (std::size_t j = i + 1; j < d; ++j) {
      double cov = 0.0, var_i = 0.0, var_j = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        cov += scores[i][t] * scores[j][t];
        var_i += scores[i][t] * scores[i][t];
        var_j += scores[j][t] * scores[j][t];
      }
      const double denom = std::sqrt(var_i * var_j);
      const double rho = denom > 0.0 ? std::clamp(cov / denom, -0.999, 0.999)
                                     : 0.0;
      correlation[i][j] = correlation[j][i] = rho;
    }
  }
  const std::vector<std::vector<double>> chol = Cholesky(correlation);

  // Monte Carlo over the copula: correlated normals -> uniforms ->
  // empirical quantiles -> exceedance test.
  Rng rng(seed_);
  const int m = std::max(100, samples_);
  int exceed_count = 0;
  for (int s = 0; s < m; ++s) {
    // Independent normals, then correlate through L.
    std::vector<double> raw(d);
    for (std::size_t k = 0; k < d; ++k) raw[k] = rng.Normal();
    bool any = false;
    for (std::size_t k = 0; k < d && !any; ++k) {
      double zk = 0.0;
      for (std::size_t j = 0; j <= k; ++j) zk += chol[k][j] * raw[j];
      const double u = stats::NormalCdf(zk);
      // Empirical quantile: the u-th order statistic.
      const std::size_t idx = std::min(
          n - 1, static_cast<std::size_t>(u * static_cast<double>(n)));
      const double value = sorted[k][idx];
      any = ResourceVector::Exceeds(dims[k], value, capacities.Get(dims[k]));
    }
    exceed_count += any;
  }
  return static_cast<double>(exceed_count) / static_cast<double>(m);
}

}  // namespace doppler::core
