#ifndef DOPPLER_CORE_RIGHTSIZING_H_
#define DOPPLER_CORE_RIGHTSIZING_H_

#include <string>

#include "core/price_performance.h"
#include "util/statusor.h"

namespace doppler::core {

/// Over-provisioning criteria (paper §5.1-5.2: ~10% of cloud customers
/// run SKUs far past the cheapest fully satisfying point; some pay for 4x
/// their max resource needs).
struct RightSizingOptions {
  /// Chosen-SKU monthly price must exceed the cheapest fully satisfying
  /// price by this factor to count as over-provisioned.
  double price_ratio_threshold = 1.5;
  /// Tolerance for "fully satisfying" performance.
  double full_satisfaction_epsilon = 0.01;
};

/// What right-sizing one cloud customer would change.
struct RightSizingAssessment {
  bool over_provisioned = false;
  /// Chosen price / cheapest-100% price (1.0 = perfectly sized).
  double price_headroom = 1.0;
  /// The current SKU's curve point.
  PricePerformancePoint current;
  /// The right-size target (cheapest fully satisfying SKU).
  PricePerformancePoint recommended;
  double monthly_savings = 0.0;
  double annual_savings = 0.0;
};

/// Assesses whether a cloud customer fixed on `chosen_sku_id` is
/// over-provisioned relative to their own price-performance curve, and the
/// savings from moving to the cheapest fully satisfying SKU. Fails with
/// NOT_FOUND when the chosen SKU is not on the curve or no SKU fully
/// satisfies the workload (an under-provisioned customer is not a
/// right-sizing case).
StatusOr<RightSizingAssessment> AssessRightSizing(
    const PricePerformanceCurve& curve, const std::string& chosen_sku_id,
    const RightSizingOptions& options = {});

}  // namespace doppler::core

#endif  // DOPPLER_CORE_RIGHTSIZING_H_
