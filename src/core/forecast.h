#ifndef DOPPLER_CORE_FORECAST_H_
#define DOPPLER_CORE_FORECAST_H_

#include <string>
#include <vector>

#include "core/recommender.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::core {

/// Capacity forecasting on top of the curve machinery: the paper shows
/// Doppler detecting a needed SKU change AFTER the workload grew (§5.2.3,
/// Fig. 11); this module runs the same analysis forward. Per-dimension
/// growth is fitted from the assessment window, demand is extrapolated
/// month by month, and the curve is re-evaluated at each horizon — telling
/// the customer when their current choice will start throttling and what
/// Doppler would recommend then.

/// One month of the forecast timeline.
struct HorizonPoint {
  int month = 0;  ///< Months after the assessment window (1-based).
  /// Cheapest SKU fully satisfying the extrapolated demand; empty id when
  /// nothing fits any more.
  std::string recommended_sku_id;
  std::string recommended_display_name;
  double recommended_monthly_cost = 0.0;
  /// Throttling probability the CURRENT SKU would suffer at this horizon
  /// (0 when no current SKU was given).
  double current_sku_probability = 0.0;
};

/// The full forecast.
struct GrowthForecast {
  /// Fitted linear growth per dimension, in native units per 30 days.
  catalog::ResourceVector monthly_growth;
  std::vector<HorizonPoint> timeline;
  /// First month where the current SKU's throttling probability crosses
  /// the tolerance; 0 = never within the horizon (or no current SKU).
  int upgrade_due_month = 0;
};

struct ForecastOptions {
  int horizon_months = 12;
  /// Throttling probability above which the current SKU counts as
  /// outgrown.
  double tolerance = 0.05;
  /// Dimensions never extrapolated (latency is a property of the storage,
  /// not a demand that grows).
  bool freeze_latency = true;
};

/// Fits growth from `trace` and walks the horizon, re-evaluating the curve
/// over a compiled candidate view at each month. `current_sku_id` may be
/// empty (no outgrow analysis). Fails on an empty trace or horizon < 1.
StatusOr<GrowthForecast> ForecastUpgrades(
    const telemetry::PerfTrace& trace, catalog::CompiledView candidates,
    const catalog::PricingService& pricing,
    const ThrottlingEstimator& estimator, const std::string& current_sku_id,
    const ForecastOptions& options = {});

/// Least-squares slope of an evenly spaced series, in units per sample.
/// Exposed for testing; 0 for fewer than two samples.
double LinearSlopePerSample(const std::vector<double>& values);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_FORECAST_H_
