#ifndef DOPPLER_CORE_NEGOTIABILITY_H_
#define DOPPLER_CORE_NEGOTIABILITY_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/statusor.h"

namespace doppler::core {

/// Per-customer negotiability summary: for each profiling dimension, a
/// continuous score in [0, 1] (higher = more negotiable, i.e. usage in that
/// dimension is transient/spiky) and a binarised flag. The continuous
/// vector feeds distance-based clustering (k-means/hierarchical); the flags
/// feed straight 2^k enumeration (paper §3.3 / §5.2.1).
struct NegotiabilityScores {
  /// Dimensions summarised, in order.
  std::vector<catalog::ResourceDim> dims;
  /// Continuous negotiability per dimension, aligned with `dims`.
  std::vector<double> scores;
  /// Binarised negotiability per dimension (true = negotiable).
  std::vector<bool> negotiable;
};

/// One of the summarisation strategies the paper compares (§3.3, Table 4).
/// Every strategy collapses each dimension's time series into one scalar.
class NegotiabilityStrategy {
 public:
  virtual ~NegotiabilityStrategy() = default;

  /// Summarises `trace` over `dims`. Dimensions missing from the trace are
  /// scored 0 (non-negotiable: nothing is known about them, so nothing is
  /// granted). Fails on an empty trace. A non-null `stats` cache (built
  /// over the SAME trace) lets order-statistic-based strategies reuse
  /// memoized per-dimension state; scores are bit-identical either way.
  StatusOr<NegotiabilityScores> Evaluate(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceDim>& dims,
      const telemetry::TraceStatsCache* stats = nullptr) const;

  /// Display name matching the paper's Table 4 rows.
  virtual const char* name() const = 0;

  /// Score vector handed to distance-based clustering. Defaults to the
  /// per-dimension Evaluate scores; CombinedStrategy widens it to the
  /// concatenated thresholding + AUC vector.
  virtual StatusOr<NegotiabilityScores> EvaluateForClustering(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceDim>& dims) const {
    return Evaluate(trace, dims);
  }

 protected:
  /// Continuous negotiability of one series, in [0, 1].
  virtual double ScoreSeries(const std::vector<double>& values) const = 0;

  /// Cache-aware scoring hook: strategies whose summary derives from plain
  /// order statistics (thresholding) override this to read the memoized
  /// state; the default ignores the cache. Must return exactly
  /// ScoreSeries(values).
  virtual double ScoreSeriesWithStats(
      const std::vector<double>& values,
      const telemetry::TraceStatsCache* stats,
      catalog::ResourceDim dim) const {
    (void)stats;
    (void)dim;
    return ScoreSeries(values);
  }

  /// Score above which a dimension counts as negotiable.
  virtual double NegotiableCutoff() const { return 0.5; }
};

/// The production strategy (the "threshold algorithm"): find the series
/// max, open a window one standard deviation below it, and measure how much
/// of the assessment period the counter spends inside the window. Short
/// total duration => the peaks are transient => negotiable. `rho` is the
/// duration fraction above which the dimension is non-negotiable; the
/// continuous score is 1 - duration fraction.
class ThresholdingStrategy : public NegotiabilityStrategy {
 public:
  explicit ThresholdingStrategy(double rho = 0.10) : rho_(rho) {}
  const char* name() const override { return "Thresholding Algorithm"; }
  double rho() const { return rho_; }

  /// The duration fraction itself (time within one sigma of the max).
  static double SpikeDurationFraction(const std::vector<double>& values);

  /// Same fraction with the max / standard deviation precomputed (e.g. read
  /// from a TraceStatsCache). Bit-identical to the self-computing overload.
  static double SpikeDurationFraction(const std::vector<double>& values,
                                      double max, double sd);

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double ScoreSeriesWithStats(const std::vector<double>& values,
                              const telemetry::TraceStatsCache* stats,
                              catalog::ResourceDim dim) const override;
  double NegotiableCutoff() const override { return 1.0 - rho_; }

 private:
  double rho_;
};

/// AUC of the ECDF after min-max scaling; high AUC = the counter hugs its
/// minimum = spiky usage.
class MinMaxAucStrategy : public NegotiabilityStrategy {
 public:
  const char* name() const override { return "MinMax Scaler AUC"; }

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double NegotiableCutoff() const override { return 0.72; }
};

/// AUC of the ECDF after max scaling only; anchoring at zero "better
/// identifies large spikes" (paper §3.3).
class MaxAucStrategy : public NegotiabilityStrategy {
 public:
  const char* name() const override { return "Max Scaler AUC"; }

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double NegotiableCutoff() const override { return 0.55; }
};

/// Fraction of samples at least three standard deviations from the mean,
/// rescaled so that a few-percent outlier mass saturates the score.
class OutlierPercentageStrategy : public NegotiabilityStrategy {
 public:
  const char* name() const override { return "Outlier Percentage"; }

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double NegotiableCutoff() const override { return 0.3; }
};

/// STL variance decomposition: 1 - (variance explained by trend plus
/// seasonality). Spike-dominated counters leave their variance in the STL
/// remainder and score high.
class StlVarianceStrategy : public NegotiabilityStrategy {
 public:
  /// `period` is the seasonal cycle in samples (default: one day at the
  /// DMA cadence).
  explicit StlVarianceStrategy(int period = 144) : period_(period) {}
  const char* name() const override { return "STL Variance Decomposition"; }

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double NegotiableCutoff() const override { return 0.5; }

 private:
  int period_;
};

/// MinMax AUC scores concatenated with the thresholding scores: the
/// "MinMax Scaler AUC adjusted with timeseries" row of Table 4. Bits come
/// from the thresholding half; the doubled continuous vector feeds
/// clustering.
class CombinedStrategy : public NegotiabilityStrategy {
 public:
  explicit CombinedStrategy(double rho = 0.10) : rho_(rho) {}
  const char* name() const override {
    return "MinMax Scaler AUC adjusted with timeseries";
  }

  /// Emits the concatenated score vector: k thresholding scores followed by
  /// k MinMax-AUC scores (bits from the thresholding half). Clustering
  /// callers use this; the base Evaluate keeps the one-score-per-dim shape
  /// using the thresholding scores.
  StatusOr<NegotiabilityScores> EvaluateCombined(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceDim>& dims) const;

  StatusOr<NegotiabilityScores> EvaluateForClustering(
      const telemetry::PerfTrace& trace,
      const std::vector<catalog::ResourceDim>& dims) const override {
    return EvaluateCombined(trace, dims);
  }

 protected:
  double ScoreSeries(const std::vector<double>& values) const override;
  double NegotiableCutoff() const override { return 1.0 - rho_; }

 private:
  double rho_;
};

/// All six strategies in the paper's Table 4 order.
std::vector<std::shared_ptr<NegotiabilityStrategy>> AllStrategies(double rho = 0.10);

}  // namespace doppler::core

#endif  // DOPPLER_CORE_NEGOTIABILITY_H_
