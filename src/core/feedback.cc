#include "core/feedback.h"

namespace doppler::core {

FeedbackLoop::FeedbackLoop(GroupModel initial, Options options)
    : options_(options), model_(std::move(initial)) {}

void FeedbackLoop::Record(MigrationFeedback feedback) {
  records_.push_back(std::move(feedback));
}

bool FeedbackLoop::MaybeRefresh() {
  // Retained, not-yet-processed records form the fresh training set.
  std::vector<std::pair<int, double>> fresh;
  for (std::size_t i = processed_; i < records_.size(); ++i) {
    const MigrationFeedback& record = records_[i];
    if (record.adopted_sku_id.empty()) continue;
    if (record.retention_days < options_.retention_threshold_days) continue;
    fresh.emplace_back(record.group_id, record.adopted_probability);
  }
  if (static_cast<int>(fresh.size()) < options_.min_feedback_per_refresh) {
    return false;
  }
  StatusOr<GroupModel> refreshed =
      GroupModel::FitWithPrior(fresh, model_, options_.prior_weight);
  if (!refreshed.ok()) return false;
  model_ = *std::move(refreshed);
  processed_ = records_.size();
  ++refreshes_;
  return true;
}

double FeedbackLoop::MigrationRate() const {
  if (records_.empty()) return 0.0;
  std::size_t migrated = 0;
  for (const MigrationFeedback& record : records_) {
    migrated += !record.adopted_sku_id.empty();
  }
  return static_cast<double>(migrated) / static_cast<double>(records_.size());
}

double FeedbackLoop::AdoptionRate() const {
  std::size_t migrated = 0;
  std::size_t adopted = 0;
  for (const MigrationFeedback& record : records_) {
    if (record.adopted_sku_id.empty()) continue;
    ++migrated;
    adopted += record.adopted_sku_id == record.recommended_sku_id;
  }
  if (migrated == 0) return 0.0;
  return static_cast<double>(adopted) / static_cast<double>(migrated);
}

double FeedbackLoop::RetentionRate() const {
  std::size_t migrated = 0;
  std::size_t retained = 0;
  for (const MigrationFeedback& record : records_) {
    if (record.adopted_sku_id.empty()) continue;
    ++migrated;
    retained += record.retention_days >= options_.retention_threshold_days;
  }
  if (migrated == 0) return 0.0;
  return static_cast<double>(retained) / static_cast<double>(migrated);
}

}  // namespace doppler::core
