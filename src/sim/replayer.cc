#include "sim/replayer.h"

#include <vector>

namespace doppler::sim {

namespace {

StatusOr<ReplayResult> Run(const telemetry::PerfTrace& demand,
                           const ResourceModel& model) {
  const std::size_t n = demand.num_samples();
  if (n == 0) return InvalidArgumentError("demand trace is empty");

  const std::vector<catalog::ResourceDim> dims = demand.PresentDims();

  ReplayResult result;
  result.observed = telemetry::PerfTrace(demand.interval_seconds());
  result.observed.set_id(demand.id());
  result.report.intervals = n;

  // Observed latency exists even when the demand trace has no latency
  // dimension (the simulator always produces it).
  std::vector<catalog::ResourceDim> out_dims = dims;
  bool has_latency = false;
  for (catalog::ResourceDim dim : out_dims) {
    has_latency |= dim == catalog::ResourceDim::kIoLatencyMs;
  }
  if (!has_latency) out_dims.push_back(catalog::ResourceDim::kIoLatencyMs);

  std::vector<std::vector<double>> columns(out_dims.size());
  for (auto& column : columns) column.reserve(n);

  std::size_t any_count = 0;
  std::array<std::size_t, catalog::kNumResourceDims> dim_counts{};
  for (std::size_t i = 0; i < n; ++i) {
    const IntervalOutcome outcome = model.Execute(demand.DemandAt(i));
    for (std::size_t d = 0; d < out_dims.size(); ++d) {
      columns[d].push_back(outcome.observed.Get(out_dims[d]));
    }
    if (outcome.any_throttled) ++any_count;
    for (int k = 0; k < catalog::kNumResourceDims; ++k) {
      if (outcome.throttled[static_cast<std::size_t>(k)]) {
        ++dim_counts[static_cast<std::size_t>(k)];
      }
    }
  }

  for (std::size_t d = 0; d < out_dims.size(); ++d) {
    DOPPLER_RETURN_IF_ERROR(
        result.observed.SetSeries(out_dims[d], std::move(columns[d])));
  }
  result.report.any_fraction =
      static_cast<double>(any_count) / static_cast<double>(n);
  for (int k = 0; k < catalog::kNumResourceDims; ++k) {
    result.report.per_dim_fraction[static_cast<std::size_t>(k)] =
        static_cast<double>(dim_counts[static_cast<std::size_t>(k)]) /
        static_cast<double>(n);
  }
  return result;
}

}  // namespace

StatusOr<ReplayResult> ReplayOnSku(const telemetry::PerfTrace& demand,
                                   const catalog::Sku& sku) {
  return Run(demand, ResourceModel(sku));
}

StatusOr<ReplayResult> ReplayOnSku(const telemetry::PerfTrace& demand,
                                   const catalog::Sku& sku,
                                   double iops_limit) {
  return Run(demand, ResourceModel(sku, iops_limit));
}

}  // namespace doppler::sim
