#ifndef DOPPLER_SIM_FAULT_INJECTOR_H_
#define DOPPLER_SIM_FAULT_INJECTOR_H_

#include <string>
#include <vector>

#include "util/csv.h"
#include "util/random.h"
#include "util/statusor.h"

namespace doppler::sim {

/// The corruption recipes the fault injector can apply to a clean trace
/// CSV. Each models a failure the DMA appliance sees in the field; the
/// robustness suite asserts that every one of them is either repaired (with
/// a populated TraceQualityReport) or rejected with a typed Status — never
/// an abort.
enum class FaultKind {
  kDropWindow = 0,  ///< Collector outage: a contiguous row window vanishes.
  kJitter,          ///< Clock drift: timestamps wobble off the cadence grid.
  kDuplicate,       ///< Retransmission: rows appear twice.
  kOutOfOrder,      ///< Buffered uploads land out of sequence.
  kNanBurst,        ///< A counter emits NaN for a contiguous burst.
  kNegativeSpike,   ///< Counter wrap-around: random cells turn negative.
  kColumnDrop,      ///< A dimension column is missing from the export.
  kZeroDead,        ///< A counter flatlines to zero end to end.
  kByteCorrupt,     ///< Random cells are overwritten with garbage bytes.
};

/// Number of fault kinds (for sweeping the whole space in tests).
inline constexpr int kNumFaultKinds = 9;

/// Stable snake_case name ("drop_window", "nan_burst", ...).
const char* FaultKindName(FaultKind kind);

/// One corruption step. Recipes compose: ApplyFaults runs a list of specs
/// in order, each drawing from the same seeded Rng, so a corruption
/// scenario is reproducible from (clean trace, recipe list, seed).
struct FaultSpec {
  FaultKind kind = FaultKind::kDropWindow;
  /// Fraction of rows (or cells) the fault touches, in (0, 1]. For
  /// kDropWindow it is the window length; for kJitter the timestamp offset
  /// as a fraction of the cadence.
  double magnitude = 0.1;
  /// Column the fault targets (kNanBurst, kNegativeSpike, kColumnDrop,
  /// kZeroDead, kByteCorrupt). Empty = a random non-time column.
  std::string column;
};

/// Applies one corruption step to a trace CSV. Pure with respect to the
/// Rng stream: identical (table, spec, rng state) produce identical
/// corruption. Fails with INVALID_ARGUMENT when the spec cannot apply
/// (unknown column, table too small to corrupt).
StatusOr<CsvTable> InjectFault(const CsvTable& table, const FaultSpec& spec,
                               Rng* rng);

/// Runs a recipe list in order; the output of each step feeds the next.
StatusOr<CsvTable> ApplyFaults(const CsvTable& table,
                               const std::vector<FaultSpec>& specs, Rng* rng);

/// Byte-level corruption of serialized CSV text: `num_flips` positions are
/// overwritten with random printable bytes (newlines included, so rows can
/// shear apart). This is the harshest recipe — the result may not even
/// parse as CSV, which is exactly what the never-abort property test
/// feeds through ReadTraceFile.
std::string CorruptBytes(const std::string& text, int num_flips, Rng* rng);

}  // namespace doppler::sim

#endif  // DOPPLER_SIM_FAULT_INJECTOR_H_
