#ifndef DOPPLER_SIM_FAULT_INJECTOR_H_
#define DOPPLER_SIM_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/statusor.h"

namespace doppler::sim {

/// The corruption recipes the fault injector can apply to a clean trace
/// CSV. Each models a failure the DMA appliance sees in the field; the
/// robustness suite asserts that every one of them is either repaired (with
/// a populated TraceQualityReport) or rejected with a typed Status — never
/// an abort.
enum class FaultKind {
  kDropWindow = 0,  ///< Collector outage: a contiguous row window vanishes.
  kJitter,          ///< Clock drift: timestamps wobble off the cadence grid.
  kDuplicate,       ///< Retransmission: rows appear twice.
  kOutOfOrder,      ///< Buffered uploads land out of sequence.
  kNanBurst,        ///< A counter emits NaN for a contiguous burst.
  kNegativeSpike,   ///< Counter wrap-around: random cells turn negative.
  kColumnDrop,      ///< A dimension column is missing from the export.
  kZeroDead,        ///< A counter flatlines to zero end to end.
  kByteCorrupt,     ///< Random cells are overwritten with garbage bytes.
};

/// Number of fault kinds (for sweeping the whole space in tests).
inline constexpr int kNumFaultKinds = 9;

/// Stable snake_case name ("drop_window", "nan_burst", ...).
const char* FaultKindName(FaultKind kind);

/// One corruption step. Recipes compose: ApplyFaults runs a list of specs
/// in order, each drawing from the same seeded Rng, so a corruption
/// scenario is reproducible from (clean trace, recipe list, seed).
struct FaultSpec {
  FaultKind kind = FaultKind::kDropWindow;
  /// Fraction of rows (or cells) the fault touches, in (0, 1]. For
  /// kDropWindow it is the window length; for kJitter the timestamp offset
  /// as a fraction of the cadence.
  double magnitude = 0.1;
  /// Column the fault targets (kNanBurst, kNegativeSpike, kColumnDrop,
  /// kZeroDead, kByteCorrupt). Empty = a random non-time column.
  std::string column;
};

/// Applies one corruption step to a trace CSV. Pure with respect to the
/// Rng stream: identical (table, spec, rng state) produce identical
/// corruption. Fails with INVALID_ARGUMENT when the spec cannot apply
/// (unknown column, table too small to corrupt).
StatusOr<CsvTable> InjectFault(const CsvTable& table, const FaultSpec& spec,
                               Rng* rng);

/// Runs a recipe list in order; the output of each step feeds the next.
StatusOr<CsvTable> ApplyFaults(const CsvTable& table,
                               const std::vector<FaultSpec>& specs, Rng* rng);

/// Byte-level corruption of serialized CSV text: `num_flips` positions are
/// overwritten with random printable bytes (newlines included, so rows can
/// shear apart). This is the harshest recipe — the result may not even
/// parse as CSV, which is exactly what the never-abort property test
/// feeds through ReadTraceFile.
std::string CorruptBytes(const std::string& text, int num_flips, Rng* rng);

// --- Serving-layer fault plans ---------------------------------------------
// Unlike the CSV recipes above (which mutate data), these inject FAILURES
// around the serving path: transient I/O errors at ingest and latency at
// stage boundaries. Both are pure functions of (seed, key) — no shared Rng
// stream, no call-order dependence — so a multi-threaded soak makes
// exactly the same injection decisions at any schedule and any worker
// count.

/// Deterministic transient-I/O fault plan: for each key (file path), the
/// first `FailuresFor(key)` read attempts fail with kUnavailable, then
/// reads succeed — modelling a file that is mid-write when the spool scan
/// finds it. Whether a key fails at all (probability `fail_fraction`) and
/// how many times (1..max_failures) are hashed from (seed, key).
class TransientIoPlan {
 public:
  TransientIoPlan(std::uint64_t seed, double fail_fraction, int max_failures);

  /// Number of leading attempts that fail for `key` (0 = never fails).
  int FailuresFor(const std::string& key) const;

  /// True when `attempt` (1-based) at `key` should fail.
  bool ShouldFail(const std::string& key, int attempt) const {
    return attempt <= FailuresFor(key);
  }

  /// Adapter in the shape serve::SpoolOptions::io_fault_hook expects:
  /// kUnavailable on injected attempts, OK otherwise.
  std::function<Status(const std::string& path, int attempt)> Hook() const;

 private:
  std::uint64_t seed_;
  double fail_fraction_;
  int max_failures_;
};

/// Deterministic stage-latency plan: each (key, stage) pair independently
/// sleeps a hashed duration in [0, max_delay] with probability
/// `delay_fraction`. The DECISIONS are schedule-independent (pure hash);
/// only the wall-clock sleep is real, which is exactly what a soak test
/// wants — genuine thread interleaving with reproducible injection sites.
class StageLatencyPlan {
 public:
  StageLatencyPlan(std::uint64_t seed, double delay_fraction,
                   double max_delay_seconds);

  /// The injected delay for (key, stage); 0 when the pair is not chosen.
  double DelaySeconds(const std::string& key, const char* stage) const;

  /// Stage-boundary hook for one request (serve::SpoolOptions::
  /// stage_hook_factory shape): sleeps DelaySeconds(key, stage).
  std::function<void(const char* stage)> HookFor(std::string key) const;

 private:
  std::uint64_t seed_;
  double delay_fraction_;
  double max_delay_seconds_;
};

/// Deterministic workload-drift plan for streaming soaks: for each key
/// (customer id) a pure hash of (seed, key) decides whether the stream
/// drifts, on which present dimension, where the ramp starts inside the
/// horizon, and how hard. Like the plans above, decisions are
/// schedule-independent — any batch slicing of the same underlying rows
/// sees the same ramp at the same absolute row — so a drift soak can
/// assert the monitor trips at exactly the planned tick.
class DriftPlan {
 public:
  /// A fraction `drift_fraction` of keys ramp one dimension by a factor
  /// in (1, max_factor], starting at a hashed row in the middle half of
  /// [0, horizon_rows).
  DriftPlan(std::uint64_t seed, double drift_fraction, double max_factor,
            std::size_t horizon_rows);

  struct Ramp {
    bool active = false;
    catalog::ResourceDim dim = catalog::ResourceDim::kCpu;
    /// First ramped row (absolute row index into the key's stream).
    std::size_t start_row = 0;
    /// Multiplier applied to rows [start_row, horizon).
    double factor = 1.0;
  };

  /// The key's ramp, with the dimension drawn from `dims` (inactive when
  /// the key is not chosen or `dims` is empty). Pure in (seed, key, dims).
  Ramp RampFor(const std::string& key,
               const std::vector<catalog::ResourceDim>& dims) const;

  /// Applies the key's ramp to `trace` in place (dimension drawn from the
  /// trace's present dims); no-op for unchosen keys.
  Status ApplyTo(const std::string& key, telemetry::PerfTrace* trace) const;

 private:
  std::uint64_t seed_;
  double drift_fraction_;
  double max_factor_;
  std::size_t horizon_rows_;
};

}  // namespace doppler::sim

#endif  // DOPPLER_SIM_FAULT_INJECTOR_H_
