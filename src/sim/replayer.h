#ifndef DOPPLER_SIM_REPLAYER_H_
#define DOPPLER_SIM_REPLAYER_H_

#include <array>

#include "catalog/sku.h"
#include "sim/resource_model.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::sim {

/// Summary of a replay: how often each dimension (and any dimension)
/// throttled. The any-dimension fraction is the simulator's ground-truth
/// counterpart of the throttling probability the PPM estimates from the
/// same trace (paper Eq. 1 / §5.4).
struct ThrottleReport {
  std::array<double, catalog::kNumResourceDims> per_dim_fraction{};
  double any_fraction = 0.0;
  std::size_t intervals = 0;

  double FractionFor(catalog::ResourceDim dim) const {
    return per_dim_fraction[static_cast<std::size_t>(dim)];
  }
};

/// Result of replaying a demand trace on one SKU.
struct ReplayResult {
  /// The counters an observer on the SKU would have collected (this is
  /// what paper Fig. 13 plots per SKU).
  telemetry::PerfTrace observed;
  ThrottleReport report;
};

/// Replays every interval of `demand` through a ResourceModel for `sku`.
/// Fails on an empty demand trace.
StatusOr<ReplayResult> ReplayOnSku(const telemetry::PerfTrace& demand,
                                   const catalog::Sku& sku);

/// MI variant with the file-layout-derived IOPS limit.
StatusOr<ReplayResult> ReplayOnSku(const telemetry::PerfTrace& demand,
                                   const catalog::Sku& sku,
                                   double iops_limit);

}  // namespace doppler::sim

#endif  // DOPPLER_SIM_REPLAYER_H_
