#include "sim/resource_model.h"

#include <algorithm>
#include <cmath>

namespace doppler::sim {

namespace {

using catalog::ResourceDim;

// Read IO pressure added per GB of working set that does not fit in
// memory: pages that would have been buffer-pool hits become reads.
constexpr double kSpillIopsPerGb = 120.0;

// A latency requirement is violated only when the observed latency
// materially exceeds it; workloads tolerate transient jitter around their
// habitual latency, so a hairline excursion is not throttling.
constexpr double kLatencyViolationMargin = 1.25;

// Latency inflation from storage utilisation: an M/M/1-style queueing
// multiplier gated by a high-order utilisation term, so latency stays at
// the device floor until the disk approaches saturation and then blows up
// sharply (the behaviour paper Fig. 13 shows for undersized SKUs).
double CongestionFactor(double utilisation) {
  utilisation = std::clamp(utilisation, 0.0, 0.98);
  const double high_order = std::pow(utilisation, 16.0);
  return 1.0 + 0.1 * high_order / (1.0 - utilisation);
}

}  // namespace

ResourceModel::ResourceModel(const catalog::Sku& sku)
    : capacities_(sku.Capacities()), min_latency_ms_(sku.min_io_latency_ms) {}

ResourceModel::ResourceModel(const catalog::Sku& sku, double iops_limit)
    : capacities_(sku.CapacitiesWithIopsLimit(iops_limit)),
      min_latency_ms_(sku.min_io_latency_ms) {}

IntervalOutcome ResourceModel::Execute(
    const catalog::ResourceVector& demand) const {
  IntervalOutcome outcome;
  auto flag = [&outcome](ResourceDim dim) {
    outcome.throttled[static_cast<std::size_t>(dim)] = true;
    outcome.any_throttled = true;
  };

  // CPU: clip; excess demand queues behind saturated workers.
  double cpu_queue_factor = 1.0;
  if (demand.Has(ResourceDim::kCpu)) {
    const double want = demand.Get(ResourceDim::kCpu);
    const double cap = capacities_.Get(ResourceDim::kCpu);
    outcome.observed.Set(ResourceDim::kCpu, std::min(want, cap));
    if (want > cap) {
      flag(ResourceDim::kCpu);
      cpu_queue_factor = want / cap;
    }
  }

  // Memory: shortfall spills to read IO.
  double spill_iops = 0.0;
  if (demand.Has(ResourceDim::kMemoryGb)) {
    const double want = demand.Get(ResourceDim::kMemoryGb);
    const double cap = capacities_.Get(ResourceDim::kMemoryGb);
    outcome.observed.Set(ResourceDim::kMemoryGb, std::min(want, cap));
    if (want > cap) {
      flag(ResourceDim::kMemoryGb);
      spill_iops = (want - cap) * kSpillIopsPerGb;
    }
  }

  // IOPS: spill adds to the offered load before the cap applies.
  double storage_utilisation = 0.0;
  if (demand.Has(ResourceDim::kIops)) {
    const double offered = demand.Get(ResourceDim::kIops) + spill_iops;
    const double cap = capacities_.Get(ResourceDim::kIops);
    outcome.observed.Set(ResourceDim::kIops, std::min(offered, cap));
    storage_utilisation = cap > 0.0 ? offered / cap : 1.0;
    if (offered > cap) flag(ResourceDim::kIops);
  }

  // Log rate: writes stall at the cap.
  if (demand.Has(ResourceDim::kLogRateMbps)) {
    const double want = demand.Get(ResourceDim::kLogRateMbps);
    const double cap = capacities_.Get(ResourceDim::kLogRateMbps);
    outcome.observed.Set(ResourceDim::kLogRateMbps, std::min(want, cap));
    if (want > cap) flag(ResourceDim::kLogRateMbps);
  }

  // Workers: requests beyond the cap are rejected (counted as throttling).
  if (demand.Has(ResourceDim::kWorkers)) {
    const double want = demand.Get(ResourceDim::kWorkers);
    const double cap = capacities_.Get(ResourceDim::kWorkers);
    outcome.observed.Set(ResourceDim::kWorkers, std::min(want, cap));
    if (want > cap) flag(ResourceDim::kWorkers);
  }

  // IO latency: the SKU's floor, inflated by storage congestion and CPU
  // queueing. Throttled when the workload needed better latency than it
  // received.
  {
    const double observed_latency = min_latency_ms_ *
                                    CongestionFactor(storage_utilisation) *
                                    cpu_queue_factor;
    outcome.observed.Set(ResourceDim::kIoLatencyMs, observed_latency);
    if (demand.Has(ResourceDim::kIoLatencyMs) &&
        observed_latency >
            demand.Get(ResourceDim::kIoLatencyMs) * kLatencyViolationMargin) {
      flag(ResourceDim::kIoLatencyMs);
    }
  }

  // Storage: above max data size the database stops growing.
  if (demand.Has(ResourceDim::kStorageGb)) {
    const double want = demand.Get(ResourceDim::kStorageGb);
    const double cap = capacities_.Get(ResourceDim::kStorageGb);
    outcome.observed.Set(ResourceDim::kStorageGb, std::min(want, cap));
    if (want > cap) flag(ResourceDim::kStorageGb);
  }

  return outcome;
}

}  // namespace doppler::sim
