#ifndef DOPPLER_SIM_RESOURCE_MODEL_H_
#define DOPPLER_SIM_RESOURCE_MODEL_H_

#include <array>

#include "catalog/resource.h"
#include "catalog/sku.h"

namespace doppler::sim {

/// Outcome of offering one interval's demand to a SKU: the counters an
/// observer on that SKU would record, plus which dimensions throttled.
struct IntervalOutcome {
  /// Observed (realised) counters: demand clipped to capacity, with IO
  /// latency inflated by utilisation/queueing.
  catalog::ResourceVector observed;
  /// Per-dimension throttle flags, indexed by ResourceDim.
  std::array<bool, catalog::kNumResourceDims> throttled{};
  /// True when any dimension throttled.
  bool any_throttled = false;
};

/// Capacity-and-queueing model of a SKU executing offered load (DESIGN.md
/// §2: the substitution for replaying on real Azure hardware). Behaviour:
///
///  - CPU demand above the vCore count is clipped; the excess queues, which
///    inflates IO latency (requests wait behind saturated workers).
///  - Memory shortfall spills the working set: every missing GB adds read
///    IO pressure before the IOPS cap is applied.
///  - IOPS demand above the cap is clipped and the M/M/1-style latency
///    inflation 1/(1 - utilisation) applies as utilisation approaches 1.
///  - Log-rate demand above the cap stalls writes (counted as throttling;
///    the observed rate is the cap).
///  - The observed IO latency is never below the SKU's minimum latency.
///  - Storage demand above max data size throttles (in production the
///    database would stop accepting writes).
class ResourceModel {
 public:
  /// Models `sku` with its standard capacities.
  explicit ResourceModel(const catalog::Sku& sku);

  /// Models `sku` with an explicit IOPS limit (MI file-layout path).
  ResourceModel(const catalog::Sku& sku, double iops_limit);

  /// Executes one interval of offered demand.
  IntervalOutcome Execute(const catalog::ResourceVector& demand) const;

  const catalog::ResourceVector& capacities() const { return capacities_; }

 private:
  catalog::ResourceVector capacities_;
  double min_latency_ms_;
};

}  // namespace doppler::sim

#endif  // DOPPLER_SIM_RESOURCE_MODEL_H_
