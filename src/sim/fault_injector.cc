#include "sim/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "telemetry/perf_trace.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace doppler::sim {

namespace {

/// Picks the column a spec targets: the named one, or a random non-time
/// column. Returns the column index.
StatusOr<std::size_t> TargetColumn(const CsvTable& table,
                                   const FaultSpec& spec, Rng* rng) {
  if (!spec.column.empty()) {
    return table.ColumnIndex(spec.column);
  }
  std::vector<std::size_t> candidates;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (table.header()[c] != "t_seconds") candidates.push_back(c);
  }
  if (candidates.empty()) {
    return InvalidArgumentError("no non-time column to corrupt");
  }
  return candidates[rng->UniformInt(candidates.size())];
}

/// Number of rows a fractional magnitude touches — at least one.
std::size_t TouchedRows(const CsvTable& table, double magnitude) {
  const double frac = std::clamp(magnitude, 0.0, 1.0);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             frac * static_cast<double>(table.num_rows()))));
}

CsvTable CopyHeader(const CsvTable& table) {
  return CsvTable(table.header());
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropWindow:
      return "drop_window";
    case FaultKind::kJitter:
      return "jitter";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kOutOfOrder:
      return "out_of_order";
    case FaultKind::kNanBurst:
      return "nan_burst";
    case FaultKind::kNegativeSpike:
      return "negative_spike";
    case FaultKind::kColumnDrop:
      return "column_drop";
    case FaultKind::kZeroDead:
      return "zero_dead";
    case FaultKind::kByteCorrupt:
      return "byte_corrupt";
  }
  return "unknown";
}

StatusOr<CsvTable> InjectFault(const CsvTable& table, const FaultSpec& spec,
                               Rng* rng) {
  if (rng == nullptr) {
    return InvalidArgumentError("fault injection needs an Rng");
  }
  if (table.num_rows() == 0) {
    return InvalidArgumentError("cannot corrupt an empty table");
  }

  switch (spec.kind) {
    case FaultKind::kDropWindow: {
      const std::size_t len =
          std::min(TouchedRows(table, spec.magnitude), table.num_rows() - 1);
      const std::size_t start = rng->UniformInt(table.num_rows() - len + 1);
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        if (r >= start && r < start + len) continue;
        (void)out.AddRow(table.row(r));
      }
      return out;
    }

    case FaultKind::kJitter: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col,
                               table.ColumnIndex("t_seconds"));
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row = table.row(r);
        char* end = nullptr;
        const double t = std::strtod(row[time_col].c_str(), &end);
        // Wobble by up to +/- magnitude of the nominal 10-minute cadence.
        const double wobble = rng->Uniform(-spec.magnitude, spec.magnitude) *
                              telemetry::kDmaIntervalSeconds;
        row[time_col] = FormatDouble(t + wobble, 1);
        (void)out.AddRow(std::move(row));
      }
      return out;
    }

    case FaultKind::kDuplicate: {
      const std::size_t copies = TouchedRows(table, spec.magnitude);
      CsvTable out = CopyHeader(table);
      // Choose rows to duplicate up front so the pass stays one sweep.
      std::vector<int> extra(table.num_rows(), 0);
      for (std::size_t i = 0; i < copies; ++i) {
        ++extra[rng->UniformInt(table.num_rows())];
      }
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        (void)out.AddRow(table.row(r));
        for (int k = 0; k < extra[r]; ++k) (void)out.AddRow(table.row(r));
      }
      return out;
    }

    case FaultKind::kOutOfOrder: {
      const std::size_t swaps = TouchedRows(table, spec.magnitude);
      std::vector<std::vector<std::string>> rows;
      rows.reserve(table.num_rows());
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        rows.push_back(table.row(r));
      }
      for (std::size_t i = 0; i < swaps && rows.size() >= 2; ++i) {
        const std::size_t a = rng->UniformInt(rows.size());
        const std::size_t b = rng->UniformInt(rows.size());
        std::swap(rows[a], rows[b]);
      }
      CsvTable out = CopyHeader(table);
      for (auto& row : rows) (void)out.AddRow(std::move(row));
      return out;
    }

    case FaultKind::kNanBurst: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t col, TargetColumn(table, spec, rng));
      const std::size_t len =
          std::min(TouchedRows(table, spec.magnitude), table.num_rows());
      const std::size_t start = rng->UniformInt(table.num_rows() - len + 1);
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row = table.row(r);
        if (r >= start && r < start + len) row[col] = "nan";
        (void)out.AddRow(std::move(row));
      }
      return out;
    }

    case FaultKind::kNegativeSpike: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t col, TargetColumn(table, spec, rng));
      const std::size_t hits = TouchedRows(table, spec.magnitude);
      std::vector<bool> hit(table.num_rows(), false);
      for (std::size_t i = 0; i < hits; ++i) {
        hit[rng->UniformInt(table.num_rows())] = true;
      }
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row = table.row(r);
        if (hit[r]) row[col] = "-" + row[col];
        (void)out.AddRow(std::move(row));
      }
      return out;
    }

    case FaultKind::kColumnDrop: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t col, TargetColumn(table, spec, rng));
      std::vector<std::string> header;
      for (std::size_t c = 0; c < table.num_columns(); ++c) {
        if (c != col) header.push_back(table.header()[c]);
      }
      CsvTable out((std::vector<std::string>(header)));
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row;
        row.reserve(header.size());
        for (std::size_t c = 0; c < table.num_columns(); ++c) {
          if (c != col) row.push_back(table.row(r)[c]);
        }
        (void)out.AddRow(std::move(row));
      }
      return out;
    }

    case FaultKind::kZeroDead: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t col, TargetColumn(table, spec, rng));
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row = table.row(r);
        row[col] = "0";
        (void)out.AddRow(std::move(row));
      }
      return out;
    }

    case FaultKind::kByteCorrupt: {
      DOPPLER_ASSIGN_OR_RETURN(std::size_t col, TargetColumn(table, spec, rng));
      const std::size_t hits = TouchedRows(table, spec.magnitude);
      std::vector<bool> hit(table.num_rows(), false);
      for (std::size_t i = 0; i < hits; ++i) {
        hit[rng->UniformInt(table.num_rows())] = true;
      }
      CsvTable out = CopyHeader(table);
      for (std::size_t r = 0; r < table.num_rows(); ++r) {
        std::vector<std::string> row = table.row(r);
        if (hit[r]) {
          // Overwrite the cell with garbage printable bytes.
          std::string garbage;
          const std::size_t len = 1 + rng->UniformInt(6);
          for (std::size_t k = 0; k < len; ++k) {
            garbage.push_back(
                static_cast<char>('!' + rng->UniformInt('~' - '!' + 1)));
          }
          row[col] = garbage;
        }
        (void)out.AddRow(std::move(row));
      }
      return out;
    }
  }
  return InvalidArgumentError("unknown fault kind");
}

StatusOr<CsvTable> ApplyFaults(const CsvTable& table,
                               const std::vector<FaultSpec>& specs, Rng* rng) {
  CsvTable current = table;
  for (const FaultSpec& spec : specs) {
    DOPPLER_ASSIGN_OR_RETURN(current, InjectFault(current, spec, rng));
  }
  return current;
}

namespace {

/// FNV-1a over the key bytes folded with splitmix64 — a stable, portable
/// hash for fault decisions (std::hash would tie injection sites to the
/// standard library build).
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashKey(std::uint64_t seed, const std::string& key,
                      const char* salt) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (const char* p = salt; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  for (char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return SplitMix64(h);
}

/// Maps a hash to [0, 1) with 53 bits of the mantissa.
double UnitFromHash(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

TransientIoPlan::TransientIoPlan(std::uint64_t seed, double fail_fraction,
                                 int max_failures)
    : seed_(seed),
      fail_fraction_(std::clamp(fail_fraction, 0.0, 1.0)),
      max_failures_(std::max(0, max_failures)) {}

int TransientIoPlan::FailuresFor(const std::string& key) const {
  if (max_failures_ == 0) return 0;
  const std::uint64_t pick = HashKey(seed_, key, "io.pick");
  if (UnitFromHash(pick) >= fail_fraction_) return 0;
  const std::uint64_t count = HashKey(seed_, key, "io.count");
  return 1 + static_cast<int>(count %
                              static_cast<std::uint64_t>(max_failures_));
}

std::function<Status(const std::string&, int)> TransientIoPlan::Hook() const {
  // Copy the plan into the closure: the hook outlives no one, the plan is
  // three words.
  TransientIoPlan plan = *this;
  return [plan](const std::string& path, int attempt) -> Status {
    if (plan.ShouldFail(path, attempt)) {
      return UnavailableError("injected transient I/O fault on '" + path +
                              "' (attempt " + std::to_string(attempt) + ")");
    }
    return OkStatus();
  };
}

StageLatencyPlan::StageLatencyPlan(std::uint64_t seed, double delay_fraction,
                                   double max_delay_seconds)
    : seed_(seed),
      delay_fraction_(std::clamp(delay_fraction, 0.0, 1.0)),
      max_delay_seconds_(std::max(0.0, max_delay_seconds)) {}

double StageLatencyPlan::DelaySeconds(const std::string& key,
                                      const char* stage) const {
  if (max_delay_seconds_ <= 0.0) return 0.0;
  const std::string site = key + "|" + stage;
  if (UnitFromHash(HashKey(seed_, site, "lat.pick")) >= delay_fraction_) {
    return 0.0;
  }
  return UnitFromHash(HashKey(seed_, site, "lat.len")) * max_delay_seconds_;
}

std::function<void(const char*)> StageLatencyPlan::HookFor(
    std::string key) const {
  StageLatencyPlan plan = *this;
  return [plan, key = std::move(key)](const char* stage) {
    const double delay = plan.DelaySeconds(key, stage);
    if (delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  };
}

DriftPlan::DriftPlan(std::uint64_t seed, double drift_fraction,
                     double max_factor, std::size_t horizon_rows)
    : seed_(seed),
      drift_fraction_(std::clamp(drift_fraction, 0.0, 1.0)),
      max_factor_(std::max(1.0, max_factor)),
      horizon_rows_(std::max<std::size_t>(4, horizon_rows)) {}

DriftPlan::Ramp DriftPlan::RampFor(
    const std::string& key,
    const std::vector<catalog::ResourceDim>& dims) const {
  Ramp ramp;
  if (dims.empty()) return ramp;
  if (UnitFromHash(HashKey(seed_, key, "drift.pick")) >= drift_fraction_) {
    return ramp;
  }
  ramp.active = true;
  ramp.dim = dims[HashKey(seed_, key, "drift.dim") % dims.size()];
  // Middle half of the horizon: late enough that the monitor has a
  // baseline, early enough that ramped rows dominate the tail.
  const std::size_t span = horizon_rows_ / 2;
  ramp.start_row =
      horizon_rows_ / 4 + HashKey(seed_, key, "drift.row") % span;
  ramp.factor = 1.0 + UnitFromHash(HashKey(seed_, key, "drift.len")) *
                          (max_factor_ - 1.0);
  return ramp;
}

Status DriftPlan::ApplyTo(const std::string& key,
                          telemetry::PerfTrace* trace) const {
  if (trace == nullptr) {
    return InvalidArgumentError("DriftPlan::ApplyTo requires a trace");
  }
  const Ramp ramp = RampFor(key, trace->PresentDims());
  if (!ramp.active) return OkStatus();
  return workload::RampDimension(trace, ramp.dim, ramp.start_row,
                                 ramp.factor);
}

std::string CorruptBytes(const std::string& text, int num_flips, Rng* rng) {
  std::string out = text;
  if (out.empty() || rng == nullptr) return out;
  for (int i = 0; i < num_flips; ++i) {
    const std::size_t pos = rng->UniformInt(out.size());
    // Printable garbage plus the two structural characters, so corruption
    // can also shear rows and fields apart.
    constexpr char kAlphabet[] = "0123456789abcxyz!@#$%^&*,\n";
    out[pos] = kAlphabet[rng->UniformInt(sizeof(kAlphabet) - 1)];
  }
  return out;
}

}  // namespace doppler::sim
