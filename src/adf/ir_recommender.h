#ifndef DOPPLER_ADF_IR_RECOMMENDER_H_
#define DOPPLER_ADF_IR_RECOMMENDER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/pricing.h"
#include "core/price_performance.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::adf {

/// The Azure Data Factory adaptation (paper §7: "One concrete example is
/// our engagement with Azure Data Factory, in which Doppler has been
/// adapted to recommend appropriate compute infrastructure optimized by
/// cost and performance"). Data-flow pipelines run on integration-runtime
/// (IR) nodes; picking the node family/size is the same problem as SKU
/// selection: offered shapes with capacities and prices, a demand history,
/// and a cost/performance trade-off. The adaptation below reuses the
/// price-performance machinery end to end — IR shapes are expressed as
/// Sku records, pipeline-run telemetry as a PerfTrace, and ADF's
/// hours-of-use billing as a PricingService.

/// One executed pipeline run, as ADF's run telemetry reports it.
struct PipelineRun {
  double duration_minutes = 10.0;
  /// Mean cores the data flow actually used during the run.
  double avg_cores_used = 4.0;
  /// Peak executor memory across the run, GB.
  double peak_memory_gb = 16.0;
};

/// IR node families (memory per core differs, as with the SQL hardware
/// generations).
enum class IrFamily { kGeneralPurpose, kMemoryOptimized };

const char* IrFamilyName(IrFamily family);

/// The IR shape ladder as a SkuCatalog: ids "IR_GP_<cores>" /
/// "IR_MO_<cores>", cores in {4, 8, 16, 32, 48, 64, 96, 144, 272}.
/// price_per_hour is the full-node hourly rate; billing multiplies by the
/// hours the pipelines actually run (AdfPricing).
catalog::SkuCatalog BuildIrCatalog();

/// Converts run telemetry into the engine's trace format: one sample per
/// run, cpu = mean cores used, memory = peak executor memory. Fails on an
/// empty history.
StatusOr<telemetry::PerfTrace> TraceFromRuns(
    const std::vector<PipelineRun>& runs);

/// ADF bills IR nodes for the hours pipelines run, not for the month:
/// monthly cost = node hourly rate x monthly run-hours.
class AdfPricing : public catalog::PricingService {
 public:
  explicit AdfPricing(double monthly_run_hours)
      : monthly_run_hours_(monthly_run_hours) {}

  double MonthlyCost(const catalog::Sku& sku) const override {
    return sku.price_per_hour * monthly_run_hours_;
  }

 private:
  double monthly_run_hours_;
};

/// The answer: which node shape to configure for the pipeline fleet.
struct IrRecommendation {
  catalog::Sku node;
  double monthly_cost = 0.0;
  /// Probability that a run's demand exceeds the node (slow/failed runs).
  double overload_probability = 0.0;
  core::PricePerformanceCurve curve;
};

/// Recommends the IR node: builds the price-performance curve over the IR
/// ladder from the run history and picks the point closest below
/// `overload_tolerance` (data flows tolerate occasional slow runs exactly
/// like workloads tolerate brief throttling). `monthly_run_hours` scales
/// billing. Fails when the history is empty or nothing fits.
StatusOr<IrRecommendation> RecommendIntegrationRuntime(
    const std::vector<PipelineRun>& runs, double monthly_run_hours,
    double overload_tolerance = 0.02);

}  // namespace doppler::adf

#endif  // DOPPLER_ADF_IR_RECOMMENDER_H_
