#include "adf/ir_recommender.h"

#include "core/throttling.h"

namespace doppler::adf {

namespace {

using catalog::ResourceDim;

// Per-core-hour rates, mirroring the public ADF data-flow price sheet's
// family split.
constexpr double kGeneralPerCoreHour = 0.274;
constexpr double kMemoryOptimizedPerCoreHour = 0.343;

}  // namespace

const char* IrFamilyName(IrFamily family) {
  switch (family) {
    case IrFamily::kGeneralPurpose:
      return "General";
    case IrFamily::kMemoryOptimized:
      return "MemoryOptimized";
  }
  return "?";
}

catalog::SkuCatalog BuildIrCatalog() {
  static const int kCores[] = {4, 8, 16, 32, 48, 64, 96, 144, 272};
  catalog::SkuCatalog ladder;
  for (IrFamily family :
       {IrFamily::kGeneralPurpose, IrFamily::kMemoryOptimized}) {
    const bool memory_optimized = family == IrFamily::kMemoryOptimized;
    for (int cores : kCores) {
      catalog::Sku node;
      node.id = std::string("IR_") + (memory_optimized ? "MO" : "GP") + "_" +
                std::to_string(cores);
      node.vcores = cores;
      node.max_memory_gb = (memory_optimized ? 8.0 : 4.0) * cores;
      // Pipelines are not IO- or storage-bound on the node itself; leave
      // those capacities effectively unconstrained.
      node.max_iops = 1e9;
      node.max_log_rate_mbps = 1e9;
      node.min_io_latency_ms = 0.0;
      node.max_data_gb = 1e9;
      node.max_workers = 1e9;
      node.price_per_hour =
          (memory_optimized ? kMemoryOptimizedPerCoreHour
                            : kGeneralPerCoreHour) *
          cores;
      ladder.Add(std::move(node));
    }
  }
  return ladder;
}

StatusOr<telemetry::PerfTrace> TraceFromRuns(
    const std::vector<PipelineRun>& runs) {
  if (runs.empty()) {
    return InvalidArgumentError("no pipeline runs in the history");
  }
  std::vector<double> cores;
  std::vector<double> memory;
  cores.reserve(runs.size());
  memory.reserve(runs.size());
  for (const PipelineRun& run : runs) {
    if (run.duration_minutes <= 0.0) {
      return InvalidArgumentError("pipeline run with non-positive duration");
    }
    cores.push_back(run.avg_cores_used);
    memory.push_back(run.peak_memory_gb);
  }
  telemetry::PerfTrace trace;
  trace.set_id("adf-pipeline-history");
  DOPPLER_RETURN_IF_ERROR(trace.SetSeries(ResourceDim::kCpu, std::move(cores)));
  DOPPLER_RETURN_IF_ERROR(
      trace.SetSeries(ResourceDim::kMemoryGb, std::move(memory)));
  return trace;
}

StatusOr<IrRecommendation> RecommendIntegrationRuntime(
    const std::vector<PipelineRun>& runs, double monthly_run_hours,
    double overload_tolerance) {
  if (monthly_run_hours <= 0.0) {
    return InvalidArgumentError("monthly run-hours must be positive");
  }
  DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace, TraceFromRuns(runs));
  const AdfPricing pricing(monthly_run_hours);
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(BuildIrCatalog(), &pricing);
  const core::NonParametricEstimator estimator;
  DOPPLER_ASSIGN_OR_RETURN(
      core::PricePerformanceCurve curve,
      core::PricePerformanceCurve::Build(
          trace, compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          compiled.pricing(), estimator));
  DOPPLER_ASSIGN_OR_RETURN(core::PricePerformancePoint point,
                           curve.ClosestBelowTarget(overload_tolerance));
  IrRecommendation recommendation;
  recommendation.node = point.sku;
  recommendation.monthly_cost = point.monthly_price;
  recommendation.overload_probability = point.MonotoneProbability();
  recommendation.curve = std::move(curve);
  return recommendation;
}

}  // namespace doppler::adf
