#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace doppler::ml {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  const std::size_t d = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < d; ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

namespace {

// k-means++ seeding: first centroid uniform, subsequent centroids sampled
// proportionally to squared distance from the nearest chosen centroid.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& points, int k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(points[rng->UniformInt(points.size())]);

  std::vector<double> nearest(points.size(),
                              std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest[i] =
          std::min(nearest[i], SquaredDistance(points[i], centroids.back()));
      total += nearest[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; duplicate one.
      centroids.push_back(points[rng->UniformInt(points.size())]);
      continue;
    }
    double target = rng->Uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= nearest[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

KMeansResult RunOnce(const std::vector<std::vector<double>>& points,
                     const KMeansOptions& options, int k, Rng* rng) {
  const std::size_t n = points.size();
  const std::size_t d = points[0].size();

  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);
  result.assignments.assign(n, 0);

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_cluster = 0;
      for (int c = 0; c < k; ++c) {
        const double dist = SquaredDistance(points[i], result.centroids[c]);
        if (dist < best) {
          best = dist;
          best_cluster = c;
        }
      }
      result.assignments[i] = best_cluster;
    }
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k), std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = result.assignments[i];
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) sums[c][j] += points[i][j];
    }
    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // Empty cluster keeps its centroid.
      std::vector<double> updated(d);
      for (std::size_t j = 0; j < d; ++j) {
        updated[j] = sums[c][j] / static_cast<double>(counts[c]);
      }
      movement += SquaredDistance(updated, result.centroids[c]);
      result.centroids[c] = std::move(updated);
    }
    if (movement < options.tolerance) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(points[i], result.centroids[result.assignments[i]]);
  }
  return result;
}

}  // namespace

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options, Rng* rng) {
  if (points.empty()) {
    return InvalidArgumentError("k-means requires at least one point");
  }
  const std::size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) {
      return InvalidArgumentError("k-means points must share one dimension");
    }
  }
  if (options.k < 1) return InvalidArgumentError("k must be >= 1");
  if (rng == nullptr) return InvalidArgumentError("rng must not be null");

  const int k = std::min<int>(options.k, static_cast<int>(points.size()));
  const int restarts = std::max(1, options.restarts);

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < restarts; ++r) {
    KMeansResult run = RunOnce(points, options, k, rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace doppler::ml
