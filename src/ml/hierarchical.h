#ifndef DOPPLER_ML_HIERARCHICAL_H_
#define DOPPLER_ML_HIERARCHICAL_H_

#include <vector>

#include "util/statusor.h"

namespace doppler::ml {

/// Linkage criterion for merging clusters.
enum class Linkage {
  kSingle,    ///< Minimum pairwise distance.
  kComplete,  ///< Maximum pairwise distance.
  kAverage,   ///< Mean pairwise distance (UPGMA).
};

/// Agglomerative hierarchical clustering cut at `k` clusters; the generic
/// alternative to 2^k enumeration the paper cites (Johnson 1967). Returns a
/// cluster index per point, labelled 0..k-1 in order of first appearance.
/// `points` must be non-empty and rectangular; k is clamped to [1, n].
/// Complexity is O(n^3) worst case (naive Lance-Williams), adequate for the
/// profiling vectors involved (dimension <= 8, n in the thousands is not
/// needed because enumeration is used at that scale).
StatusOr<std::vector<int>> HierarchicalCluster(
    const std::vector<std::vector<double>>& points, int k,
    Linkage linkage = Linkage::kAverage);

}  // namespace doppler::ml

#endif  // DOPPLER_ML_HIERARCHICAL_H_
