#include "ml/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/kmeans.h"

namespace doppler::ml {

StatusOr<std::vector<int>> HierarchicalCluster(
    const std::vector<std::vector<double>>& points, int k, Linkage linkage) {
  const std::size_t n = points.size();
  if (n == 0) {
    return InvalidArgumentError("clustering requires at least one point");
  }
  const std::size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) {
      return InvalidArgumentError("points must share one dimension");
    }
  }
  k = std::clamp<int>(k, 1, static_cast<int>(n));

  // Active cluster list; each cluster is a member-index set plus size.
  std::vector<std::vector<std::size_t>> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = {i};
  std::vector<bool> alive(n, true);

  // Pairwise cluster distance matrix, updated by Lance-Williams.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] =
          std::sqrt(SquaredDistance(points[i], points[j]));
    }
  }

  int active = static_cast<int>(n);
  while (active > k) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t a = 0;
    std::size_t b = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i][j] < best) {
          best = dist[i][j];
          a = i;
          b = j;
        }
      }
    }

    // Merge b into a, then update distances from a to every other cluster.
    const double size_a = static_cast<double>(members[a].size());
    const double size_b = static_cast<double>(members[b].size());
    for (std::size_t j = 0; j < n; ++j) {
      if (!alive[j] || j == a || j == b) continue;
      double updated = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          updated = std::min(dist[a][j], dist[b][j]);
          break;
        case Linkage::kComplete:
          updated = std::max(dist[a][j], dist[b][j]);
          break;
        case Linkage::kAverage:
          updated = (size_a * dist[a][j] + size_b * dist[b][j]) /
                    (size_a + size_b);
          break;
      }
      dist[a][j] = dist[j][a] = updated;
    }
    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    members[b].clear();
    alive[b] = false;
    --active;
  }

  // Label clusters 0..k-1 in order of first appearance.
  std::vector<int> labels(n, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    for (std::size_t m : members[i]) labels[m] = next;
    ++next;
  }
  return labels;
}

}  // namespace doppler::ml
