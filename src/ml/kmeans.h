#ifndef DOPPLER_ML_KMEANS_H_
#define DOPPLER_ML_KMEANS_H_

#include <vector>

#include "util/random.h"
#include "util/statusor.h"

namespace doppler::ml {

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster index per input point, in input order.
  std::vector<int> assignments;
  /// Final centroids, k rows of dimension d.
  std::vector<std::vector<double>> centroids;
  /// Sum of squared distances of points to their assigned centroid.
  double inertia = 0.0;
  /// Lloyd iterations actually executed.
  int iterations = 0;
};

/// Configuration of the solver.
struct KMeansOptions {
  int k = 8;                 ///< Number of clusters.
  int max_iterations = 100;  ///< Lloyd iteration cap.
  double tolerance = 1e-6;   ///< Stop when centroids move less than this.
  int restarts = 4;          ///< Independent runs; best inertia wins.
};

/// Lloyd's algorithm with k-means++ seeding. `points` must be non-empty and
/// rectangular; k is clamped to the number of points. Deterministic for a
/// given (points, options, rng-state).
///
/// The customer profiler clusters per-dimension negotiability vectors with
/// this as the generic alternative to straight 2^k enumeration (paper §3.3,
/// Table 4 is computed "based on standard k-means clustering").
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options, Rng* rng);

/// Squared Euclidean distance of two equal-length vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace doppler::ml

#endif  // DOPPLER_ML_KMEANS_H_
