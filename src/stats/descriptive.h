#ifndef DOPPLER_STATS_DESCRIPTIVE_H_
#define DOPPLER_STATS_DESCRIPTIVE_H_

#include <vector>

namespace doppler::stats {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population variance (divide by n); 0 for fewer than 2 values.
double Variance(const std::vector<double>& values);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Minimum; +inf for an empty input.
double Min(const std::vector<double>& values);

/// Maximum; -inf for an empty input.
double Max(const std::vector<double>& values);

/// Quantile with linear interpolation between order statistics (the "R-7"
/// definition used by NumPy's default). `q` is clamped to [0, 1]; returns 0
/// for an empty input. The baseline recommender collapses each perf counter
/// series with this at q = 0.95 (or q = 1.0 for "max").
double Quantile(const std::vector<double>& values, double q);

/// Same R-7 quantile over an already ascending-sorted input, skipping the
/// copy + sort. Bit-identical to Quantile on the sorted data; the
/// TraceStatsCache amortises one sort across many quantile reads with this.
double QuantileFromSorted(const std::vector<double>& sorted, double q);

/// Median (Quantile at 0.5).
double Median(const std::vector<double>& values);

/// Pearson correlation of two equal-length series; 0 when undefined.
double Correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_DESCRIPTIVE_H_
