#ifndef DOPPLER_STATS_LOESS_H_
#define DOPPLER_STATS_LOESS_H_

#include <vector>

namespace doppler::stats {

/// Locally-weighted linear regression (LOESS) smoother for evenly spaced
/// series, following Cleveland (1979): at each point, fit a degree-1
/// polynomial to the `window` nearest neighbours with tricube weights and
/// evaluate it at the point.
///
/// This is the smoothing primitive inside the STL decomposition (stl.h).
class LoessSmoother {
 public:
  /// `window` is the neighbourhood size in points; values below 3 are
  /// raised to 3, even values are raised to the next odd number so the
  /// neighbourhood is symmetric away from the boundaries.
  explicit LoessSmoother(int window);

  /// Smooths `values` at every index. Series shorter than the window are
  /// smoothed with the full series as the neighbourhood; an empty series
  /// returns empty.
  std::vector<double> Smooth(const std::vector<double>& values) const;

  int window() const { return window_; }

 private:
  int window_;
};

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_LOESS_H_
