#ifndef DOPPLER_STATS_ECDF_H_
#define DOPPLER_STATS_ECDF_H_

#include <vector>

namespace doppler::stats {

/// Empirical cumulative distribution function of a sample.
///
/// The profiler's AUC strategies (paper §3.3, Fig. 6) compute the area under
/// the ECDF of (scaled) perf-counter values: a spiky counter spends most of
/// its time near zero, so its ECDF rises early and the AUC is high; a steady
/// high counter has a late-rising ECDF and low AUC.
class Ecdf {
 public:
  /// Builds the ECDF of `sample` (values are copied and sorted).
  explicit Ecdf(std::vector<double> sample);

  /// F(x) = fraction of sample values <= x. 0 for an empty sample.
  double Evaluate(double x) const;

  /// Number of points in the underlying sample.
  std::size_t size() const { return sorted_.size(); }

  /// The sorted sample.
  const std::vector<double>& sorted_sample() const { return sorted_; }

  /// Area under F between min(sample) and max(sample), normalised by the
  /// x-range so the result lies in [0, 1]. Equals 1 - mean(sample') where
  /// sample' is the sample min-max rescaled to [0, 1]. Returns 0.5 (the
  /// neutral value) for a degenerate constant or empty sample, where the
  /// rescaling is undefined.
  double NormalizedAuc() const;

  /// Area under F over the fixed interval [0, 1]; the sample must already
  /// be scaled into [0, 1] (values are clamped). Equals 1 - mean(sample).
  /// This is the quantity the Max-scaler AUC strategy uses, where the
  /// interval endpoints must not depend on the sample minimum.
  double AucOverUnitInterval() const;

 private:
  std::vector<double> sorted_;
};

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_ECDF_H_
