#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace doppler::stats {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  double result = std::numeric_limits<double>::infinity();
  for (double v : values) result = std::min(result, v);
  return result;
}

double Max(const std::vector<double>& values) {
  double result = -std::numeric_limits<double>::infinity();
  for (double v : values) result = std::max(result, v);
  return result;
}

double Quantile(const std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return QuantileFromSorted(sorted, q);
}

double QuantileFromSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

double Median(const std::vector<double>& values) {
  return Quantile(values, 0.5);
}

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace doppler::stats
