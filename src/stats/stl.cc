#include "stats/stl.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "stats/loess.h"

namespace doppler::stats {

namespace {

// Centred moving average of length `window` with reflective boundaries.
std::vector<double> MovingAverage(const std::vector<double>& values,
                                  int window) {
  const int n = static_cast<int>(values.size());
  std::vector<double> out(values.size(), 0.0);
  if (n == 0 || window <= 1) return values;
  const int half = window / 2;
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (int k = -half; k <= half; ++k) {
      int j = i + k;
      if (j < 0) j = -j;                       // Reflect at the start.
      if (j > n - 1) j = 2 * (n - 1) - j;      // Reflect at the end.
      sum += values[std::clamp(j, 0, n - 1)];
    }
    out[i] = sum / static_cast<double>(2 * half + 1);
  }
  return out;
}

}  // namespace

double StlDecomposition::VarianceExplained(
    const std::vector<double>& observed) const {
  const double var_observed = Variance(observed);
  if (var_observed <= 0.0) return 1.0;
  const double var_remainder = Variance(remainder);
  return std::max(0.0, 1.0 - var_remainder / var_observed);
}

StatusOr<StlDecomposition> DecomposeStl(const std::vector<double>& observed,
                                        const StlOptions& options) {
  const int n = static_cast<int>(observed.size());
  if (options.period < 2) {
    return InvalidArgumentError("STL period must be >= 2");
  }
  if (options.inner_iterations < 1) {
    return InvalidArgumentError("STL needs at least one inner iteration");
  }
  if (n < 2 * options.period) {
    return InvalidArgumentError(
        "series of length " + std::to_string(n) +
        " is shorter than two periods (" + std::to_string(options.period) +
        " samples each)");
  }

  const int period = options.period;
  const int trend_window = options.trend_window > 0
                               ? options.trend_window
                               : (3 * period) / 2 + 1;
  const LoessSmoother subseries_smoother(std::max(3, options.seasonal_window));
  const LoessSmoother trend_smoother(trend_window);
  const LoessSmoother lowpass_smoother(std::max(3, period / 2 | 1));

  StlDecomposition result;
  result.trend.assign(observed.size(), 0.0);
  result.seasonal.assign(observed.size(), 0.0);

  std::vector<double> detrended(observed.size());
  std::vector<double> cycle(observed.size());

  for (int iteration = 0; iteration < options.inner_iterations; ++iteration) {
    // Step 1: detrend.
    for (int i = 0; i < n; ++i) detrended[i] = observed[i] - result.trend[i];

    // Step 2: smooth each cycle-subseries (all samples at the same phase of
    // the period) to get the preliminary seasonal component.
    for (int phase = 0; phase < period; ++phase) {
      std::vector<double> subseries;
      subseries.reserve(static_cast<std::size_t>(n / period) + 1);
      for (int i = phase; i < n; i += period) subseries.push_back(detrended[i]);
      const std::vector<double> smoothed = subseries_smoother.Smooth(subseries);
      int k = 0;
      for (int i = phase; i < n; i += period) cycle[i] = smoothed[k++];
    }

    // Step 3: low-pass filter the preliminary seasonal so that trend-like
    // content is removed from it: two passes of a period-length moving
    // average, an MA(3), then a LOESS.
    std::vector<double> lowpass = MovingAverage(cycle, period);
    lowpass = MovingAverage(lowpass, period);
    lowpass = MovingAverage(lowpass, 3);
    lowpass = lowpass_smoother.Smooth(lowpass);

    // Step 4: the seasonal component is the detrended cycle minus low-pass.
    for (int i = 0; i < n; ++i) result.seasonal[i] = cycle[i] - lowpass[i];

    // Step 5: deseasonalise and smooth to obtain the next trend.
    std::vector<double> deseasonalised(observed.size());
    for (int i = 0; i < n; ++i) {
      deseasonalised[i] = observed[i] - result.seasonal[i];
    }
    result.trend = trend_smoother.Smooth(deseasonalised);
  }

  result.remainder.resize(observed.size());
  for (int i = 0; i < n; ++i) {
    result.remainder[i] = observed[i] - result.trend[i] - result.seasonal[i];
  }
  return result;
}

}  // namespace doppler::stats
