#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "util/kernels/kernels.h"

namespace doppler::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

}  // namespace

StatusOr<GaussianKde> GaussianKde::Fit(std::vector<double> sample,
                                       double bandwidth) {
  if (sample.empty()) {
    return InvalidArgumentError("cannot fit a KDE on an empty sample");
  }
  if (bandwidth <= 0.0) {
    const double sigma = StdDev(sample);
    const double n = static_cast<double>(sample.size());
    bandwidth = 1.06 * sigma * std::pow(n, -0.2);
    if (bandwidth <= 0.0) bandwidth = 1e-6;  // Degenerate constant sample.
  }
  return GaussianKde(std::move(sample), bandwidth);
}

// Both evaluations run through the dispatched batched kernels; every
// implementation accumulates in sample order with the same IEEE
// operations, so results are bit-identical to the pre-kernel scalar loops.

double GaussianKde::Density(double x) const {
  const double sum = kernels::ActiveKernels().kde_density_sum(
      sample_.data(), sample_.size(), x, bandwidth_);
  return sum * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(sample_.size()));
}

double GaussianKde::Cdf(double x) const {
  const double sum = kernels::ActiveKernels().kde_cdf_sum(
      sample_.data(), sample_.size(), x, bandwidth_);
  return sum / static_cast<double>(sample_.size());
}

}  // namespace doppler::stats
