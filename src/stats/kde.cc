#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace doppler::stats {

namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;

}  // namespace

StatusOr<GaussianKde> GaussianKde::Fit(std::vector<double> sample,
                                       double bandwidth) {
  if (sample.empty()) {
    return InvalidArgumentError("cannot fit a KDE on an empty sample");
  }
  if (bandwidth <= 0.0) {
    const double sigma = StdDev(sample);
    const double n = static_cast<double>(sample.size());
    bandwidth = 1.06 * sigma * std::pow(n, -0.2);
    if (bandwidth <= 0.0) bandwidth = 1e-6;  // Degenerate constant sample.
  }
  return GaussianKde(std::move(sample), bandwidth);
}

double GaussianKde::Density(double x) const {
  double sum = 0.0;
  for (double s : sample_) {
    const double z = (x - s) / bandwidth_;
    sum += std::exp(-0.5 * z * z);
  }
  return sum * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(sample_.size()));
}

double GaussianKde::Cdf(double x) const {
  double sum = 0.0;
  for (double s : sample_) {
    const double z = (x - s) / bandwidth_;
    sum += 0.5 * (1.0 + std::erf(z * kInvSqrt2));
  }
  return sum / static_cast<double>(sample_.size());
}

}  // namespace doppler::stats
