#ifndef DOPPLER_STATS_SCALERS_H_
#define DOPPLER_STATS_SCALERS_H_

#include <vector>

namespace doppler::stats {

/// Min-max rescales `values` into [0, 1]: (v - min) / (max - min).
/// A constant series maps to all-0.5 (the scaling is undefined, so the
/// neutral midpoint is used); an empty series stays empty.
std::vector<double> MinMaxScale(const std::vector<double>& values);

/// Max rescales `values` by the sample maximum: v / max. This preserves the
/// position of the bulk relative to the peak (paper §3.3: "better
/// identifies large spikes"). A non-positive or zero maximum maps the
/// series to all-zero.
std::vector<double> MaxScale(const std::vector<double>& values);

/// Standard (z-score) scaling: (v - mean) / std. A zero-variance series
/// maps to all-zero. Used before distance-based clustering.
std::vector<double> StandardScale(const std::vector<double>& values);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_SCALERS_H_
