#include "stats/auc.h"

#include <algorithm>

#include "stats/ecdf.h"
#include "stats/scalers.h"

namespace doppler::stats {

double TrapezoidArea(const std::vector<double>& x,
                     const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double area = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    area += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return area;
}

double MinMaxScalerAuc(const std::vector<double>& values) {
  return Ecdf(MinMaxScale(values)).AucOverUnitInterval();
}

double MaxScalerAuc(const std::vector<double>& values) {
  return Ecdf(MaxScale(values)).AucOverUnitInterval();
}

}  // namespace doppler::stats
