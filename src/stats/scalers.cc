#include "stats/scalers.h"

#include "stats/descriptive.h"

namespace doppler::stats {

std::vector<double> MinMaxScale(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double lo = Min(values);
  const double hi = Max(values);
  const double range = hi - lo;
  std::vector<double> scaled(values.size());
  if (range <= 0.0) {
    for (auto& v : scaled) v = 0.5;
    return scaled;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    scaled[i] = (values[i] - lo) / range;
  }
  return scaled;
}

std::vector<double> MaxScale(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double hi = Max(values);
  std::vector<double> scaled(values.size(), 0.0);
  if (hi <= 0.0) return scaled;
  for (std::size_t i = 0; i < values.size(); ++i) {
    scaled[i] = values[i] / hi;
  }
  return scaled;
}

std::vector<double> StandardScale(const std::vector<double>& values) {
  if (values.empty()) return {};
  const double mean = Mean(values);
  const double sd = StdDev(values);
  std::vector<double> scaled(values.size(), 0.0);
  if (sd <= 0.0) return scaled;
  for (std::size_t i = 0; i < values.size(); ++i) {
    scaled[i] = (values[i] - mean) / sd;
  }
  return scaled;
}

}  // namespace doppler::stats
