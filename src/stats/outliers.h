#ifndef DOPPLER_STATS_OUTLIERS_H_
#define DOPPLER_STATS_OUTLIERS_H_

#include <vector>

namespace doppler::stats {

/// Fraction of values lying at least `sigmas` standard deviations from the
/// mean (paper §3.3, "Outlier percentage": a proxy for spiky usage). A
/// zero-variance series has no outliers. `sigmas` defaults to the paper's 3.
double OutlierFraction(const std::vector<double>& values, double sigmas = 3.0);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_OUTLIERS_H_
