#ifndef DOPPLER_STATS_KDE_H_
#define DOPPLER_STATS_KDE_H_

#include <vector>

#include "util/aligned.h"
#include "util/statusor.h"

namespace doppler::stats {

/// Univariate Gaussian kernel density estimator with Silverman's
/// rule-of-thumb bandwidth. This is the "Gaussian smoothing" alternative
/// the paper considered (and rejected on runtime grounds, §3.2) for
/// estimating throttling probabilities; core/throttling.h wraps it into the
/// KdeThrottlingEstimator used by the ablation benchmarks.
class GaussianKde {
 public:
  /// Fits the KDE; `sample` must be non-empty. An explicit bandwidth <= 0
  /// selects Silverman's rule: 1.06 * sigma * n^{-1/5} (floored at a small
  /// positive value for degenerate samples).
  static StatusOr<GaussianKde> Fit(std::vector<double> sample,
                                   double bandwidth = 0.0);

  /// Density estimate at x.
  double Density(double x) const;

  /// P(X <= x) under the smoothed distribution (sum of Gaussian CDFs).
  double Cdf(double x) const;

  /// P(X > x) = 1 - Cdf(x): the single-dimension exceedance probability.
  double Exceedance(double x) const { return 1.0 - Cdf(x); }

  double bandwidth() const { return bandwidth_; }

 private:
  GaussianKde(const std::vector<double>& sample, double bandwidth)
      : sample_(sample.begin(), sample.end()), bandwidth_(bandwidth) {}

  // Cache-line aligned so the batched kernel's vector loads never straddle
  // a line; evaluation runs through the dispatched KDE kernels
  // (util/kernels/kernels.h), bit-identical across implementations.
  AlignedVector<double> sample_;
  double bandwidth_;
};

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_KDE_H_
