#ifndef DOPPLER_STATS_HISTOGRAM_H_
#define DOPPLER_STATS_HISTOGRAM_H_

#include <string>
#include <vector>

namespace doppler::stats {

/// Fixed-width binned histogram over [lo, hi]; values outside the range are
/// clamped into the first/last bin. Used by the Resource Use Module and the
/// confidence-score distribution figures.
class Histogram {
 public:
  /// Creates `bins` equal-width buckets spanning [lo, hi]; hi must be > lo
  /// and bins >= 1 (violations are coerced to a single [lo, lo+1] bucket).
  Histogram(double lo, double hi, int bins);

  /// Adds one observation.
  void Add(double value);

  /// Adds every value in the series.
  void AddAll(const std::vector<double>& values);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  std::size_t total_count() const { return total_; }

  /// Count in bucket `i`.
  std::size_t count(int i) const { return counts_[i]; }

  /// Fraction of observations in bucket `i`; 0 when empty.
  double Fraction(int i) const;

  /// "[lo, hi)" label of bucket `i` with the given precision.
  std::string BinLabel(int i, int decimals = 2) const;

  /// Fractions for all buckets, in order.
  std::vector<double> Fractions() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_HISTOGRAM_H_
