#ifndef DOPPLER_STATS_AUC_H_
#define DOPPLER_STATS_AUC_H_

#include <vector>

namespace doppler::stats {

/// Trapezoidal integral of y over x. The x values must be non-decreasing;
/// fewer than two points integrate to 0.
double TrapezoidArea(const std::vector<double>& x,
                     const std::vector<double>& y);

/// AUC of the ECDF of a series after min-max scaling (paper §3.3, "MinMax
/// Scaler AUC"): values near 1 mean the counter sits near its minimum almost
/// all the time, i.e. usage is transient/spiky.
double MinMaxScalerAuc(const std::vector<double>& values);

/// AUC of the ECDF after max scaling only ("Max Scaler AUC"): the interval
/// is anchored at 0, so a steadily-high counter yields a small AUC even when
/// its min is well above zero.
double MaxScalerAuc(const std::vector<double>& values);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_AUC_H_
