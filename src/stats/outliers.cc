#include "stats/outliers.h"

#include <cmath>

#include "stats/descriptive.h"

namespace doppler::stats {

double OutlierFraction(const std::vector<double>& values, double sigmas) {
  if (values.empty()) return 0.0;
  const double mean = Mean(values);
  const double sd = StdDev(values);
  if (sd <= 0.0) return 0.0;
  std::size_t count = 0;
  for (double v : values) {
    if (std::fabs(v - mean) >= sigmas * sd) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(values.size());
}

}  // namespace doppler::stats
