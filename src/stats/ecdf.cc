#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

namespace doppler::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Evaluate(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::NormalizedAuc() const {
  if (sorted_.empty()) return 0.5;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  const double range = hi - lo;
  if (range <= 0.0) return 0.5;
  // AUC of the ECDF over [lo, hi], normalised by the range, reduces to
  // 1 - mean of the min-max-rescaled sample.
  double sum = 0.0;
  for (double v : sorted_) sum += (v - lo) / range;
  return 1.0 - sum / static_cast<double>(sorted_.size());
}

double Ecdf::AucOverUnitInterval() const {
  if (sorted_.empty()) return 0.5;
  double sum = 0.0;
  for (double v : sorted_) sum += std::clamp(v, 0.0, 1.0);
  return 1.0 - sum / static_cast<double>(sorted_.size());
}

}  // namespace doppler::stats
