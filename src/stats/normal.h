#ifndef DOPPLER_STATS_NORMAL_H_
#define DOPPLER_STATS_NORMAL_H_

namespace doppler::stats {

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1); p is clamped to
/// [1e-12, 1 - 1e-12]. Acklam's rational approximation (|error| < 1.2e-9),
/// used by the Gaussian-copula throttling estimator to move between
/// uniform ranks and normal scores.
double NormalQuantile(double p);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_NORMAL_H_
