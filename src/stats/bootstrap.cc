#include "stats/bootstrap.h"

#include <algorithm>

namespace doppler::stats {

std::vector<std::size_t> Bootstrap::SampleWithReplacement(
    std::size_t sample_size) {
  std::vector<std::size_t> indices;
  if (n_ == 0) return indices;
  indices.reserve(sample_size);
  for (std::size_t i = 0; i < sample_size; ++i) {
    indices.push_back(static_cast<std::size_t>(rng_->UniformInt(n_)));
  }
  return indices;
}

std::vector<std::size_t> Bootstrap::SampleWindow(std::size_t window) {
  std::vector<std::size_t> indices;
  if (n_ == 0) return indices;
  window = std::min(window, n_);
  const std::size_t max_start = n_ - window;
  const std::size_t start =
      max_start == 0
          ? 0
          : static_cast<std::size_t>(rng_->UniformInt(max_start + 1));
  indices.reserve(window);
  for (std::size_t i = 0; i < window; ++i) indices.push_back(start + i);
  return indices;
}

std::vector<std::size_t> Bootstrap::SampleBlocks(std::size_t sample_size,
                                                 std::size_t block) {
  std::vector<std::size_t> indices;
  if (n_ == 0) return indices;
  block = std::clamp<std::size_t>(block, 1, n_);
  indices.reserve(sample_size);
  while (indices.size() < sample_size) {
    const std::size_t max_start = n_ - block;
    const std::size_t start =
        max_start == 0
            ? 0
            : static_cast<std::size_t>(rng_->UniformInt(max_start + 1));
    for (std::size_t i = 0; i < block && indices.size() < sample_size; ++i) {
      indices.push_back(start + i);
    }
  }
  return indices;
}

std::vector<double> Gather(const std::vector<double>& values,
                           const std::vector<std::size_t>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i < values.size()) out.push_back(values[i]);
  }
  return out;
}

}  // namespace doppler::stats
