#include "stats/loess.h"

#include <algorithm>
#include <cmath>

namespace doppler::stats {

LoessSmoother::LoessSmoother(int window) : window_(std::max(3, window)) {
  if (window_ % 2 == 0) ++window_;
}

std::vector<double> LoessSmoother::Smooth(
    const std::vector<double>& values) const {
  const int n = static_cast<int>(values.size());
  if (n == 0) return {};
  const int window = std::min(window_, n);
  const int half = window / 2;

  std::vector<double> smoothed(values.size());
  for (int i = 0; i < n; ++i) {
    // Clamp the neighbourhood to the series; near the boundaries the window
    // becomes one-sided, matching Cleveland's nearest-neighbour rule.
    int lo = i - half;
    int hi = i + half;
    if (lo < 0) {
      hi = std::min(n - 1, hi - lo);
      lo = 0;
    }
    if (hi > n - 1) {
      lo = std::max(0, lo - (hi - (n - 1)));
      hi = n - 1;
    }
    // Tricube weights on distance, scaled by the farthest neighbour.
    const double max_dist =
        std::max(std::abs(i - lo), std::abs(hi - i)) + 1e-9;
    // Weighted least squares for y = a + b * x around x0 = i.
    double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
    for (int j = lo; j <= hi; ++j) {
      const double d = std::abs(j - i) / max_dist;
      const double tri = 1.0 - d * d * d;
      const double w = tri * tri * tri;
      const double x = static_cast<double>(j - i);
      sw += w;
      swx += w * x;
      swy += w * values[j];
      swxx += w * x * x;
      swxy += w * x * values[j];
    }
    const double denom = sw * swxx - swx * swx;
    if (std::fabs(denom) < 1e-12 || sw <= 0.0) {
      smoothed[i] = sw > 0.0 ? swy / sw : values[i];
    } else {
      // Evaluate the local fit at x = 0 (the centre point): intercept only.
      const double intercept = (swxx * swy - swx * swxy) / denom;
      smoothed[i] = intercept;
    }
  }
  return smoothed;
}

}  // namespace doppler::stats
