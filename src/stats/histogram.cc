#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace doppler::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo) {
  if (bins < 1) bins = 1;
  if (hi <= lo) hi = lo + 1.0;
  width_ = (hi - lo) / bins;
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::Add(double value) {
  int bin = static_cast<int>(std::floor((value - lo_) / width_));
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

double Histogram::Fraction(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[static_cast<std::size_t>(i)]) /
         static_cast<double>(total_);
}

std::string Histogram::BinLabel(int i, int decimals) const {
  const double lo = lo_ + width_ * i;
  const double hi = lo + width_;
  return "[" + FormatDouble(lo, decimals) + ", " + FormatDouble(hi, decimals) +
         (i == num_bins() - 1 ? "]" : ")");
}

std::vector<double> Histogram::Fractions() const {
  std::vector<double> fractions(counts_.size());
  for (int i = 0; i < num_bins(); ++i) fractions[i] = Fraction(i);
  return fractions;
}

}  // namespace doppler::stats
