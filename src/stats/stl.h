#ifndef DOPPLER_STATS_STL_H_
#define DOPPLER_STATS_STL_H_

#include <vector>

#include "util/statusor.h"

namespace doppler::stats {

/// Result of a Seasonal-Trend decomposition: observed = trend + seasonal +
/// remainder, element-wise.
struct StlDecomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;

  /// max(0, 1 - var(remainder) / var(observed)): the fraction of variance
  /// explained by trend + seasonality (paper §3.3, "STL variance
  /// decomposition"). Values near 1 mean the counter is dominated by smooth
  /// structure; values near 0 mean it is noise/spike dominated. `observed`
  /// must be the series that produced this decomposition.
  double VarianceExplained(const std::vector<double>& observed) const;
};

/// Parameters of the STL procedure (Cleveland et al. 1990, simplified: the
/// robustness iterations are omitted because the profiler consumes only the
/// remainder variance, for which the non-robust fit suffices).
struct StlOptions {
  /// Seasonal cycle length in samples (e.g. 144 for a daily cycle at the
  /// DMA's 10-minute cadence). Must be >= 2 and < series length / 2.
  int period = 144;
  /// LOESS window for smoothing each cycle-subseries, in cycles.
  int seasonal_window = 7;
  /// LOESS window for the trend component, in samples; 0 derives the
  /// standard default 1.5 * period.
  int trend_window = 0;
  /// Number of inner-loop passes; 2 is the standard choice.
  int inner_iterations = 2;
};

/// Runs STL on an evenly spaced series. Fails with INVALID_ARGUMENT when the
/// series is shorter than two full periods or the options are malformed.
StatusOr<StlDecomposition> DecomposeStl(const std::vector<double>& observed,
                                        const StlOptions& options);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_STL_H_
