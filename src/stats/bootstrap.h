#ifndef DOPPLER_STATS_BOOTSTRAP_H_
#define DOPPLER_STATS_BOOTSTRAP_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace doppler::stats {

/// Resampling schemes over time-series index ranges, used by the confidence
/// scorer (paper §3.4): each bootstrap run re-derives the SKU recommendation
/// from a random subset/sub-window of the raw counter data.
class Bootstrap {
 public:
  /// `n` is the length of the series being resampled.
  Bootstrap(std::size_t n, Rng* rng) : n_(n), rng_(rng) {}

  /// Classic iid bootstrap: `sample_size` indices drawn with replacement.
  std::vector<std::size_t> SampleWithReplacement(std::size_t sample_size);

  /// Contiguous-window sample: a uniformly placed window of `window` points
  /// (the whole range when window >= n). Preserves autocorrelation, which
  /// matters for spike-duration statistics; this is the default scheme for
  /// the confidence score's "bootstrap window sizes" (paper Fig. 10).
  std::vector<std::size_t> SampleWindow(std::size_t window);

  /// Moving-block bootstrap: concatenates random contiguous blocks of
  /// length `block` until `sample_size` indices are collected.
  std::vector<std::size_t> SampleBlocks(std::size_t sample_size,
                                        std::size_t block);

 private:
  std::size_t n_;
  Rng* rng_;
};

/// Gathers `values[i]` for each index in `indices`.
std::vector<double> Gather(const std::vector<double>& values,
                           const std::vector<std::size_t>& indices);

}  // namespace doppler::stats

#endif  // DOPPLER_STATS_BOOTSTRAP_H_
