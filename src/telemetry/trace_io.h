#ifndef DOPPLER_TELEMETRY_TRACE_IO_H_
#define DOPPLER_TELEMETRY_TRACE_IO_H_

#include <string>

#include "telemetry/perf_trace.h"
#include "util/csv.h"
#include "util/statusor.h"

namespace doppler::telemetry {

/// Serialises a trace to CSV: a `t_seconds` column followed by one column
/// per present dimension, named by ResourceDimName. The on-disk format the
/// DMA appliance stages locally before the recommendation pipeline runs
/// (paper §2: counters are "first stored locally on the target database").
CsvTable TraceToCsv(const PerfTrace& trace);

/// Parses a trace from the TraceToCsv format. The cadence is inferred from
/// the first two `t_seconds` rows (DMA default when only one row exists).
/// Unknown columns are ignored; malformed numbers fail with
/// INVALID_ARGUMENT.
StatusOr<PerfTrace> TraceFromCsv(const CsvTable& table);

/// Convenience wrappers over CsvTable's file IO.
Status WriteTraceFile(const PerfTrace& trace, const std::string& path);
StatusOr<PerfTrace> ReadTraceFile(const std::string& path);

}  // namespace doppler::telemetry

#endif  // DOPPLER_TELEMETRY_TRACE_IO_H_
