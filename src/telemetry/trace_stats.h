#ifndef DOPPLER_TELEMETRY_TRACE_STATS_H_
#define DOPPLER_TELEMETRY_TRACE_STATS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"

namespace doppler::telemetry {

/// Memoized per-(trace, dimension) order statistics: one sort per dimension
/// amortised across every consumer of the same assessment — the baseline
/// recommender's scalar quantiles, the thresholding profiler's max/stddev
/// window, and the confidence resampler's per-rerun profiling all read the
/// same sorted state instead of re-deriving it.
///
/// The cache BORROWS the trace and snapshots nothing up front; entries are
/// built lazily on first access, under a mutex, so concurrent workers of a
/// parallel curve build or fleet assessment may share one cache safely.
///
/// Invalidation contract (DESIGN.md §7, hardened in §13): a trace must not
/// be mutated while a cache over it is being read CONCURRENTLY. Sequential
/// mutation is tolerated: every entry records the trace generation it was
/// built against (PerfTrace::generation()) and rebuilds on the next access
/// after the trace moved on, so a mutated trace invalidates the memo
/// instead of serving stale sorted order. References handed out earlier
/// stay valid (the entry's vectors are refilled in place) and read the
/// fresh contents. Every value is computed by the same stats:: routines
/// the uncached paths use, so cached and uncached results are
/// bit-identical.
class TraceStatsCache {
 public:
  /// Borrows `trace`, which must outlive the cache and stay unmutated.
  explicit TraceStatsCache(const PerfTrace& trace) : trace_(&trace) {}

  TraceStatsCache(const TraceStatsCache&) = delete;
  TraceStatsCache& operator=(const TraceStatsCache&) = delete;

  const PerfTrace& trace() const { return *trace_; }

  /// Ascending-sorted copy of the dimension's series; empty when the
  /// dimension is absent from the trace.
  const std::vector<double>& Sorted(catalog::ResourceDim dim) const;

  /// The sorting permutation behind Sorted(): row indices of the original
  /// series in ascending value order, ties broken by ascending row index,
  /// so the permutation is a deterministic function of the series alone.
  /// Sorted()[i] == Values(dim)[Argsort(dim)[i]]. The exceedance index
  /// (DESIGN.md §9) reads this to turn "rows above a capacity" into a
  /// suffix of the permutation. Empty when the dimension is absent.
  const std::vector<std::uint32_t>& Argsort(catalog::ResourceDim dim) const;

  /// R-7 quantile over the memoized sorted series (0 when absent).
  double Quantile(catalog::ResourceDim dim, double q) const;

  double Mean(catalog::ResourceDim dim) const;
  double StdDev(catalog::ResourceDim dim) const;
  double Min(catalog::ResourceDim dim) const;
  double Max(catalog::ResourceDim dim) const;

 private:
  struct DimEntry {
    bool built = false;
    /// PerfTrace::generation() at build time; a mismatch on access means
    /// the trace was mutated and the entry rebuilds before serving.
    std::uint64_t generation = 0;
    std::vector<double> sorted;
    std::vector<std::uint32_t> argsort;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Builds (first call) and returns the entry for one dimension.
  const DimEntry& Entry(catalog::ResourceDim dim) const;

  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  const PerfTrace* trace_;
  mutable std::mutex mu_;
  mutable std::array<DimEntry, catalog::kNumResourceDims> entries_;
};

}  // namespace doppler::telemetry

#endif  // DOPPLER_TELEMETRY_TRACE_STATS_H_
