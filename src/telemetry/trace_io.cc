#include "telemetry/trace_io.h"

#include <cmath>
#include <cstdlib>

#include "util/string_util.h"

namespace doppler::telemetry {

CsvTable TraceToCsv(const PerfTrace& trace) {
  const std::vector<catalog::ResourceDim> dims = trace.PresentDims();
  std::vector<std::string> header = {"t_seconds"};
  for (catalog::ResourceDim dim : dims) {
    header.emplace_back(catalog::ResourceDimName(dim));
  }
  CsvTable table(std::move(header));
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    std::vector<std::string> row;
    row.reserve(dims.size() + 1);
    row.push_back(std::to_string(
        static_cast<std::int64_t>(i) * trace.interval_seconds()));
    for (catalog::ResourceDim dim : dims) {
      row.push_back(FormatDouble(trace.Values(dim)[i], 6));
    }
    (void)table.AddRow(std::move(row));  // Width always matches the header.
  }
  return table;
}

namespace {

// `strtod` happily parses "nan" and "inf", so finiteness is checked here
// rather than in the parse itself; `context` names the offending cell.
StatusOr<double> ParseNumber(const std::string& text,
                             const std::string& context) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return InvalidArgumentError("not a number at " + context + ": '" + text +
                                "'");
  }
  if (!std::isfinite(value)) {
    return InvalidArgumentError("non-finite value at " + context + ": '" +
                                text + "'");
  }
  return value;
}

std::string CellContext(std::size_t row, const std::string& column) {
  return "data row " + std::to_string(row + 1) + ", column '" + column + "'";
}

}  // namespace

StatusOr<PerfTrace> TraceFromCsv(const CsvTable& table) {
  DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col, table.ColumnIndex("t_seconds"));

  // Every timestamp must be finite and strictly increasing; the cadence is
  // the first delta.
  std::int64_t interval = kDmaIntervalSeconds;
  double previous_t = 0.0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    DOPPLER_ASSIGN_OR_RETURN(
        double t, ParseNumber(table.row(r)[time_col],
                              CellContext(r, "t_seconds")));
    if (r > 0 && t <= previous_t) {
      return InvalidArgumentError(
          "t_seconds must be strictly increasing (violated at " +
          CellContext(r, "t_seconds") + ")");
    }
    if (r == 1) {
      const auto delta = static_cast<std::int64_t>(t - previous_t);
      if (delta <= 0) {
        return InvalidArgumentError("t_seconds must be strictly increasing");
      }
      interval = delta;
    }
    previous_t = t;
  }

  PerfTrace trace(interval);
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c == time_col) continue;
    catalog::ResourceDim dim;
    if (!catalog::ParseResourceDim(table.header()[c], &dim)) continue;
    std::vector<double> values;
    values.reserve(table.num_rows());
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      DOPPLER_ASSIGN_OR_RETURN(
          double v,
          ParseNumber(table.row(r)[c], CellContext(r, table.header()[c])));
      values.push_back(v);
    }
    DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dim, std::move(values)));
  }
  if (trace.PresentDims().empty()) {
    return InvalidArgumentError("CSV contains no known resource columns");
  }
  return trace;
}

Status WriteTraceFile(const PerfTrace& trace, const std::string& path) {
  return TraceToCsv(trace).WriteFile(path);
}

StatusOr<PerfTrace> ReadTraceFile(const std::string& path) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return TraceFromCsv(table);
}

}  // namespace doppler::telemetry
