#include "telemetry/trace_io.h"

#include <cstdlib>

#include "util/string_util.h"

namespace doppler::telemetry {

CsvTable TraceToCsv(const PerfTrace& trace) {
  const std::vector<catalog::ResourceDim> dims = trace.PresentDims();
  std::vector<std::string> header = {"t_seconds"};
  for (catalog::ResourceDim dim : dims) {
    header.emplace_back(catalog::ResourceDimName(dim));
  }
  CsvTable table(std::move(header));
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    std::vector<std::string> row;
    row.reserve(dims.size() + 1);
    row.push_back(std::to_string(
        static_cast<std::int64_t>(i) * trace.interval_seconds()));
    for (catalog::ResourceDim dim : dims) {
      row.push_back(FormatDouble(trace.Values(dim)[i], 6));
    }
    (void)table.AddRow(std::move(row));  // Width always matches the header.
  }
  return table;
}

namespace {

StatusOr<double> ParseNumber(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return InvalidArgumentError("not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

StatusOr<PerfTrace> TraceFromCsv(const CsvTable& table) {
  DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col, table.ColumnIndex("t_seconds"));

  // Cadence from the first two rows.
  std::int64_t interval = kDmaIntervalSeconds;
  if (table.num_rows() >= 2) {
    DOPPLER_ASSIGN_OR_RETURN(double t0, ParseNumber(table.row(0)[time_col]));
    DOPPLER_ASSIGN_OR_RETURN(double t1, ParseNumber(table.row(1)[time_col]));
    const auto delta = static_cast<std::int64_t>(t1 - t0);
    if (delta <= 0) {
      return InvalidArgumentError("t_seconds must be strictly increasing");
    }
    interval = delta;
  }

  PerfTrace trace(interval);
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c == time_col) continue;
    catalog::ResourceDim dim;
    if (!catalog::ParseResourceDim(table.header()[c], &dim)) continue;
    std::vector<double> values;
    values.reserve(table.num_rows());
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      DOPPLER_ASSIGN_OR_RETURN(double v, ParseNumber(table.row(r)[c]));
      values.push_back(v);
    }
    DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dim, std::move(values)));
  }
  if (trace.PresentDims().empty()) {
    return InvalidArgumentError("CSV contains no known resource columns");
  }
  return trace;
}

Status WriteTraceFile(const PerfTrace& trace, const std::string& path) {
  return TraceToCsv(trace).WriteFile(path);
}

StatusOr<PerfTrace> ReadTraceFile(const std::string& path) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return TraceFromCsv(table);
}

}  // namespace doppler::telemetry
