#ifndef DOPPLER_TELEMETRY_COLLECTOR_H_
#define DOPPLER_TELEMETRY_COLLECTOR_H_

#include <cstdint>
#include <functional>

#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "util/statusor.h"

namespace doppler::telemetry {

/// A live source of instantaneous resource demand: given a time offset in
/// seconds from assessment start, return the demand vector. The workload
/// generators provide these; in production this is the SQL perf-counter DMV
/// sampler inside the AzMigrate appliance.
using DemandSource =
    std::function<catalog::ResourceVector(std::int64_t seconds)>;

/// Knobs of the simulated Performance Collector & Pre-Aggregator (paper
/// Fig. 2). Counter readings carry multiplicative measurement noise and an
/// occasional dropped sample, as field telemetry does.
struct CollectorOptions {
  std::int64_t raw_interval_seconds = 60;   ///< Raw sampling cadence.
  std::int64_t output_interval_seconds = kDmaIntervalSeconds;
  double duration_days = 7.0;               ///< Assessment window length.
  double noise_sigma = 0.02;                ///< Relative Gaussian noise.
  double drop_probability = 0.0;            ///< Chance a raw sample is lost.
};

/// Samples `source` on the raw cadence over the assessment window, applies
/// measurement noise and drops, then pre-aggregates to the output cadence.
/// Dropped samples are filled by carrying the previous reading forward
/// (the appliance's gap-fill rule). Fails on non-positive durations or
/// intervals that do not divide evenly.
StatusOr<PerfTrace> CollectTrace(const DemandSource& source,
                                 const CollectorOptions& options, Rng* rng);

}  // namespace doppler::telemetry

#endif  // DOPPLER_TELEMETRY_COLLECTOR_H_
