#include "telemetry/collector.h"

#include <algorithm>
#include <cmath>

#include "telemetry/aggregate.h"

namespace doppler::telemetry {

StatusOr<PerfTrace> CollectTrace(const DemandSource& source,
                                 const CollectorOptions& options, Rng* rng) {
  if (!source) return InvalidArgumentError("demand source must be set");
  if (rng == nullptr) return InvalidArgumentError("rng must not be null");
  if (options.duration_days <= 0.0) {
    return InvalidArgumentError("assessment duration must be positive");
  }
  if (options.raw_interval_seconds <= 0 ||
      options.output_interval_seconds <= 0 ||
      options.output_interval_seconds % options.raw_interval_seconds != 0) {
    return InvalidArgumentError(
        "output interval must be a positive multiple of the raw interval");
  }

  const std::int64_t total_seconds =
      static_cast<std::int64_t>(options.duration_days * 86400.0);
  const std::size_t raw_samples = static_cast<std::size_t>(
      total_seconds / options.raw_interval_seconds);
  if (raw_samples == 0) {
    return InvalidArgumentError("window too short for one raw sample");
  }

  // Probe the source once to learn which dimensions it produces.
  const catalog::ResourceVector probe = source(0);
  const std::vector<catalog::ResourceDim> dims = probe.PresentDims();
  if (dims.empty()) {
    return InvalidArgumentError("demand source produces no dimensions");
  }

  PerfTrace raw(options.raw_interval_seconds);
  std::vector<std::vector<double>> columns(dims.size());
  for (auto& column : columns) column.reserve(raw_samples);

  std::vector<double> last_reading(dims.size(), 0.0);
  for (std::size_t i = 0; i < raw_samples; ++i) {
    const std::int64_t t =
        static_cast<std::int64_t>(i) * options.raw_interval_seconds;
    const bool dropped = rng->Bernoulli(options.drop_probability) && i > 0;
    const catalog::ResourceVector demand = source(t);
    for (std::size_t d = 0; d < dims.size(); ++d) {
      double reading = last_reading[d];
      if (!dropped) {
        reading = demand.Get(dims[d]);
        if (options.noise_sigma > 0.0) {
          reading *= std::max(0.0, 1.0 + rng->Normal(0.0, options.noise_sigma));
        }
        last_reading[d] = reading;
      }
      columns[d].push_back(reading);
    }
  }
  for (std::size_t d = 0; d < dims.size(); ++d) {
    DOPPLER_RETURN_IF_ERROR(raw.SetSeries(dims[d], std::move(columns[d])));
  }
  return ResampleTrace(raw, options.output_interval_seconds);
}

}  // namespace doppler::telemetry
