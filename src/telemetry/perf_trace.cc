#include "telemetry/perf_trace.h"

#include <algorithm>

namespace doppler::telemetry {

Status PerfTrace::SetSeries(catalog::ResourceDim dim,
                            std::vector<double> values) {
  const bool first = PresentDims().empty();
  if (!first && values.size() != num_samples_) {
    return InvalidArgumentError(
        "series for '" + std::string(catalog::ResourceDimName(dim)) +
        "' has " + std::to_string(values.size()) + " samples; trace has " +
        std::to_string(num_samples_));
  }
  if (first) num_samples_ = values.size();
  series_[Index(dim)] = std::move(values);
  present_[Index(dim)] = true;
  ++generation_;
  return OkStatus();
}

const std::vector<double>& PerfTrace::Values(catalog::ResourceDim dim) const {
  static const std::vector<double>* const kEmpty = new std::vector<double>();
  if (!Has(dim)) return *kEmpty;
  return series_[Index(dim)];
}

std::vector<catalog::ResourceDim> PerfTrace::PresentDims() const {
  std::vector<catalog::ResourceDim> dims;
  for (catalog::ResourceDim dim : catalog::kAllResourceDims) {
    if (Has(dim)) dims.push_back(dim);
  }
  return dims;
}

catalog::ResourceVector PerfTrace::DemandAt(std::size_t i) const {
  catalog::ResourceVector demand;
  for (catalog::ResourceDim dim : catalog::kAllResourceDims) {
    if (Has(dim) && i < series_[Index(dim)].size()) {
      demand.Set(dim, series_[Index(dim)][i]);
    }
  }
  return demand;
}

DemandColumns PerfTrace::Columns(
    const std::vector<catalog::ResourceDim>& dims) const {
  DemandColumns view;
  view.num_rows = num_samples_;
  for (catalog::ResourceDim dim : dims) {
    if (!Has(dim)) continue;
    view.columns[view.num_columns] = series_[Index(dim)].data();
    view.dims[view.num_columns] = dim;
    ++view.num_columns;
  }
  return view;
}

PerfTrace PerfTrace::Select(const std::vector<std::size_t>& indices) const {
  PerfTrace out(interval_seconds_);
  out.set_id(id_);
  for (catalog::ResourceDim dim : PresentDims()) {
    const std::vector<double>& source = Values(dim);
    std::vector<double> picked;
    picked.reserve(indices.size());
    for (std::size_t i : indices) {
      if (i < source.size()) picked.push_back(source[i]);
    }
    // All present dims share one length, so AddRow-style mismatch cannot
    // occur here; ignore the always-OK status.
    (void)out.SetSeries(dim, std::move(picked));
  }
  return out;
}

PerfTrace PerfTrace::Window(std::size_t start, std::size_t count) const {
  start = std::min(start, num_samples_);
  count = std::min(count, num_samples_ - start);
  std::vector<std::size_t> indices(count);
  for (std::size_t i = 0; i < count; ++i) indices[i] = start + i;
  return Select(indices);
}

}  // namespace doppler::telemetry
