#include "telemetry/aggregate.h"

#include <algorithm>

namespace doppler::telemetry {

namespace {

using catalog::ResourceDim;

AggKind RuleForDim(ResourceDim dim) {
  switch (dim) {
    case ResourceDim::kStorageGb:
      return AggKind::kMax;
    case ResourceDim::kCpu:
    case ResourceDim::kMemoryGb:
    case ResourceDim::kIops:
    case ResourceDim::kLogRateMbps:
    case ResourceDim::kIoLatencyMs:
    case ResourceDim::kWorkers:
      return AggKind::kAverage;
  }
  return AggKind::kAverage;
}

double Combine(const std::vector<double>& bin, AggKind kind) {
  if (bin.empty()) return 0.0;
  switch (kind) {
    case AggKind::kAverage: {
      double sum = 0.0;
      for (double v : bin) sum += v;
      return sum / static_cast<double>(bin.size());
    }
    case AggKind::kMax:
      return *std::max_element(bin.begin(), bin.end());
    case AggKind::kSum: {
      double sum = 0.0;
      for (double v : bin) sum += v;
      return sum;
    }
  }
  return 0.0;
}

}  // namespace

StatusOr<std::vector<double>> Resample(const std::vector<double>& values,
                                       std::int64_t from_interval,
                                       std::int64_t to_interval,
                                       AggKind kind) {
  if (from_interval <= 0 || to_interval <= 0) {
    return InvalidArgumentError("intervals must be positive");
  }
  if (to_interval % from_interval != 0) {
    return InvalidArgumentError(
        "target interval must be a multiple of the source interval");
  }
  const std::size_t factor =
      static_cast<std::size_t>(to_interval / from_interval);
  if (factor == 1) return values;

  std::vector<double> out;
  out.reserve(values.size() / factor + 1);
  std::vector<double> bin;
  bin.reserve(factor);
  for (double v : values) {
    bin.push_back(v);
    if (bin.size() == factor) {
      out.push_back(Combine(bin, kind));
      bin.clear();
    }
  }
  if (!bin.empty()) out.push_back(Combine(bin, kind));
  return out;
}

StatusOr<PerfTrace> ResampleTrace(const PerfTrace& trace,
                                  std::int64_t to_interval) {
  PerfTrace out(to_interval);
  out.set_id(trace.id());
  for (ResourceDim dim : trace.PresentDims()) {
    DOPPLER_ASSIGN_OR_RETURN(
        std::vector<double> rebinned,
        Resample(trace.Values(dim), trace.interval_seconds(), to_interval,
                 RuleForDim(dim)));
    DOPPLER_RETURN_IF_ERROR(out.SetSeries(dim, std::move(rebinned)));
  }
  return out;
}

StatusOr<PerfTrace> RollupToInstance(const std::vector<PerfTrace>& databases) {
  if (databases.empty()) {
    return InvalidArgumentError("rollup requires at least one database trace");
  }
  const std::int64_t interval = databases[0].interval_seconds();
  const std::size_t n = databases[0].num_samples();
  for (const PerfTrace& db : databases) {
    if (db.interval_seconds() != interval) {
      return InvalidArgumentError("database traces must share a cadence");
    }
    if (db.num_samples() != n) {
      return InvalidArgumentError("database traces must share a length");
    }
  }

  // A dimension is rolled up only when every database collected it.
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : catalog::kAllResourceDims) {
    bool everywhere = true;
    for (const PerfTrace& db : databases) everywhere &= db.Has(dim);
    if (everywhere) dims.push_back(dim);
  }

  const bool weight_latency =
      std::find(dims.begin(), dims.end(), ResourceDim::kIops) != dims.end();

  PerfTrace instance(interval);
  instance.set_id("instance");
  for (ResourceDim dim : dims) {
    std::vector<double> combined(n, 0.0);
    if (dim == ResourceDim::kIoLatencyMs) {
      for (std::size_t i = 0; i < n; ++i) {
        double weighted = 0.0;
        double weight = 0.0;
        for (const PerfTrace& db : databases) {
          const double w =
              weight_latency ? db.Values(ResourceDim::kIops)[i] : 1.0;
          weighted += w * db.Values(dim)[i];
          weight += w;
        }
        combined[i] = weight > 0.0
                          ? weighted / weight
                          : databases[0].Values(dim)[i];
      }
    } else {
      for (const PerfTrace& db : databases) {
        const std::vector<double>& values = db.Values(dim);
        for (std::size_t i = 0; i < n; ++i) combined[i] += values[i];
      }
    }
    DOPPLER_RETURN_IF_ERROR(instance.SetSeries(dim, std::move(combined)));
  }
  return instance;
}

}  // namespace doppler::telemetry
