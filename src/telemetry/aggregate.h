#ifndef DOPPLER_TELEMETRY_AGGREGATE_H_
#define DOPPLER_TELEMETRY_AGGREGATE_H_

#include <vector>

#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::telemetry {

/// How to combine samples when re-binning or rolling up a dimension.
enum class AggKind {
  kAverage,
  kMax,
  kSum,
};

/// Re-bins an evenly spaced series from `from_interval` seconds per sample
/// to `to_interval` (which must be a positive multiple of `from_interval`),
/// combining each bin with `kind`. A trailing partial bin is aggregated
/// from the samples it has. This is the Pre-Aggregator step that turns raw
/// counter readings into the DMA's 10-minute grid (paper §4).
StatusOr<std::vector<double>> Resample(const std::vector<double>& values,
                                       std::int64_t from_interval,
                                       std::int64_t to_interval, AggKind kind);

/// Re-bins every present dimension of a trace to `to_interval` using the
/// standard per-dimension rules: average for CPU/memory/latency (levels),
/// average for IOPS/log-rate (rates), max for storage (allocated size only
/// grows meaningfully).
StatusOr<PerfTrace> ResampleTrace(const PerfTrace& trace,
                                  std::int64_t to_interval);

/// Rolls several database-level traces up to one instance-level trace
/// (paper §4: counters are "aggregated at the file, database and instance
/// levels"). All traces must share cadence and length. Per-dimension rules:
/// CPU, memory, IOPS, log rate and storage add across databases; IO latency
/// takes the IOPS-weighted mean (falling back to the plain mean when no
/// IOPS series is present). Dimensions present in only some inputs are
/// dropped — a partial sum would misstate instance demand.
StatusOr<PerfTrace> RollupToInstance(const std::vector<PerfTrace>& databases);

}  // namespace doppler::telemetry

#endif  // DOPPLER_TELEMETRY_AGGREGATE_H_
