#include "telemetry/trace_stats.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "stats/descriptive.h"

namespace doppler::telemetry {

const TraceStatsCache::DimEntry& TraceStatsCache::Entry(
    catalog::ResourceDim dim) const {
  std::lock_guard<std::mutex> lock(mu_);
  DimEntry& entry = entries_[Index(dim)];
  // A generation mismatch means the trace was mutated since the entry was
  // built: rebuild in place (the vectors are refilled, so references
  // handed out before the mutation stay valid and see fresh data) instead
  // of serving stale sorted order.
  if (entry.built && entry.generation == trace_->generation()) return entry;
  entry.sorted.clear();
  entry.argsort.clear();
  entry.mean = entry.stddev = entry.min = entry.max = 0.0;
  if (trace_->Has(dim)) {
    const std::vector<double>& values = trace_->Values(dim);
    // One sort per dimension: order the row indices, then gather the sorted
    // values through the permutation. The gathered vector holds the same
    // multiset in ascending order as sorting the values directly would, so
    // every Sorted() consumer stays bit-identical, and the permutation is
    // available to the exceedance index at no extra sort.
    const std::size_t n = values.size();
    entry.argsort.resize(n);
    std::iota(entry.argsort.begin(), entry.argsort.end(), std::uint32_t{0});
    std::sort(entry.argsort.begin(), entry.argsort.end(),
              [&values](std::uint32_t a, std::uint32_t b) {
                if (values[a] != values[b]) return values[a] < values[b];
                return a < b;
              });
    entry.sorted.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      entry.sorted[i] = values[entry.argsort[i]];
    }
    entry.mean = stats::Mean(values);
    entry.stddev = stats::StdDev(values);
    // Sorted extremes match stats::Min/Max on non-empty input.
    entry.min = entry.sorted.empty() ? 0.0 : entry.sorted.front();
    entry.max = entry.sorted.empty() ? 0.0 : entry.sorted.back();
  }
  entry.built = true;
  entry.generation = trace_->generation();
  return entry;
}

const std::vector<double>& TraceStatsCache::Sorted(
    catalog::ResourceDim dim) const {
  return Entry(dim).sorted;
}

const std::vector<std::uint32_t>& TraceStatsCache::Argsort(
    catalog::ResourceDim dim) const {
  return Entry(dim).argsort;
}

double TraceStatsCache::Quantile(catalog::ResourceDim dim, double q) const {
  return stats::QuantileFromSorted(Entry(dim).sorted, q);
}

double TraceStatsCache::Mean(catalog::ResourceDim dim) const {
  return Entry(dim).mean;
}

double TraceStatsCache::StdDev(catalog::ResourceDim dim) const {
  return Entry(dim).stddev;
}

double TraceStatsCache::Min(catalog::ResourceDim dim) const {
  return Entry(dim).min;
}

double TraceStatsCache::Max(catalog::ResourceDim dim) const {
  return Entry(dim).max;
}

}  // namespace doppler::telemetry
