#include "telemetry/trace_stats.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace doppler::telemetry {

const TraceStatsCache::DimEntry& TraceStatsCache::Entry(
    catalog::ResourceDim dim) const {
  std::lock_guard<std::mutex> lock(mu_);
  DimEntry& entry = entries_[Index(dim)];
  if (entry.built) return entry;
  if (trace_->Has(dim)) {
    const std::vector<double>& values = trace_->Values(dim);
    entry.sorted = values;
    std::sort(entry.sorted.begin(), entry.sorted.end());
    entry.mean = stats::Mean(values);
    entry.stddev = stats::StdDev(values);
    // Sorted extremes match stats::Min/Max on non-empty input.
    entry.min = entry.sorted.empty() ? 0.0 : entry.sorted.front();
    entry.max = entry.sorted.empty() ? 0.0 : entry.sorted.back();
  }
  entry.built = true;
  return entry;
}

const std::vector<double>& TraceStatsCache::Sorted(
    catalog::ResourceDim dim) const {
  return Entry(dim).sorted;
}

double TraceStatsCache::Quantile(catalog::ResourceDim dim, double q) const {
  return stats::QuantileFromSorted(Entry(dim).sorted, q);
}

double TraceStatsCache::Mean(catalog::ResourceDim dim) const {
  return Entry(dim).mean;
}

double TraceStatsCache::StdDev(catalog::ResourceDim dim) const {
  return Entry(dim).stddev;
}

double TraceStatsCache::Min(catalog::ResourceDim dim) const {
  return Entry(dim).min;
}

double TraceStatsCache::Max(catalog::ResourceDim dim) const {
  return Entry(dim).max;
}

}  // namespace doppler::telemetry
