#ifndef DOPPLER_TELEMETRY_PERF_TRACE_H_
#define DOPPLER_TELEMETRY_PERF_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/resource.h"
#include "util/statusor.h"

namespace doppler::telemetry {

/// The DMA collector's sampling cadence: perf counters are collected every
/// 10 minutes (paper §4).
inline constexpr std::int64_t kDmaIntervalSeconds = 600;

/// Samples per day at the DMA cadence (144).
inline constexpr int kSamplesPerDay =
    static_cast<int>(86400 / kDmaIntervalSeconds);

/// Zero-copy column-major view of a trace's demand matrix over a chosen
/// dimension subset: column k is the contiguous series for the k-th
/// requested dimension, every column sharing one row count. This is the
/// shape the throttling kernels consume — the scalar scan
/// (NonParametricEstimator::Probability) sweeps each column once per
/// evaluation, while the batch path argsorts each column once per trace
/// and answers every evaluation from memoized exceedance bitsets
/// (core/exceedance_index.h, DESIGN.md §9).
struct DemandColumns {
  /// One pointer per requested dimension, each to `num_rows` contiguous
  /// doubles. Absent dimensions are skipped entirely.
  std::array<const double*, catalog::kNumResourceDims> columns{};
  std::array<catalog::ResourceDim, catalog::kNumResourceDims> dims{};
  std::size_t num_columns = 0;
  std::size_t num_rows = 0;

  const double* column(std::size_t k) const { return columns[k]; }
  catalog::ResourceDim dim(std::size_t k) const { return dims[k]; }
};

/// A customer's performance history: one aligned, evenly spaced series per
/// collected resource dimension. Index i of every present dimension refers
/// to the same wall-clock sample, which is what the joint (multivariate)
/// throttling estimate needs (paper Eq. 1 evaluates all dimensions "at each
/// time point").
class PerfTrace {
 public:
  /// Creates an empty trace at the given cadence.
  explicit PerfTrace(std::int64_t interval_seconds = kDmaIntervalSeconds)
      : interval_seconds_(interval_seconds) {}

  /// Identifier of the assessed object (instance or database name).
  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  std::int64_t interval_seconds() const { return interval_seconds_; }

  /// Mutation counter: bumped by every successful SetSeries. Caches that
  /// BORROW a trace (TraceStatsCache, ExceedanceIndex) record the
  /// generation they were built against and rebuild instead of serving
  /// stale sorted state when it has moved on — the eviction/mutation
  /// hazard guard (DESIGN.md §13). Copies carry the source's generation;
  /// a copy and its source then diverge independently.
  std::uint64_t generation() const { return generation_; }

  /// Installs the series for one dimension. The first installed series
  /// fixes the trace length; later series must match it. Replacing an
  /// already-present series keeps the length and bumps generation().
  Status SetSeries(catalog::ResourceDim dim, std::vector<double> values);

  /// True when the dimension was collected.
  bool Has(catalog::ResourceDim dim) const {
    return present_[Index(dim)];
  }

  /// Series for a dimension; empty when absent.
  const std::vector<double>& Values(catalog::ResourceDim dim) const;

  /// Dimensions present, in enum order.
  std::vector<catalog::ResourceDim> PresentDims() const;

  /// Number of aligned samples (0 when no series installed).
  std::size_t num_samples() const { return num_samples_; }

  /// Assessment duration covered by the trace, in days.
  double DurationDays() const {
    return static_cast<double>(num_samples_) *
           static_cast<double>(interval_seconds_) / 86400.0;
  }

  /// Joint demand at sample `i` across the present dimensions.
  catalog::ResourceVector DemandAt(std::size_t i) const;

  /// Column-major demand matrix over `dims` (absent dimensions are
  /// skipped). The view borrows the trace's storage — it is valid only
  /// while the trace is alive and unmutated.
  DemandColumns Columns(const std::vector<catalog::ResourceDim>& dims) const;

  /// New trace holding the samples at `indices` (in the given order) for
  /// every present dimension; the bootstrap resampler drives this.
  PerfTrace Select(const std::vector<std::size_t>& indices) const;

  /// Contiguous window [start, start+count); clamped to the trace length.
  PerfTrace Window(std::size_t start, std::size_t count) const;

 private:
  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  std::string id_;
  std::int64_t interval_seconds_;
  std::uint64_t generation_ = 0;
  std::size_t num_samples_ = 0;
  std::array<std::vector<double>, catalog::kNumResourceDims> series_;
  std::array<bool, catalog::kNumResourceDims> present_{};
};

}  // namespace doppler::telemetry

#endif  // DOPPLER_TELEMETRY_PERF_TRACE_H_
