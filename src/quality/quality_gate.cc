#include "quality/quality_gate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace doppler::quality {

namespace {

using catalog::ResourceDim;
using telemetry::PerfTrace;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// What the parser found in one cell.
enum class CellFlag { kOk, kMalformed, kNonFinite, kNegative };

struct ParsedCell {
  double value = kNan;
  CellFlag flag = CellFlag::kMalformed;
};

ParsedCell ParseCell(const std::string& text) {
  ParsedCell cell;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return cell;  // kMalformed.
  }
  cell.value = value;
  if (!std::isfinite(value)) {
    cell.flag = CellFlag::kNonFinite;
  } else if (value < 0.0) {
    cell.flag = CellFlag::kNegative;
  } else {
    cell.flag = CellFlag::kOk;
  }
  return cell;
}

/// One raw sample: timestamp, source row (1-based, for diagnostics), and
/// one parsed cell per gated dimension column.
struct RawRow {
  double t = 0.0;
  std::size_t source_row = 0;
  std::vector<ParsedCell> cells;
};

/// Linear interpolation of every not-ok slot from its nearest ok
/// neighbours (ends hold the nearest ok value). Returns the number of
/// slots filled; leaves the series untouched when no slot is ok.
int InterpolateMissing(std::vector<double>* values, std::vector<bool>* ok) {
  const std::size_t n = values->size();
  int filled = 0;
  std::size_t prev_ok = n;  // n = none seen yet.
  for (std::size_t i = 0; i < n; ++i) {
    if ((*ok)[i]) {
      prev_ok = i;
      continue;
    }
    // Find the next ok slot.
    std::size_t next_ok = i + 1;
    while (next_ok < n && !(*ok)[next_ok]) ++next_ok;
    if (prev_ok == n && next_ok == n) return filled;  // Nothing to anchor on.
    double value;
    if (prev_ok == n) {
      value = (*values)[next_ok];
    } else if (next_ok == n) {
      value = (*values)[prev_ok];
    } else {
      const double w = static_cast<double>(i - prev_ok) /
                       static_cast<double>(next_ok - prev_ok);
      value = (*values)[prev_ok] * (1.0 - w) + (*values)[next_ok] * w;
    }
    (*values)[i] = value;
    (*ok)[i] = true;
    ++filled;
  }
  return filled;
}

bool AllZero(const std::vector<double>& values) {
  for (double v : values) {
    if (v != 0.0) return false;
  }
  return !values.empty();
}

std::string RowContext(std::size_t source_row, const std::string& column) {
  return "data row " + std::to_string(source_row) + ", column '" + column +
         "'";
}

// Exports what a completed gate found: total/repaired counts plus one
// counter per defect class ("quality.defect.gap", ...). Gate granularity,
// so the name lookups are off the hot path.
void RecordGateMetrics(const TraceQualityReport& report) {
  obs::MetricsRegistry& metrics = obs::DefaultMetrics();
  metrics.GetCounter("quality.gates")->Increment();
  metrics.GetCounter("quality.defects_found")
      ->Increment(static_cast<std::uint64_t>(report.TotalDefects()));
  metrics.GetCounter("quality.defects_repaired")
      ->Increment(static_cast<std::uint64_t>(report.RepairedDefects()));
  for (const QualityDefect& defect : report.defects) {
    metrics
        .GetCounter(std::string("quality.defect.") +
                    DefectClassName(defect.defect))
        ->Increment(static_cast<std::uint64_t>(defect.count));
  }
}

}  // namespace

void AssessDegradedMode(const std::vector<ResourceDim>& present,
                        const std::vector<ResourceDim>& expected,
                        TraceQualityReport* report) {
  report->assessed_dims = present;
  report->missing_dims.clear();
  for (ResourceDim dim : expected) {
    if (std::find(present.begin(), present.end(), dim) == present.end()) {
      report->missing_dims.push_back(dim);
    }
  }
  report->degraded = !report->missing_dims.empty();
  report->confidence_penalty =
      expected.empty() ? 0.0
                       : static_cast<double>(report->missing_dims.size()) /
                             static_cast<double>(expected.size());
  if (report->degraded) {
    std::string names;
    for (ResourceDim dim : report->missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    report->Add(DefectClass::kMissingDimension,
                static_cast<int>(report->missing_dims.size()),
                /*repaired=*/false,
                "assessment narrowed to collected dimensions; missing: " +
                    names);
  }
}

StatusOr<GatedTrace> GateTraceCsv(const CsvTable& table,
                                  const GateOptions& options) {
  DOPPLER_TRACE_SPAN("quality.gate_csv");
  DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col,
                           table.ColumnIndex("t_seconds"));
  const bool strict = options.policy == QualityPolicy::kStrict;
  const bool repair = options.policy == QualityPolicy::kRepair;

  // Map gated columns to dimensions (unknown columns are ignored, matching
  // TraceFromCsv).
  std::vector<std::size_t> dim_cols;
  std::vector<ResourceDim> dims;
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c == time_col) continue;
    ResourceDim dim;
    if (!catalog::ParseResourceDim(table.header()[c], &dim)) continue;
    dim_cols.push_back(c);
    dims.push_back(dim);
  }
  if (dims.empty()) {
    return InvalidArgumentError("CSV contains no known resource columns");
  }

  GatedTrace gated;
  gated.report.policy = options.policy;
  gated.report.samples_in = static_cast<int>(table.num_rows());

  // ---- Pass 1: parse rows; cell defects surface here.
  std::vector<RawRow> rows;
  rows.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    RawRow row;
    row.source_row = r + 1;
    const ParsedCell t = ParseCell(table.row(r)[time_col]);
    if (t.flag == CellFlag::kMalformed || t.flag == CellFlag::kNonFinite) {
      if (strict) {
        return InvalidArgumentError(
            "unusable timestamp at " + RowContext(row.source_row, "t_seconds") +
            ": '" + table.row(r)[time_col] + "'");
      }
      // A sample that cannot be placed in time is dropped under both
      // repair and permissive: there is no slot to carry it in.
      gated.report.Add(DefectClass::kMalformedCell, 1, /*repaired=*/true,
                       "rows with unusable timestamps dropped");
      continue;
    }
    row.t = t.value;
    row.cells.reserve(dims.size());
    for (std::size_t d = 0; d < dims.size(); ++d) {
      ParsedCell cell = ParseCell(table.row(r)[dim_cols[d]]);
      switch (cell.flag) {
        case CellFlag::kMalformed:
          if (strict) {
            return InvalidArgumentError(
                "not a number at " +
                RowContext(row.source_row, table.header()[dim_cols[d]]) +
                ": '" + table.row(r)[dim_cols[d]] + "'");
          }
          gated.report.Add(DefectClass::kMalformedCell, 1, repair,
                           repair ? "unparseable cells interpolated"
                                  : "unparseable cells carried as NaN");
          break;
        case CellFlag::kNonFinite:
          if (strict) {
            return InvalidArgumentError(
                "non-finite value at " +
                RowContext(row.source_row, table.header()[dim_cols[d]]));
          }
          gated.report.Add(DefectClass::kNonFinite, 1, repair,
                           repair ? "NaN/Inf cells interpolated"
                                  : "NaN/Inf cells kept");
          break;
        case CellFlag::kNegative:
          if (strict) {
            return InvalidArgumentError(
                "negative counter at " +
                RowContext(row.source_row, table.header()[dim_cols[d]]));
          }
          if (repair) {
            cell.value = 0.0;
            cell.flag = CellFlag::kOk;
            gated.report.Add(DefectClass::kNegative, 1, /*repaired=*/true,
                             "negative counters clamped to 0");
          } else {
            gated.report.Add(DefectClass::kNegative, 1, /*repaired=*/false,
                             "negative counters kept");
          }
          break;
        case CellFlag::kOk:
          break;
      }
      row.cells.push_back(cell);
    }
    rows.push_back(std::move(row));
  }
  if (rows.size() < options.min_samples) {
    return InvalidArgumentError(
        "trace retains " + std::to_string(rows.size()) +
        " usable samples; at least " + std::to_string(options.min_samples) +
        " required");
  }

  // ---- Pass 2: timestamp order.
  int inversions = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].t < rows[i - 1].t) {
      if (strict) {
        return InvalidArgumentError(
            "t_seconds not strictly increasing at data row " +
            std::to_string(rows[i].source_row));
      }
      ++inversions;
    }
  }
  if (inversions > 0) {
    // Sorting is structural: PerfTrace has no timestamps, so order must be
    // restored before the series can exist at all (hence "repaired" even
    // under the record-only policy).
    std::stable_sort(rows.begin(), rows.end(),
                     [](const RawRow& a, const RawRow& b) { return a.t < b.t; });
    gated.report.Add(DefectClass::kOutOfOrder, inversions, /*repaired=*/true,
                     "rows re-sorted by timestamp");
  }

  // ---- Pass 3: duplicate timestamps.
  std::vector<RawRow> unique_rows;
  unique_rows.reserve(rows.size());
  int duplicates = 0;
  for (std::size_t i = 0; i < rows.size();) {
    std::size_t j = i + 1;
    while (j < rows.size() && rows[j].t == rows[i].t) ++j;
    if (j - i > 1) {
      if (strict) {
        return InvalidArgumentError("duplicate timestamp at data row " +
                                    std::to_string(rows[i + 1].source_row));
      }
      duplicates += static_cast<int>(j - i - 1);
      if (repair) {
        // Average the duplicates' usable cells per dimension.
        RawRow merged = rows[i];
        for (std::size_t d = 0; d < dims.size(); ++d) {
          double sum = 0.0;
          int n = 0;
          for (std::size_t k = i; k < j; ++k) {
            if (rows[k].cells[d].flag == CellFlag::kOk) {
              sum += rows[k].cells[d].value;
              ++n;
            }
          }
          if (n > 0) {
            merged.cells[d].value = sum / n;
            merged.cells[d].flag = CellFlag::kOk;
          }
        }
        unique_rows.push_back(std::move(merged));
      } else {
        unique_rows.push_back(rows[i]);  // Record-only keeps the first.
      }
    } else {
      unique_rows.push_back(rows[i]);
    }
    i = j;
  }
  if (duplicates > 0) {
    gated.report.Add(DefectClass::kDuplicateTimestamp, duplicates,
                     /*repaired=*/true,
                     repair ? "duplicate samples averaged"
                            : "first of each duplicate kept");
  }
  rows = std::move(unique_rows);

  // ---- Pass 4: cadence. The dominant interval is the median delta.
  std::int64_t interval = telemetry::kDmaIntervalSeconds;
  if (rows.size() >= 2) {
    std::vector<double> deltas;
    deltas.reserve(rows.size() - 1);
    for (std::size_t i = 1; i < rows.size(); ++i) {
      deltas.push_back(rows[i].t - rows[i - 1].t);
    }
    std::nth_element(deltas.begin(), deltas.begin() + deltas.size() / 2,
                     deltas.end());
    interval = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(deltas[deltas.size() / 2])));
  }
  if (options.canonical_interval_seconds > 0 &&
      interval != options.canonical_interval_seconds) {
    const double canonical =
        static_cast<double>(options.canonical_interval_seconds);
    if (std::abs(static_cast<double>(interval) - canonical) <=
        0.1 * canonical) {
      interval = options.canonical_interval_seconds;
    }
  }

  // Assign each row to its grid slot; drift and gaps surface here.
  const double t0 = rows.front().t;
  int drift = 0;
  std::vector<std::size_t> slots(rows.size());
  std::size_t last_slot = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double exact = (rows[i].t - t0) / static_cast<double>(interval);
    const auto slot = static_cast<std::size_t>(std::max(0.0, std::round(exact)));
    const double off = std::abs(rows[i].t - (t0 + static_cast<double>(slot) *
                                                      static_cast<double>(interval)));
    if (off > options.cadence_drift_tolerance * static_cast<double>(interval)) {
      if (strict) {
        return InvalidArgumentError(
            "cadence drift at data row " + std::to_string(rows[i].source_row) +
            ": timestamp " + FormatDouble(rows[i].t, 1) + " is off the " +
            std::to_string(interval) + "s grid");
      }
      ++drift;
    }
    slots[i] = slot;
    last_slot = std::max(last_slot, slot);
  }
  if (drift > 0) {
    gated.report.Add(DefectClass::kCadenceDrift, drift, repair,
                     repair ? "timestamps snapped to the cadence grid"
                            : "off-grid timestamps recorded");
  }

  // ---- Pass 5: build the aligned series.
  PerfTrace trace(interval);
  std::vector<ResourceDim> kept_dims;

  if (repair) {
    // Slot-indexed assembly: gaps and bad cells become missing slots, all
    // interpolated in one pass so Eq. 1 keeps every time point.
    int gap_slots = 0;
    std::size_t longest_gap = 0;
    {
      std::vector<bool> has_row(last_slot + 1, false);
      for (std::size_t slot : slots) has_row[slot] = true;
      std::size_t run = 0;
      for (std::size_t s = 0; s <= last_slot; ++s) {
        if (has_row[s]) {
          run = 0;
        } else {
          ++gap_slots;
          longest_gap = std::max(longest_gap, ++run);
        }
      }
    }
    if (longest_gap > options.max_gap_intervals) {
      return FailedPreconditionError(
          "collector gap of " + std::to_string(longest_gap) +
          " samples exceeds the " + std::to_string(options.max_gap_intervals) +
          "-sample repair limit; trace rejected rather than invented");
    }
    if (gap_slots > 0) {
      gated.report.Add(DefectClass::kGap, gap_slots, /*repaired=*/true,
                       "missing sample windows filled by linear "
                       "interpolation");
    }

    for (std::size_t d = 0; d < dims.size(); ++d) {
      std::vector<double> values(last_slot + 1, kNan);
      std::vector<bool> ok(last_slot + 1, false);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (rows[i].cells[d].flag == CellFlag::kOk) {
          values[slots[i]] = rows[i].cells[d].value;
          ok[slots[i]] = true;
        }
      }
      const bool any_ok =
          std::find(ok.begin(), ok.end(), true) != ok.end();
      if (!any_ok) {
        gated.report.Add(DefectClass::kMalformedCell,
                         static_cast<int>(values.size()), /*repaired=*/true,
                         std::string("column '") +
                             catalog::ResourceDimName(dims[d]) +
                             "' dropped: no usable cells");
        continue;
      }
      InterpolateMissing(&values, &ok);
      if (AllZero(values)) {
        gated.report.Add(DefectClass::kDeadCounter,
                         static_cast<int>(values.size()), /*repaired=*/true,
                         std::string("constant-zero counter '") +
                             catalog::ResourceDimName(dims[d]) +
                             "' dropped from the assessment");
        continue;
      }
      DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dims[d], std::move(values)));
      kept_dims.push_back(dims[d]);
    }
  } else {
    // Record-only: keep the sorted samples as-is; gaps compress time and
    // are recorded, not filled.
    int gap_slots = 0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (slots[i] > slots[i - 1] + 1) {
        gap_slots += static_cast<int>(slots[i] - slots[i - 1] - 1);
      }
    }
    if (gap_slots > 0) {
      if (strict) {
        return FailedPreconditionError(
            "trace has " + std::to_string(gap_slots) +
            " missing sample windows");
      }
      gated.report.Add(DefectClass::kGap, gap_slots, /*repaired=*/false,
                       "missing sample windows compress time (record-only "
                       "policy)");
    }
    for (std::size_t d = 0; d < dims.size(); ++d) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (const RawRow& row : rows) values.push_back(row.cells[d].value);
      if (AllZero(values)) {
        if (strict) {
          return FailedPreconditionError(
              std::string("dead (constant-zero) counter: ") +
              catalog::ResourceDimName(dims[d]));
        }
        gated.report.Add(DefectClass::kDeadCounter,
                         static_cast<int>(values.size()), /*repaired=*/false,
                         std::string("constant-zero counter '") +
                             catalog::ResourceDimName(dims[d]) + "' kept");
      }
      DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dims[d], std::move(values)));
      kept_dims.push_back(dims[d]);
    }
  }

  if (kept_dims.empty()) {
    return FailedPreconditionError(
        "every resource column was dead or unusable; nothing to assess");
  }
  if (trace.num_samples() < options.min_samples) {
    return InvalidArgumentError(
        "trace retains " + std::to_string(trace.num_samples()) +
        " usable samples; at least " + std::to_string(options.min_samples) +
        " required");
  }

  // ---- Pass 6: degraded-mode assessment.
  AssessDegradedMode(kept_dims, options.expected_dims, &gated.report);
  if (strict && gated.report.degraded) {
    std::string names;
    for (ResourceDim dim : gated.report.missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    return FailedPreconditionError("expected dimensions missing: " + names);
  }

  gated.report.samples_out = static_cast<int>(trace.num_samples());
  gated.trace = std::move(trace);
  RecordGateMetrics(gated.report);
  return gated;
}

StatusOr<GatedTrace> GateTrace(const PerfTrace& trace,
                               const GateOptions& options) {
  DOPPLER_TRACE_SPAN("quality.gate");
  const bool strict = options.policy == QualityPolicy::kStrict;
  const bool repair = options.policy == QualityPolicy::kRepair;
  if (trace.num_samples() < options.min_samples) {
    return InvalidArgumentError(
        "trace has " + std::to_string(trace.num_samples()) +
        " samples; at least " + std::to_string(options.min_samples) +
        " required");
  }

  GatedTrace gated;
  gated.report.policy = options.policy;
  gated.report.samples_in = static_cast<int>(trace.num_samples());
  gated.report.samples_out = gated.report.samples_in;

  PerfTrace cleaned(trace.interval_seconds());
  cleaned.set_id(trace.id());
  std::vector<ResourceDim> kept_dims;
  for (ResourceDim dim : trace.PresentDims()) {
    std::vector<double> values = trace.Values(dim);
    std::vector<bool> ok(values.size(), true);
    int non_finite = 0;
    int negative = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!std::isfinite(values[i])) {
        if (strict) {
          return InvalidArgumentError(
              std::string("non-finite value in dimension '") +
              catalog::ResourceDimName(dim) + "' at sample " +
              std::to_string(i));
        }
        ++non_finite;
        if (repair) ok[i] = false;
      } else if (values[i] < 0.0) {
        if (strict) {
          return InvalidArgumentError(
              std::string("negative counter in dimension '") +
              catalog::ResourceDimName(dim) + "' at sample " +
              std::to_string(i));
        }
        ++negative;
        if (repair) values[i] = 0.0;
      }
    }
    if (non_finite > 0) {
      gated.report.Add(DefectClass::kNonFinite, non_finite, repair,
                       repair ? "NaN/Inf samples interpolated"
                              : "NaN/Inf samples kept");
    }
    if (negative > 0) {
      gated.report.Add(DefectClass::kNegative, negative, repair,
                       repair ? "negative counters clamped to 0"
                              : "negative counters kept");
    }
    if (repair) {
      const bool any_ok = std::find(ok.begin(), ok.end(), true) != ok.end();
      if (!any_ok) {
        gated.report.Add(DefectClass::kDeadCounter,
                         static_cast<int>(values.size()), /*repaired=*/true,
                         std::string("counter '") +
                             catalog::ResourceDimName(dim) +
                             "' dropped: no finite samples");
        continue;
      }
      InterpolateMissing(&values, &ok);
      if (AllZero(values)) {
        if (strict) {
          return FailedPreconditionError(
              std::string("dead (constant-zero) counter: ") +
              catalog::ResourceDimName(dim));
        }
        gated.report.Add(DefectClass::kDeadCounter,
                         static_cast<int>(values.size()), /*repaired=*/true,
                         std::string("constant-zero counter '") +
                             catalog::ResourceDimName(dim) +
                             "' dropped from the assessment");
        continue;
      }
    } else if (AllZero(values)) {
      if (strict) {
        return FailedPreconditionError(
            std::string("dead (constant-zero) counter: ") +
            catalog::ResourceDimName(dim));
      }
      gated.report.Add(DefectClass::kDeadCounter,
                       static_cast<int>(values.size()), /*repaired=*/false,
                       std::string("constant-zero counter '") +
                           catalog::ResourceDimName(dim) + "' kept");
    }
    DOPPLER_RETURN_IF_ERROR(cleaned.SetSeries(dim, std::move(values)));
    kept_dims.push_back(dim);
  }

  if (kept_dims.empty()) {
    return FailedPreconditionError(
        "every collected counter was dead or non-finite; nothing to assess");
  }

  AssessDegradedMode(kept_dims, options.expected_dims, &gated.report);
  if (strict && gated.report.degraded) {
    std::string names;
    for (ResourceDim dim : gated.report.missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    return FailedPreconditionError("expected dimensions missing: " + names);
  }

  gated.trace = std::move(cleaned);
  RecordGateMetrics(gated.report);
  return gated;
}

StatusOr<GatedTrace> ReadTraceFileGated(const std::string& path,
                                        const GateOptions& options) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return GateTraceCsv(table, options);
}

}  // namespace doppler::quality
