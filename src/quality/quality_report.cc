#include "quality/quality_report.h"

#include <algorithm>

namespace doppler::quality {

const char* QualityPolicyName(QualityPolicy policy) {
  switch (policy) {
    case QualityPolicy::kStrict:
      return "strict";
    case QualityPolicy::kRepair:
      return "repair";
    case QualityPolicy::kPermissive:
      return "permissive";
  }
  return "unknown";
}

bool ParseQualityPolicy(const std::string& name, QualityPolicy* policy) {
  if (name == "strict") {
    *policy = QualityPolicy::kStrict;
    return true;
  }
  if (name == "repair") {
    *policy = QualityPolicy::kRepair;
    return true;
  }
  if (name == "permissive") {
    *policy = QualityPolicy::kPermissive;
    return true;
  }
  return false;
}

const char* DefectClassName(DefectClass defect) {
  switch (defect) {
    case DefectClass::kOutOfOrder:
      return "out_of_order";
    case DefectClass::kDuplicateTimestamp:
      return "duplicate_timestamp";
    case DefectClass::kCadenceDrift:
      return "cadence_drift";
    case DefectClass::kGap:
      return "gap";
    case DefectClass::kNonFinite:
      return "non_finite";
    case DefectClass::kNegative:
      return "negative";
    case DefectClass::kDeadCounter:
      return "dead_counter";
    case DefectClass::kMissingDimension:
      return "missing_dimension";
    case DefectClass::kMalformedCell:
      return "malformed_cell";
  }
  return "unknown";
}

void TraceQualityReport::Add(DefectClass defect, int count, bool repaired,
                             std::string detail) {
  if (count <= 0) return;
  for (QualityDefect& existing : defects) {
    if (existing.defect == defect && existing.repaired == repaired) {
      existing.count += count;
      if (existing.detail.empty()) existing.detail = std::move(detail);
      return;
    }
  }
  defects.push_back({defect, count, repaired, std::move(detail)});
}

int TraceQualityReport::TotalDefects() const {
  int total = 0;
  for (const QualityDefect& defect : defects) total += defect.count;
  return total;
}

int TraceQualityReport::RepairedDefects() const {
  int total = 0;
  for (const QualityDefect& defect : defects) {
    if (defect.repaired) total += defect.count;
  }
  return total;
}

void TraceQualityReport::MergeFrom(const TraceQualityReport& other) {
  for (const QualityDefect& defect : other.defects) {
    Add(defect.defect, defect.count, defect.repaired, defect.detail);
  }
  samples_in += other.samples_in;
  samples_out += other.samples_out;
  for (catalog::ResourceDim dim : other.missing_dims) {
    if (std::find(missing_dims.begin(), missing_dims.end(), dim) ==
        missing_dims.end()) {
      missing_dims.push_back(dim);
    }
  }
  for (catalog::ResourceDim dim : other.assessed_dims) {
    if (std::find(assessed_dims.begin(), assessed_dims.end(), dim) ==
        assessed_dims.end()) {
      assessed_dims.push_back(dim);
    }
  }
  degraded = degraded || other.degraded;
  confidence_penalty = std::max(confidence_penalty, other.confidence_penalty);
}

std::string TraceQualityReport::Summary() const {
  if (clean()) return "clean telemetry: no defects";
  std::string out = std::to_string(TotalDefects()) + " defects (" +
                    std::to_string(RepairedDefects()) + " repaired)";
  if (!defects.empty()) {
    out += ": ";
    for (std::size_t i = 0; i < defects.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::string(DefectClassName(defects[i].defect)) + " x" +
             std::to_string(defects[i].count);
    }
  }
  if (degraded) {
    out += "; degraded: missing";
    for (catalog::ResourceDim dim : missing_dims) {
      out += std::string(" ") + catalog::ResourceDimName(dim);
    }
  }
  return out;
}

}  // namespace doppler::quality
