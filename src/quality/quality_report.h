#ifndef DOPPLER_QUALITY_QUALITY_REPORT_H_
#define DOPPLER_QUALITY_QUALITY_REPORT_H_

#include <string>
#include <vector>

#include "catalog/resource.h"

namespace doppler::quality {

/// How the telemetry quality gate reacts to defects in collector output.
enum class QualityPolicy {
  /// Return a typed Status on the first defect found; the trace is never
  /// modified. For callers that must not assess dirty data.
  kStrict = 0,
  /// Repair every repairable defect (sort, de-duplicate, interpolate,
  /// clamp, drop dead counters) and record each intervention. The DMA
  /// pipeline default: a recommendation is always produced when one is
  /// possible, and it is always explainable.
  kRepair = 1,
  /// Record defects but keep the data as close to raw as possible: only
  /// the structural normalisation PerfTrace cannot represent otherwise
  /// (timestamp ordering, duplicate collapse) is applied; cell values and
  /// gaps pass through untouched. For auditing collectors.
  kPermissive = 2,
};

/// Stable lower-case name ("strict", "repair", "permissive").
const char* QualityPolicyName(QualityPolicy policy);

/// Inverse of QualityPolicyName; returns true and sets `policy` on success.
bool ParseQualityPolicy(const std::string& name, QualityPolicy* policy);

/// The classes of real-world telemetry dirt the gate detects (collector
/// restarts, clock gaps, serialization bugs — paper §2's DMA appliance runs
/// on customer hardware, so all of these occur in the field).
enum class DefectClass {
  kOutOfOrder = 0,      ///< Timestamps not strictly increasing.
  kDuplicateTimestamp,  ///< Two samples for the same time point.
  kCadenceDrift,        ///< Deltas off the dominant cadence grid.
  kGap,                 ///< Missing sample windows (collector downtime).
  kNonFinite,           ///< NaN/Inf cells (serialization or counter bugs).
  kNegative,            ///< Negative counter values (wrap-around, resets).
  kDeadCounter,         ///< A series that is constant zero end to end.
  kMissingDimension,    ///< An expected profiling dimension was never collected.
  kMalformedCell,       ///< A cell that does not parse as a number.
};

/// Number of defect classes (for iteration in tests and tooling).
inline constexpr int kNumDefectClasses = 9;

/// Stable snake_case name ("out_of_order", "gap", ...).
const char* DefectClassName(DefectClass defect);

/// One class of defect found in a trace: how often it occurred, whether the
/// gate repaired it, and a human-readable description of the intervention.
struct QualityDefect {
  DefectClass defect = DefectClass::kGap;
  int count = 0;
  bool repaired = false;
  std::string detail;
};

/// Everything the gate did to (or found in) one trace, carried through the
/// pipeline into AssessmentOutcome and the JSON export so a degraded
/// recommendation is always explainable.
struct TraceQualityReport {
  QualityPolicy policy = QualityPolicy::kRepair;
  std::vector<QualityDefect> defects;

  /// Samples seen before / after gating (gap interpolation grows the
  /// trace; duplicate collapse shrinks it).
  int samples_in = 0;
  int samples_out = 0;

  /// Degraded-mode assessment: expected profiling dimensions that were
  /// never collected. The joint demand (Eq. 1) is narrowed to the
  /// available dimensions and the recommendation's confidence is reduced.
  std::vector<catalog::ResourceDim> missing_dims;
  /// Dimensions the assessment actually ran on.
  std::vector<catalog::ResourceDim> assessed_dims;
  /// True when the assessment ran on fewer dimensions than expected.
  bool degraded = false;
  /// Fraction of expected dimensions missing, in [0, 1]; a coarse
  /// confidence discount for the Resource Use Module to surface.
  double confidence_penalty = 0.0;

  /// Adds `count` occurrences of a defect class (merging with an existing
  /// entry of the same class and repair state).
  void Add(DefectClass defect, int count, bool repaired, std::string detail);

  /// Total defect occurrences across classes.
  int TotalDefects() const;

  /// Occurrences the gate repaired.
  int RepairedDefects() const;

  /// True when no defects were found and no dimension is missing.
  bool clean() const { return defects.empty() && !degraded; }

  /// Folds another report into this one (multi-database rollups).
  void MergeFrom(const TraceQualityReport& other);

  /// One-line human summary, e.g.
  /// "7 defects (7 repaired): gap x4, nan x3; degraded: missing log_rate".
  std::string Summary() const;
};

}  // namespace doppler::quality

#endif  // DOPPLER_QUALITY_QUALITY_REPORT_H_
