#ifndef DOPPLER_QUALITY_QUALITY_GATE_H_
#define DOPPLER_QUALITY_QUALITY_GATE_H_

#include <string>
#include <vector>

#include "quality/quality_report.h"
#include "telemetry/perf_trace.h"
#include "util/csv.h"
#include "util/statusor.h"

namespace doppler::quality {

/// Tuning knobs for the telemetry quality gate.
struct GateOptions {
  QualityPolicy policy = QualityPolicy::kRepair;

  /// A timestamp further than this fraction of the cadence from its grid
  /// slot counts as cadence drift (and is snapped under kRepair).
  double cadence_drift_tolerance = 0.02;

  /// Longest gap (in missing sample slots) the gate will bridge by linear
  /// interpolation; longer collector outages are rejected with
  /// FAILED_PRECONDITION even under kRepair — inventing eight-plus hours
  /// of counters would bias Eq. 1 worse than refusing to assess.
  std::size_t max_gap_intervals = 48;

  /// Minimum samples the gated trace must retain.
  std::size_t min_samples = 2;

  /// Nominal collector cadence. When the median inter-sample delta lands
  /// within 10% of this (jittered timestamps pull it slightly off-grid),
  /// the gate snaps the inferred cadence back to the nominal value so the
  /// repaired trace stays resampleable downstream. 0 disables snapping.
  std::int64_t canonical_interval_seconds = telemetry::kDmaIntervalSeconds;

  /// Profiling dimensions the assessment expects (e.g.
  /// workload::ProfilingDims(deployment)). Dimensions absent from the
  /// trace are recorded as kMissingDimension and trigger the degraded-mode
  /// assessment; empty = skip the check.
  std::vector<catalog::ResourceDim> expected_dims;
};

/// A trace that passed the gate, plus the record of everything the gate
/// found and did.
struct GatedTrace {
  telemetry::PerfTrace trace;
  TraceQualityReport report;
};

/// Runs the full quality gate on raw collector CSV rows (a table with a
/// t_seconds column plus resource columns, as ReadTraceFile consumes).
/// Detects and — under kRepair — fixes: malformed/NaN/Inf/negative cells,
/// out-of-order and duplicate timestamps, cadence drift, gaps (linear
/// interpolation keeps Eq. 1's "fraction of time points" denominator
/// honest), dead counters, and missing expected dimensions. kStrict
/// returns a typed Status (with row context) on the first defect; however
/// gates are never silent: every intervention lands in the report.
StatusOr<GatedTrace> GateTraceCsv(const CsvTable& table,
                                  const GateOptions& options);

/// Gate for traces that are already aligned (no timestamp column survives
/// inside a PerfTrace): cell-level defects, dead counters and missing
/// dimensions only. This is the layer DataPreprocessingModule runs on
/// every database trace handed to the pipeline.
StatusOr<GatedTrace> GateTrace(const telemetry::PerfTrace& trace,
                               const GateOptions& options);

/// Reads a trace CSV file through the gate (the CLI's ingestion path).
StatusOr<GatedTrace> ReadTraceFileGated(const std::string& path,
                                        const GateOptions& options);

/// Fills the degraded-mode fields of `report` from the dimensions present
/// after gating versus the expected profiling dimensions: the assessment
/// narrows the joint demand to what was collected and flags the reduced
/// confidence (confidence_penalty = missing / expected).
void AssessDegradedMode(const std::vector<catalog::ResourceDim>& present,
                        const std::vector<catalog::ResourceDim>& expected,
                        TraceQualityReport* report);

}  // namespace doppler::quality

#endif  // DOPPLER_QUALITY_QUALITY_GATE_H_
