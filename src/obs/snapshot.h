#ifndef DOPPLER_OBS_SNAPSHOT_H_
#define DOPPLER_OBS_SNAPSHOT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace doppler::obs {

/// Windowed view of one histogram: counts/sum are deltas over the window,
/// quantiles are interpolated from the window's bucket deltas (error bound:
/// one bucket width, see QuantileFromBuckets).
struct WindowedHistogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Fraction of the window's observations under the SLO threshold;
  /// -1 when no SLO is configured or the window saw no observations.
  double slo_fraction = -1.0;
};

/// One tick of the snapshot engine: everything that changed since the
/// previous tick, plus instantaneous gauge values. Serialised as one JSON
/// line (RenderJsonLine) and parseable back (ParseJsonLine) so `doppler
/// stats` can tail the file the serve process appends to.
struct WindowedSnapshot {
  std::uint64_t tick = 0;
  /// Wall-clock width of the window in seconds (time since previous tick).
  double window_seconds = 0.0;
  /// Counter increments over the window (clamped at 0 — a ResetAll between
  /// ticks reads as an empty window, not a negative one).
  std::map<std::string, std::uint64_t> counter_deltas;
  /// Instantaneous gauge values at tick time.
  std::map<std::string, double> gauges;
  std::map<std::string, WindowedHistogram> histograms;
};

struct SnapshotterOptions {
  /// SLO threshold in seconds for WindowedHistogram::slo_fraction;
  /// <= 0 disables the SLO column.
  double slo_seconds = 0.0;
  /// Prometheus text export path ("" = skip). Written atomically, whole
  /// file replaced each tick.
  std::string prom_path;
  /// JSON-lines history path ("" = skip). Written atomically each tick
  /// with the full retained history, newest line last.
  std::string jsonl_path;
  /// Ticks retained in memory (and in the jsonl file).
  std::size_t history_limit = 1024;
};

/// Diffs a MetricsRegistry between ticks into WindowedSnapshots: windowed
/// counter rates, instantaneous gauges, per-window histogram quantiles and
/// SLO fractions. Tick() is explicit (tests, CLI round boundaries);
/// Start(interval_ms) runs it on a background cadence until Stop(). File
/// exports are atomic (tmp+fsync+rename) so a concurrent `doppler stats`
/// never reads a torn file.
class MetricsSnapshotter {
 public:
  MetricsSnapshotter(MetricsRegistry* registry, SnapshotterOptions options);
  ~MetricsSnapshotter();
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Takes a snapshot now, diffing against the previous tick. Thread-safe
  /// (serialised with the background thread). Returns the new snapshot;
  /// export-file write failures are reported in the returned status of
  /// LastExportStatus(), not here — a full disk must not kill serving.
  WindowedSnapshot Tick();

  /// Starts the background cadence; no-op if already running.
  void Start(int interval_ms);
  /// Stops the background thread (joins it). Safe to call when stopped.
  void Stop();

  /// Retained snapshot history, oldest first.
  std::vector<WindowedSnapshot> History() const;

  /// Status of the most recent export-file write (OK before any export).
  Status LastExportStatus() const;

  /// One snapshot as a single JSON line (no trailing newline).
  static std::string RenderJsonLine(const WindowedSnapshot& snapshot);
  /// Prometheus text for one snapshot: windowed counters as
  /// `doppler_window_*` gauges plus instantaneous gauges and quantiles.
  static std::string RenderPrometheusText(const WindowedSnapshot& snapshot);
  /// Parses a RenderJsonLine() line back. INVALID_ARGUMENT on malformed
  /// input (the parser accepts exactly the subset JsonWriter emits).
  static Status ParseJsonLine(const std::string& line,
                              WindowedSnapshot* snapshot);
  /// Reads a whole snapshot history file (jsonl_path format), oldest first.
  static Status ReadJsonLines(const std::string& path,
                              std::vector<WindowedSnapshot>* snapshots);

 private:
  void RunLoop(int interval_ms);
  WindowedSnapshot Diff(const MetricsRegistry::RegistrySnapshot& prev,
                        const MetricsRegistry::RegistrySnapshot& cur,
                        double window_seconds) const;
  void Export();

  MetricsRegistry* const registry_;
  const SnapshotterOptions options_;
  mutable std::mutex mu_;
  MetricsRegistry::RegistrySnapshot prev_;
  bool has_prev_ = false;
  std::uint64_t next_tick_ = 1;
  std::chrono::steady_clock::time_point prev_time_;
  std::vector<WindowedSnapshot> history_;
  Status last_export_status_;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool running_ = false;
  std::thread worker_;
};

/// Renders the `doppler stats` text dashboard from a snapshot history:
/// RED table (rate per outcome over the latest window + lifetime totals),
/// latency quantiles with the SLO column, queue gauges, and the snapshot
/// epoch/swap history reconstructed from the serve.snapshot_epoch gauge.
std::string RenderStatsDashboard(const std::vector<WindowedSnapshot>& history);

}  // namespace doppler::obs

#endif  // DOPPLER_OBS_SNAPSHOT_H_
