#ifndef DOPPLER_OBS_TRACE_H_
#define DOPPLER_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace doppler::obs {

/// One completed span as recorded by a thread: a named interval on the
/// process-wide steady-clock timeline, with its nesting depth at record
/// time. Spans nest lexically (ScopedSpan is RAII), so a child's interval
/// always lies inside its parent's and its depth is parent + 1.
struct SpanRecord {
  std::string name;
  /// Nanoseconds since the tracer's process-start epoch.
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  /// Nesting depth on the recording thread (0 = top level).
  int depth = 0;
  /// Dense per-process thread id (assigned on a thread's first span).
  std::uint32_t thread_id = 0;
};

/// Turns span buffering on or off. Spans are *timed* regardless — their
/// durations always feed the `latency.<name>` histograms in
/// DefaultMetrics() — but records are appended to the per-thread trace
/// buffers only while tracing is enabled, so long-running processes pay no
/// memory growth unless a trace was requested.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Drops every buffered span (all threads). Depth counters are per-thread
/// live state and are not touched.
void ClearTraceBuffer();

/// All buffered spans across threads, sorted by start time (parents before
/// children on ties via descending duration).
std::vector<SpanRecord> SnapshotSpans();

/// Chrome trace_event JSON ("X" complete events) — load the file directly
/// in chrome://tracing or https://ui.perfetto.dev.
std::string RenderChromeTrace();

/// Renders and writes the Chrome trace to `path`.
Status WriteChromeTrace(const std::string& path);

/// RAII span: times the enclosing scope, observes the duration into the
/// `latency.<name>` histogram, and (when tracing is enabled) appends a
/// SpanRecord to the calling thread's buffer. `name` must outlive the
/// span; pass a string literal (the DOPPLER_TRACE_SPAN macro enforces the
/// idiom). Cost when tracing is disabled: two steady_clock reads and one
/// histogram lookup per scope — place at stage granularity, not inside
/// per-sample loops (use a cached Counter there instead).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_;
};

}  // namespace doppler::obs

#define DOPPLER_OBS_CONCAT_INNER(a, b) a##b
#define DOPPLER_OBS_CONCAT(a, b) DOPPLER_OBS_CONCAT_INNER(a, b)

/// Times the rest of the enclosing scope as a span named `name` (a string
/// literal in the dotted `stage.substage` scheme, e.g. "ppm.curve_build").
#define DOPPLER_TRACE_SPAN(name)         \
  ::doppler::obs::ScopedSpan DOPPLER_OBS_CONCAT(doppler_trace_span_, \
                                                __COUNTER__)(name)

#endif  // DOPPLER_OBS_TRACE_H_
