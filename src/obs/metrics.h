#ifndef DOPPLER_OBS_METRICS_H_
#define DOPPLER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace doppler {
class JsonWriter;
}

namespace doppler::obs {

/// Monotonically increasing event count. Increment is a single relaxed
/// atomic add, safe to place on hot paths (cache the pointer returned by
/// MetricsRegistry::GetCounter in a function-local static so the name
/// lookup happens once, not per event).
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue depths, config knobs, sizes). Set is a store;
/// Add is a compare-exchange loop (no C++20 atomic fetch_add dependence so
/// older libstdc++ builds stay lock-free too).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket upper bounds are set at registration and
/// never change, so Observe is a branch-free-ish scan plus two relaxed
/// atomic adds — no locks on the hot path. Bucket i counts observations
/// with value <= bounds[i]; one implicit overflow bucket (+Inf) follows.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an empty list leaves only the
  /// +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Number of buckets including the +Inf overflow bucket.
  std::size_t num_buckets() const { return buckets_.size(); }
  /// Per-bucket (non-cumulative) count; index num_buckets()-1 is +Inf.
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Interpolated quantile estimate over the live bucket counts (see
  /// QuantileFromBuckets for the estimation contract). 0 when empty.
  double Quantile(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  /// Sized once in the constructor; atomics make the vector immovable and
  /// non-copyable, which is fine — histograms live behind stable pointers
  /// owned by the registry.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Sanitises a dotted doppler metric name to a Prometheus exposition name
/// under the `doppler_` prefix: runs of characters outside [a-zA-Z0-9_]
/// collapse to one underscore, trailing separators drop. Exposed so the
/// windowed snapshotter renders the same names as RenderPrometheusText.
std::string PrometheusMetricName(const std::string& name);

/// Default latency bucket bounds in seconds: 1 µs to 10 s, roughly
/// 1-2.5-5 per decade — wide enough for a per-SKU probability scan and a
/// full fleet assessment on the same scale.
const std::vector<double>& LatencyBucketBounds();

/// Interpolated quantile estimate from fixed-bucket histogram data.
/// `buckets` holds per-bucket (non-cumulative) counts, one more entry than
/// `bounds` (the trailing +Inf overflow bucket); `count` is their sum.
/// The rank-q observation (rank = ceil(q * count), 1-based over the sorted
/// samples) is located in its bucket and linearly interpolated between the
/// bucket's edges, so the estimate is off from the exact sorted-sample
/// quantile by at most one bucket width (the documented error bound,
/// DESIGN.md §12). The +Inf bucket cannot be interpolated: ranks landing
/// there clamp to the last finite bound. Returns 0 when count == 0.
double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& buckets,
                           std::uint64_t count, double q);

/// Fraction of observations with value <= `threshold`, linearly
/// interpolating inside the bucket that straddles the threshold (the SLO
/// budget estimator: "what fraction of requests met --slo-ms"). Overflow
/// (+Inf) observations always count as over the threshold. Returns -1 when
/// count == 0 (no traffic — distinct from 0, every request over budget).
double FractionUnderThreshold(const std::vector<double>& bounds,
                              const std::vector<std::uint64_t>& buckets,
                              std::uint64_t count, double threshold);

/// Thread-safe name -> metric registry. Registration (first Get* for a
/// name) takes a mutex; the returned pointers are stable for the registry's
/// lifetime and all operations on them are lock-free atomics. Names use
/// the dotted `stage.substage` scheme ("ppm.skus_evaluated",
/// "latency.pipeline.preprocess").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the metric registered under `name`, creating it on first use.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Histogram with the default latency bounds.
  Histogram* GetHistogram(const std::string& name);
  /// Histogram with explicit bounds; the bounds are fixed by whichever call
  /// registers the name first.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Lookup without registration; nullptr when the name is unknown.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Zeroes every metric's value. Registered objects (and pointers to
  /// them) stay valid — this resets data, not registration.
  void ResetAll();

  /// Point-in-time plain-data copy of every registered metric, the input
  /// the windowed snapshotter (obs/snapshot.h) diffs between ticks.
  /// Individual values are relaxed atomic reads — the copy is not a
  /// cross-metric atomic cut, which windowed diffing tolerates (each
  /// metric's delta is still exact between two of ITS OWN reads).
  struct RegistrySnapshot {
    struct HistogramData {
      std::vector<double> bounds;
      /// Per-bucket (non-cumulative) counts; one more than bounds (+Inf).
      std::vector<std::uint64_t> buckets;
      std::uint64_t count = 0;
      double sum = 0.0;
    };
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;
  };
  RegistrySnapshot Snapshot() const;

  /// Prometheus text exposition: dotted names are sanitised to
  /// `doppler_stage_substage`, counters gain the `_total` suffix, histogram
  /// buckets render cumulatively with `le` labels.
  std::string RenderPrometheusText() const;

  /// Same data through the shared JSON writer:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  void WriteJson(JsonWriter* json) const;
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every DOPPLER_TRACE_SPAN and instrumentation
/// point records into. Never destroyed (leaked on purpose) so metrics from
/// static-destruction-order territory stay safe.
MetricsRegistry& DefaultMetrics();

/// Writes `content` of a rendered export to `path` (UNAVAILABLE on I/O
/// failure). Not atomic — a concurrent reader can observe a partial file;
/// exports that scrapers poll should use WriteTextFileAtomic instead.
Status WriteTextFile(const std::string& path, const std::string& content);

/// Atomically replaces `path` with `content`: writes a sibling temp file,
/// fsyncs it, then rename(2)s it over `path`, so a concurrent reader sees
/// either the previous complete file or the new complete file — never a
/// torn write. Shared by the CLI's --metrics-out/--trace-out exports, the
/// windowed snapshotter, and the flight-recorder journal dump.
Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content);

}  // namespace doppler::obs

#endif  // DOPPLER_OBS_METRICS_H_
