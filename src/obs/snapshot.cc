#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/json_writer.h"

namespace doppler::obs {

namespace {

/// Minimal recursive-descent JSON reader for the snapshotter's own output.
/// The repo's JsonWriter is write-only; this parser accepts the subset it
/// emits (objects, arrays, double-quoted strings with \"\\/bfnrt and
/// \uXXXX escapes, numbers via strtod, true/false/null) so `doppler stats`
/// can read the jsonl history without a third-party JSON dependency.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : input_(input) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == input_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= input_.size()) return false;
    switch (input_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->text);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return ParseLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return ParseLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (!Consume(*p)) return false;
    }
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = input_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) return false;
      const char escape = input_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return false;
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the code point (JsonWriter only emits \u for
          // control characters, but accept the full BMP for robustness).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      if (!ParseValue(&out->object[key])) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      out->array.emplace_back();
      if (!ParseValue(&out->array.back())) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->kind == JsonValue::Kind::kNumber
             ? value->number
             : fallback;
}

/// Seconds rendered for the dashboard: sub-second values in ms, larger in s.
std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  }
  return buffer;
}

std::string FormatRate(double per_second) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f/s", per_second);
  return buffer;
}

void AppendRow(std::string* out, const std::string& c0, const std::string& c1,
               const std::string& c2, const std::string& c3,
               const std::string& c4 = "") {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer), "  %-32s %10s %10s %10s %10s\n",
                c0.c_str(), c1.c_str(), c2.c_str(), c3.c_str(), c4.c_str());
  *out += buffer;
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(MetricsRegistry* registry,
                                       SnapshotterOptions options)
    : registry_(registry),
      options_(std::move(options)),
      prev_time_(std::chrono::steady_clock::now()) {}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

WindowedSnapshot MetricsSnapshotter::Diff(
    const MetricsRegistry::RegistrySnapshot& prev,
    const MetricsRegistry::RegistrySnapshot& cur,
    double window_seconds) const {
  WindowedSnapshot out;
  out.window_seconds = window_seconds;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    out.counter_deltas[name] = value >= before ? value - before : 0;
  }
  out.gauges = cur.gauges;
  for (const auto& [name, data] : cur.histograms) {
    const auto it = prev.histograms.find(name);
    std::vector<std::uint64_t> deltas(data.buckets.size(), 0);
    double sum_before = 0.0;
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      std::uint64_t before = 0;
      if (it != prev.histograms.end() && i < it->second.buckets.size()) {
        before = it->second.buckets[i];
      }
      deltas[i] = data.buckets[i] >= before ? data.buckets[i] - before : 0;
    }
    if (it != prev.histograms.end()) sum_before = it->second.sum;
    WindowedHistogram windowed;
    // Count from the bucket deltas (not the counter delta) keeps the
    // quantile internally consistent with the buckets it reads.
    for (const std::uint64_t d : deltas) windowed.count += d;
    windowed.sum = data.sum >= sum_before ? data.sum - sum_before : 0.0;
    windowed.p50 = QuantileFromBuckets(data.bounds, deltas, windowed.count, 0.50);
    windowed.p95 = QuantileFromBuckets(data.bounds, deltas, windowed.count, 0.95);
    windowed.p99 = QuantileFromBuckets(data.bounds, deltas, windowed.count, 0.99);
    if (options_.slo_seconds > 0.0) {
      windowed.slo_fraction = FractionUnderThreshold(
          data.bounds, deltas, windowed.count, options_.slo_seconds);
    }
    out.histograms[name] = windowed;
  }
  return out;
}

void MetricsSnapshotter::Export() {
  // Called under mu_. Export failures are recorded, never fatal: losing a
  // stats file must not take down serving.
  if (!options_.prom_path.empty() && !history_.empty()) {
    const Status status = WriteTextFileAtomic(
        options_.prom_path, RenderPrometheusText(history_.back()));
    if (!status.ok()) {
      last_export_status_ = status;
      return;
    }
  }
  if (!options_.jsonl_path.empty()) {
    std::string lines;
    for (const WindowedSnapshot& snapshot : history_) {
      lines += RenderJsonLine(snapshot);
      lines += '\n';
    }
    const Status status = WriteTextFileAtomic(options_.jsonl_path, lines);
    if (!status.ok()) {
      last_export_status_ = status;
      return;
    }
  }
  last_export_status_ = OkStatus();
}

WindowedSnapshot MetricsSnapshotter::Tick() {
  const MetricsRegistry::RegistrySnapshot cur = registry_->Snapshot();
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  const double window =
      has_prev_
          ? std::chrono::duration<double>(now - prev_time_).count()
          : 0.0;
  WindowedSnapshot snapshot = Diff(prev_, cur, window);
  snapshot.tick = next_tick_++;
  prev_ = cur;
  prev_time_ = now;
  has_prev_ = true;
  history_.push_back(snapshot);
  if (history_.size() > options_.history_limit) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() -
                                                   options_.history_limit));
  }
  Export();
  return snapshot;
}

void MetricsSnapshotter::Start(int interval_ms) {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  running_ = true;
  worker_ = std::thread([this, interval_ms] { RunLoop(interval_ms); });
}

void MetricsSnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    running_ = false;
  }
  run_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void MetricsSnapshotter::RunLoop(int interval_ms) {
  const auto interval = std::chrono::milliseconds(interval_ms > 0 ? interval_ms
                                                                  : 1000);
  std::unique_lock<std::mutex> lock(run_mu_);
  while (running_) {
    if (run_cv_.wait_for(lock, interval, [this] { return !running_; })) {
      break;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

std::vector<WindowedSnapshot> MetricsSnapshotter::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

Status MetricsSnapshotter::LastExportStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_export_status_;
}

std::string MetricsSnapshotter::RenderJsonLine(
    const WindowedSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("tick").Int(static_cast<long long>(snapshot.tick));
  json.Key("window_seconds").Number(snapshot.window_seconds);
  json.Key("counters").BeginObject();
  for (const auto& [name, delta] : snapshot.counter_deltas) {
    json.Key(name).Int(static_cast<long long>(delta));
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    json.Key(name).BeginObject();
    json.Key("count").Int(static_cast<long long>(h.count));
    json.Key("sum").Number(h.sum);
    json.Key("p50").Number(h.p50);
    json.Key("p95").Number(h.p95);
    json.Key("p99").Number(h.p99);
    json.Key("slo_fraction").Number(h.slo_fraction);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string MetricsSnapshotter::RenderPrometheusText(
    const WindowedSnapshot& snapshot) {
  std::string out;
  const auto gauge_line = [&out](const std::string& prom, double value) {
    out += "# TYPE " + prom + " gauge\n";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out += prom + " " + buffer + "\n";
  };
  gauge_line("doppler_stats_tick", static_cast<double>(snapshot.tick));
  gauge_line("doppler_stats_window_seconds", snapshot.window_seconds);
  for (const auto& [name, delta] : snapshot.counter_deltas) {
    const std::string prom = PrometheusMetricName("window." + name);
    gauge_line(prom, static_cast<double>(delta));
    if (snapshot.window_seconds > 0.0) {
      gauge_line(prom + "_per_second",
                 static_cast<double>(delta) / snapshot.window_seconds);
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    gauge_line(PrometheusMetricName(name), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusMetricName("window." + name);
    gauge_line(prom + "_count", static_cast<double>(h.count));
    gauge_line(prom + "_sum", h.sum);
    gauge_line(prom + "_p50", h.p50);
    gauge_line(prom + "_p95", h.p95);
    gauge_line(prom + "_p99", h.p99);
    if (h.slo_fraction >= 0.0) {
      gauge_line(prom + "_slo_fraction", h.slo_fraction);
    }
  }
  return out;
}

Status MetricsSnapshotter::ParseJsonLine(const std::string& line,
                                         WindowedSnapshot* snapshot) {
  JsonValue root;
  JsonParser parser(line);
  if (!parser.Parse(&root) || root.kind != JsonValue::Kind::kObject) {
    return InvalidArgumentError("malformed snapshot line");
  }
  *snapshot = WindowedSnapshot();
  snapshot->tick =
      static_cast<std::uint64_t>(NumberOr(root.Find("tick"), 0.0));
  snapshot->window_seconds = NumberOr(root.Find("window_seconds"), 0.0);
  if (const JsonValue* counters = root.Find("counters");
      counters != nullptr && counters->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : counters->object) {
      snapshot->counter_deltas[name] =
          static_cast<std::uint64_t>(NumberOr(&value, 0.0));
    }
  }
  if (const JsonValue* gauges = root.Find("gauges");
      gauges != nullptr && gauges->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : gauges->object) {
      snapshot->gauges[name] = NumberOr(&value, 0.0);
    }
  }
  if (const JsonValue* histograms = root.Find("histograms");
      histograms != nullptr && histograms->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : histograms->object) {
      if (value.kind != JsonValue::Kind::kObject) continue;
      WindowedHistogram h;
      h.count = static_cast<std::uint64_t>(NumberOr(value.Find("count"), 0.0));
      h.sum = NumberOr(value.Find("sum"), 0.0);
      h.p50 = NumberOr(value.Find("p50"), 0.0);
      h.p95 = NumberOr(value.Find("p95"), 0.0);
      h.p99 = NumberOr(value.Find("p99"), 0.0);
      h.slo_fraction = NumberOr(value.Find("slo_fraction"), -1.0);
      snapshot->histograms[name] = h;
    }
  }
  return OkStatus();
}

Status MetricsSnapshotter::ReadJsonLines(
    const std::string& path, std::vector<WindowedSnapshot>* snapshots) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return UnavailableError("cannot open '" + path + "' for reading");
  }
  snapshots->clear();
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    WindowedSnapshot snapshot;
    const Status status = ParseJsonLine(line, &snapshot);
    if (!status.ok()) {
      return InvalidArgumentError("'" + path + "' line " +
                                  std::to_string(line_number) + ": " +
                                  status.message());
    }
    snapshots->push_back(std::move(snapshot));
  }
  return OkStatus();
}

std::string RenderStatsDashboard(
    const std::vector<WindowedSnapshot>& history) {
  if (history.empty()) {
    return "doppler stats: no snapshots yet\n";
  }
  const WindowedSnapshot& latest = history.back();
  std::string out;
  {
    char header[160];
    std::snprintf(header, sizeof(header),
                  "doppler stats — %zu snapshot(s), tick %llu, window %.3fs\n",
                  history.size(),
                  static_cast<unsigned long long>(latest.tick),
                  latest.window_seconds);
    out += header;
  }

  // Lifetime totals = sum of windowed deltas over the retained history
  // (equals the cumulative counters when the history covers the process
  // lifetime, which serve guarantees with its startup tick).
  std::map<std::string, std::uint64_t> totals;
  for (const WindowedSnapshot& snapshot : history) {
    for (const auto& [name, delta] : snapshot.counter_deltas) {
      totals[name] += delta;
    }
  }

  out += "\nREQUESTS (latest window | lifetime)\n";
  AppendRow(&out, "outcome", "rate", "window", "total");
  static const char* const kOutcomes[] = {
      "serve.submitted", "serve.admitted",        "serve.completed",
      "serve.shed",      "serve.expired",         "serve.failed",
      "serve.ingest_failed", "serve.confidence_shed",
  };
  for (const char* name : kOutcomes) {
    const auto total_it = totals.find(name);
    if (total_it == totals.end()) continue;
    const auto delta_it = latest.counter_deltas.find(name);
    const std::uint64_t delta =
        delta_it == latest.counter_deltas.end() ? 0 : delta_it->second;
    const double rate = latest.window_seconds > 0.0
                            ? static_cast<double>(delta) /
                                  latest.window_seconds
                            : 0.0;
    // Strip the "serve." prefix for the row label.
    AppendRow(&out, std::string(name).substr(6), FormatRate(rate),
              std::to_string(delta), std::to_string(total_it->second));
  }

  if (!latest.histograms.empty()) {
    out += "\nLATENCY (latest window)\n";
    AppendRow(&out, "histogram", "count", "p50", "p95", "p99");
    for (const auto& [name, h] : latest.histograms) {
      AppendRow(&out, name, std::to_string(h.count), FormatSeconds(h.p50),
                FormatSeconds(h.p95), FormatSeconds(h.p99));
      if (h.slo_fraction >= 0.0) {
        char slo[96];
        std::snprintf(slo, sizeof(slo), "%26s %.1f%% within SLO\n", "",
                      h.slo_fraction * 100.0);
        out += slo;
      }
    }
  }

  if (!latest.gauges.empty()) {
    out += "\nGAUGES\n";
    for (const auto& [name, value] : latest.gauges) {
      if (name == "serve.snapshot_epoch") continue;  // epoch section below
      char row[128];
      std::snprintf(row, sizeof(row), "  %-32s %10.17g\n", name.c_str(),
                    value);
      out += row;
    }
  }

  // Epoch history: reconstruct catalog snapshot swaps from the
  // serve.snapshot_epoch gauge trail across retained ticks.
  bool have_epoch = false;
  double last_epoch = 0.0;
  std::string epochs;
  int swaps = -1;
  for (const WindowedSnapshot& snapshot : history) {
    const auto it = snapshot.gauges.find("serve.snapshot_epoch");
    if (it == snapshot.gauges.end()) continue;
    if (!have_epoch || it->second != last_epoch) {
      char row[96];
      std::snprintf(row, sizeof(row), "  epoch %.0f since tick %llu\n",
                    it->second,
                    static_cast<unsigned long long>(snapshot.tick));
      epochs += row;
      last_epoch = it->second;
      have_epoch = true;
      ++swaps;
    }
  }
  if (have_epoch) {
    out += "\nCATALOG EPOCHS (swaps observed: " +
           std::to_string(swaps < 0 ? 0 : swaps) + ")\n";
    out += epochs;
  }
  return out;
}

}  // namespace doppler::obs
