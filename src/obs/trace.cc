#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace doppler::obs {

namespace {

/// Hard cap per thread so a forgotten --trace-out on a long-running fleet
/// service cannot grow without bound; overflow is counted, not silent.
constexpr std::size_t kMaxSpansPerThread = 1 << 20;

/// Span state owned by one recording thread. The buffer mutex serialises
/// the owner's appends against snapshot/clear from an exporting thread;
/// `depth` is touched only by the owner and needs no lock.
struct ThreadState {
  std::mutex mu;
  std::vector<SpanRecord> spans;
  std::uint32_t tid = 0;
  int depth = 0;
};

struct Tracer {
  std::mutex mu;  ///< Guards the thread registry, not the buffers.
  std::vector<ThreadState*> threads;
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> next_tid{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Tracer& GlobalTracer() {
  // Leaked on purpose: spans may be recorded during static destruction.
  static Tracer* const kTracer = new Tracer();
  return *kTracer;
}

ThreadState* LocalState() {
  // Thread states are leaked as well: a SpanRecord snapshot must stay
  // readable after the recording thread exits.
  thread_local ThreadState* const state = [] {
    auto* s = new ThreadState();
    Tracer& tracer = GlobalTracer();
    std::lock_guard<std::mutex> lock(tracer.mu);
    s->tid = tracer.next_tid.fetch_add(1, std::memory_order_relaxed);
    tracer.threads.push_back(s);
    return s;
  }();
  return state;
}

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - GlobalTracer().epoch)
      .count();
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  GlobalTracer().enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return GlobalTracer().enabled.load(std::memory_order_relaxed);
}

void ClearTraceBuffer() {
  Tracer& tracer = GlobalTracer();
  std::lock_guard<std::mutex> registry_lock(tracer.mu);
  for (ThreadState* state : tracer.threads) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->spans.clear();
  }
}

std::vector<SpanRecord> SnapshotSpans() {
  Tracer& tracer = GlobalTracer();
  std::vector<SpanRecord> all;
  {
    std::lock_guard<std::mutex> registry_lock(tracer.mu);
    for (ThreadState* state : tracer.threads) {
      std::lock_guard<std::mutex> lock(state->mu);
      all.insert(all.end(), state->spans.begin(), state->spans.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.duration_ns > b.duration_ns;  // Parents first.
            });
  return all;
}

std::string RenderChromeTrace() {
  const std::vector<SpanRecord> spans = SnapshotSpans();
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit").String("ms");
  json.Key("traceEvents").BeginArray();
  for (const SpanRecord& span : spans) {
    json.BeginObject();
    json.Key("name").String(span.name);
    json.Key("cat").String("doppler");
    json.Key("ph").String("X");
    json.Key("ts").Number(static_cast<double>(span.start_ns) / 1000.0);
    json.Key("dur").Number(static_cast<double>(span.duration_ns) / 1000.0);
    json.Key("pid").Int(1);
    json.Key("tid").Int(static_cast<long long>(span.thread_id));
    json.Key("args").BeginObject().Key("depth").Int(span.depth).EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WriteChromeTrace(const std::string& path) {
  return WriteTextFileAtomic(path, RenderChromeTrace());
}

ScopedSpan::ScopedSpan(const char* name) : name_(name), start_ns_(NowNs()) {
  ++LocalState()->depth;
}

ScopedSpan::~ScopedSpan() {
  const std::int64_t end_ns = NowNs();
  const std::int64_t duration_ns = end_ns - start_ns_;
  ThreadState* state = LocalState();
  const int depth = --state->depth;
  DefaultMetrics()
      .GetHistogram(std::string("latency.") + name_)
      ->Observe(static_cast<double>(duration_ns) / 1e9);
  if (!TracingEnabled()) return;
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->spans.size() >= kMaxSpansPerThread) {
    static Counter* const kDropped =
        DefaultMetrics().GetCounter("obs.spans_dropped");
    kDropped->Increment();
    return;
  }
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = duration_ns;
  record.depth = depth;
  record.thread_id = state->tid;
  state->spans.push_back(std::move(record));
}

}  // namespace doppler::obs
