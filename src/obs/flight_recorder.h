#ifndef DOPPLER_OBS_FLIGHT_RECORDER_H_
#define DOPPLER_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace doppler::obs {

/// Why a request reached its terminal state. Mirrors the serving layer's
/// accounting identity (submitted = admitted + shed; admitted = completed +
/// expired + failed) plus kIngestFailed for requests that never produced an
/// assessable payload (spool CSV parse/read errors).
enum class FlightCause {
  kCompleted = 0,
  kShed = 1,
  kExpired = 2,
  kFailed = 3,
  kIngestFailed = 4,
};

const char* FlightCauseName(FlightCause cause);

/// Per-stage wall time as recorded by the pipeline's TimingSink. The obs
/// layer sits below dma, so this is a plain mirror of dma::StageTiming
/// (stage name already resolved to text) rather than a dependency on it.
struct FlightStageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// One terminal per-request record: everything an operator needs to answer
/// "what happened to request X" after the fact, and one labelled outcome
/// row for a future learned recommender (ROADMAP item 4).
struct FlightRecord {
  /// Global admission-order sequence number, assigned by Record().
  std::uint64_t sequence = 0;
  std::string request_id;
  /// Catalog snapshot epoch the request was pinned to (0 = none pinned).
  std::uint64_t snapshot_epoch = 0;
  StatusCode status = StatusCode::kOk;
  std::string status_message;
  FlightCause cause = FlightCause::kCompleted;
  /// True when sustained pressure shed the confidence stage pre-admission.
  bool confidence_shed = false;
  /// Admission-queue wait: submit to worker pickup. 0 for shed requests
  /// (they never waited) and ingest failures (never enqueued).
  double queue_wait_seconds = 0.0;
  /// End-to-end service time (pickup to terminal state).
  double total_seconds = 0.0;
  std::vector<FlightStageTiming> stage_timings;
};

struct FlightRecorderOptions {
  /// Ring capacity for healthy (kCompleted, no error) traffic.
  std::size_t capacity = 4096;
  /// Separate retention for anomalies (any non-kCompleted cause or non-OK
  /// status) so they are never rotated out by healthy traffic.
  std::size_t anomaly_capacity = 1024;
  /// Slowest healthy requests retained even after rotating out of the main
  /// ring (tail-latency forensics).
  std::size_t slow_capacity = 256;
};

/// Fixed-capacity, thread-safe journal of terminal request records with
/// tail-based retention (DESIGN.md §12): healthy traffic rotates through a
/// bounded ring, while (a) every anomaly and (b) the slowest healthy
/// requests survive arbitrarily many rotations, up to their own caps.
/// Record() is mutex-guarded and O(log slow_capacity) — measured by
/// BM_FlightRecorderOverhead; per-cause totals are unaffected by rotation.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends a terminal record and returns its assigned sequence number.
  std::uint64_t Record(FlightRecord record);

  /// All retained records, sorted by sequence (ascending, deduplicated).
  std::vector<FlightRecord> Snapshot() const;

  /// Lifetime totals per cause — counts every Record() call ever made,
  /// regardless of whether the record is still retained.
  std::map<FlightCause, std::uint64_t> CauseTotals() const;
  std::uint64_t TotalRecorded() const;

  /// Retained records as JSON lines (one object per record, sequence
  /// order), the `serve --journal-out` format that obs/snapshot.cc's
  /// `doppler stats` helpers can read back.
  std::string RenderJsonLines() const;

  /// Atomically writes RenderJsonLines() to `path` (tmp+fsync+rename).
  Status DumpJsonLines(const std::string& path) const;

  const FlightRecorderOptions& options() const { return options_; }

 private:
  bool IsAnomaly(const FlightRecord& record) const;
  /// Offers a rotated-out healthy record to the slowest-retained set.
  void OfferSlow(FlightRecord record);

  const FlightRecorderOptions options_;
  mutable std::mutex mu_;
  std::uint64_t next_sequence_ = 1;
  /// Healthy-traffic ring: evictions from the front are offered to slow_.
  std::deque<FlightRecord> normal_;
  /// Anomalies (shed/expired/failed/ingest-failed or non-OK status).
  std::deque<FlightRecord> anomalies_;
  /// Slowest rotated-out healthy records, kept sorted by total_seconds
  /// ascending so the fastest is cheap to evict.
  std::vector<FlightRecord> slow_;
  std::map<FlightCause, std::uint64_t> cause_totals_;
};

}  // namespace doppler::obs

#endif  // DOPPLER_OBS_FLIGHT_RECORDER_H_
