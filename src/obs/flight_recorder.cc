#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace doppler::obs {

namespace {

Counter* RecordedCounter() {
  static Counter* const kCounter =
      DefaultMetrics().GetCounter("obs.flight.recorded");
  return kCounter;
}

void WriteRecordJson(const FlightRecord& record, JsonWriter* json) {
  json->BeginObject();
  json->Key("seq").Int(static_cast<long long>(record.sequence));
  json->Key("request_id").String(record.request_id);
  json->Key("epoch").Int(static_cast<long long>(record.snapshot_epoch));
  json->Key("status").String(StatusCodeToString(record.status));
  if (!record.status_message.empty()) {
    json->Key("message").String(record.status_message);
  }
  json->Key("cause").String(FlightCauseName(record.cause));
  json->Key("confidence_shed").Bool(record.confidence_shed);
  json->Key("queue_wait_seconds").Number(record.queue_wait_seconds);
  json->Key("total_seconds").Number(record.total_seconds);
  json->Key("stages").BeginArray();
  for (const FlightStageTiming& timing : record.stage_timings) {
    json->BeginObject();
    json->Key("stage").String(timing.stage);
    json->Key("seconds").Number(timing.seconds);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

const char* FlightCauseName(FlightCause cause) {
  switch (cause) {
    case FlightCause::kCompleted:
      return "completed";
    case FlightCause::kShed:
      return "shed";
    case FlightCause::kExpired:
      return "expired";
    case FlightCause::kFailed:
      return "failed";
    case FlightCause::kIngestFailed:
      return "ingest_failed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options) {}

bool FlightRecorder::IsAnomaly(const FlightRecord& record) const {
  return record.cause != FlightCause::kCompleted ||
         record.status != StatusCode::kOk;
}

void FlightRecorder::OfferSlow(FlightRecord record) {
  if (options_.slow_capacity == 0) return;
  // slow_ is sorted by total_seconds ascending; the fastest retained
  // record sits at the front and is the one a faster newcomer displaces.
  const auto pos = std::lower_bound(
      slow_.begin(), slow_.end(), record,
      [](const FlightRecord& a, const FlightRecord& b) {
        return a.total_seconds < b.total_seconds;
      });
  if (slow_.size() >= options_.slow_capacity) {
    if (pos == slow_.begin()) return;  // faster than everything retained
    slow_.insert(pos, std::move(record));
    slow_.erase(slow_.begin());
  } else {
    slow_.insert(pos, std::move(record));
  }
}

std::uint64_t FlightRecorder::Record(FlightRecord record) {
  RecordedCounter()->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  const std::uint64_t sequence = record.sequence;
  cause_totals_[record.cause] += 1;
  if (IsAnomaly(record)) {
    anomalies_.push_back(std::move(record));
    if (anomalies_.size() > options_.anomaly_capacity) {
      anomalies_.pop_front();
    }
    return sequence;
  }
  normal_.push_back(std::move(record));
  if (normal_.size() > options_.capacity) {
    OfferSlow(std::move(normal_.front()));
    normal_.pop_front();
  }
  return sequence;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(normal_.size() + anomalies_.size() + slow_.size());
  out.insert(out.end(), normal_.begin(), normal_.end());
  out.insert(out.end(), anomalies_.begin(), anomalies_.end());
  out.insert(out.end(), slow_.begin(), slow_.end());
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

std::map<FlightCause, std::uint64_t> FlightRecorder::CauseTotals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cause_totals_;
}

std::uint64_t FlightRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_ - 1;
}

std::string FlightRecorder::RenderJsonLines() const {
  const std::vector<FlightRecord> records = Snapshot();
  std::string out;
  for (const FlightRecord& record : records) {
    JsonWriter json;
    WriteRecordJson(record, &json);
    out += json.str();
    out += '\n';
  }
  return out;
}

Status FlightRecorder::DumpJsonLines(const std::string& path) const {
  return WriteTextFileAtomic(path, RenderJsonLines());
}

}  // namespace doppler::obs
