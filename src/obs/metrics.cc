#include "obs/metrics.h"

#include <cstdio>
#include <fstream>

#include "util/json_writer.h"

namespace doppler::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; dotted doppler names map to
/// underscores under a common prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "doppler_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Shortest round-trippable formatting for bucket bounds and values.
std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // %.17g is exact but ugly; prefer the shortest form that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buffer;
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketBounds() {
  static const std::vector<double>* const kBounds = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6,   1e-5,   2.5e-5, 5e-5,   1e-4,  2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3,   1e-2,   2.5e-2, 5e-2,  1e-1,
      2.5e-1, 5e-1,   1.0,    2.5,    5.0,    10.0};
  return *kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, LatencyBucketBounds());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
      cumulative += histogram->BucketCount(i);
      const std::string le = i < histogram->bounds().size()
                                 ? FormatNumber(histogram->bounds()[i])
                                 : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + FormatNumber(histogram->Sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->Count()) + "\n";
  }
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json->Key(name).Int(static_cast<long long>(counter->Value()));
  }
  json->EndObject();
  json->Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json->Key(name).Number(gauge->Value());
  }
  json->EndObject();
  json->Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json->Key(name).BeginObject();
    json->Key("count").Int(static_cast<long long>(histogram->Count()));
    json->Key("sum").Number(histogram->Sum());
    json->Key("buckets").BeginArray();
    for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
      json->BeginObject();
      if (i < histogram->bounds().size()) {
        json->Key("le").Number(histogram->bounds()[i]);
      } else {
        json->Key("le").String("+Inf");
      }
      json->Key("count").Int(static_cast<long long>(histogram->BucketCount(i)));
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

std::string MetricsRegistry::RenderJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.str();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return UnavailableError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return UnavailableError("write to '" + path + "' failed");
  }
  return OkStatus();
}

}  // namespace doppler::obs
