#include "obs/metrics.h"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/json_writer.h"

namespace doppler::obs {

namespace {

/// Shortest round-trippable formatting for bucket bounds and values.
/// Non-finite values use the exposition-format spellings ("+Inf", "-Inf",
/// "NaN") — printf's "inf"/"nan" do not round-trip through Prometheus
/// parsers.
std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // %.17g is exact but ugly; prefer the shortest form that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[64];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == value) return candidate;
  }
  return buffer;
}

}  // namespace

/// Prometheus metric names allow [a-zA-Z0-9_:] and must not start with a
/// digit; dotted doppler names map to underscores under a common prefix.
/// Runs of invalid characters (dashes, dots, spaces) collapse into ONE
/// underscore and a trailing separator is dropped, so names carrying
/// digits or dashes ("serve.queue_depth", "latency.stage-1.p99",
/// "window.5m") sanitise to parser-clean names without `__` runs or
/// dangling underscores that some exposition parsers reject.
std::string PrometheusMetricName(const std::string& name) {
  std::string out = "doppler_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (ok) {
      out.push_back(c);
    } else if (out.back() != '_') {
      out.push_back('_');
    }
  }
  while (out.size() > 1 && out.back() == '_') out.pop_back();
  return out;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  std::vector<std::uint64_t> buckets(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets[i] = BucketCount(i);
  return QuantileFromBuckets(bounds_, buckets,
                             count_.load(std::memory_order_relaxed), q);
}

const std::vector<double>& LatencyBucketBounds() {
  static const std::vector<double>* const kBounds = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6,   1e-5,   2.5e-5, 5e-5,   1e-4,  2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3,   1e-2,   2.5e-2, 5e-2,  1e-1,
      2.5e-1, 5e-1,   1.0,    2.5,    5.0,    10.0};
  return *kBounds;
}

double QuantileFromBuckets(const std::vector<double>& bounds,
                           const std::vector<std::uint64_t>& buckets,
                           std::uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based rank of the target observation over the sorted samples.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += buckets[i];
    if (rank > cumulative) continue;
    if (i >= bounds.size()) {
      // Rank falls in the +Inf overflow bucket: no finite upper edge to
      // interpolate toward, so clamp to the last finite bound (or 0 when
      // the histogram has no finite buckets at all).
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double within = static_cast<double>(rank - prev) /
                          static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double FractionUnderThreshold(const std::vector<double>& bounds,
                              const std::vector<std::uint64_t>& buckets,
                              std::uint64_t count, double threshold) {
  if (count == 0 || buckets.empty()) return -1.0;
  double under = 0.0;
  for (std::size_t i = 0; i < buckets.size() && i < bounds.size() + 1; ++i) {
    if (buckets[i] == 0) continue;
    if (i >= bounds.size()) break;  // +Inf bucket: always over.
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    if (upper <= threshold) {
      under += static_cast<double>(buckets[i]);
    } else if (lower < threshold) {
      // Bucket straddles the threshold: assume uniform spread inside it.
      const double fraction = (threshold - lower) / (upper - lower);
      under += static_cast<double>(buckets[i]) * fraction;
    }
  }
  return under / static_cast<double>(count);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, LatencyBucketBounds());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    RegistrySnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.buckets.resize(histogram->num_buckets());
    for (std::size_t i = 0; i < data.buckets.size(); ++i) {
      data.buckets[i] = histogram->BucketCount(i);
    }
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusMetricName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
      cumulative += histogram->BucketCount(i);
      const std::string le = i < histogram->bounds().size()
                                 ? FormatNumber(histogram->bounds()[i])
                                 : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_sum " + FormatNumber(histogram->Sum()) + "\n";
    out += prom + "_count " + std::to_string(histogram->Count()) + "\n";
    // Interpolated quantile estimates as companion gauges: native-histogram
    // quantiles need a server-side query engine, so pre-compute the three
    // dashboards actually watch.
    for (const double q : {0.50, 0.95, 0.99}) {
      const std::string qprom =
          prom + "_p" + std::to_string(static_cast<int>(q * 100));
      out += "# TYPE " + qprom + " gauge\n";
      out += qprom + " " + FormatNumber(histogram->Quantile(q)) + "\n";
    }
  }
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json->Key(name).Int(static_cast<long long>(counter->Value()));
  }
  json->EndObject();
  json->Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json->Key(name).Number(gauge->Value());
  }
  json->EndObject();
  json->Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json->Key(name).BeginObject();
    json->Key("count").Int(static_cast<long long>(histogram->Count()));
    json->Key("sum").Number(histogram->Sum());
    json->Key("p50").Number(histogram->Quantile(0.50));
    json->Key("p95").Number(histogram->Quantile(0.95));
    json->Key("p99").Number(histogram->Quantile(0.99));
    json->Key("buckets").BeginArray();
    for (std::size_t i = 0; i < histogram->num_buckets(); ++i) {
      json->BeginObject();
      if (i < histogram->bounds().size()) {
        json->Key("le").Number(histogram->bounds()[i]);
      } else {
        json->Key("le").String("+Inf");
      }
      json->Key("count").Int(static_cast<long long>(histogram->BucketCount(i)));
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

std::string MetricsRegistry::RenderJson() const {
  JsonWriter json;
  WriteJson(&json);
  return json.str();
}

MetricsRegistry& DefaultMetrics() {
  static MetricsRegistry* const kRegistry = new MetricsRegistry();
  return *kRegistry;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return UnavailableError("cannot open '" + path + "' for writing");
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return UnavailableError("write to '" + path + "' failed");
  }
  return OkStatus();
}

Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content) {
  // Unique sibling name so concurrent writers to the same target (or a
  // crashed predecessor's leftover) never collide; rename(2) within the
  // same directory is the atomic publication step.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
      "." + std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return UnavailableError("cannot open '" + tmp + "' for writing");
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return UnavailableError("write to '" + tmp + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return UnavailableError("flush of '" + tmp + "' failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return UnavailableError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return OkStatus();
}

}  // namespace doppler::obs
