#include "dma/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "catalog/catalog.h"
#include "core/drift.h"
#include "core/forecast.h"
#include "dma/multi_target.h"
#include "dma/pipeline.h"
#include "exec/fleet_assessor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "dma/preprocess.h"
#include "dma/resource_report.h"
#include "dma/static_inputs.h"
#include "quality/quality_gate.h"
#include "serve/assessment_service.h"
#include "serve/snapshot_registry.h"
#include "serve/spool.h"
#include "stream/monitor.h"
#include "util/json_writer.h"
#include "tco/tco.h"
#include "telemetry/trace_io.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/benchmark_mix.h"
#include "workload/population.h"

namespace doppler::dma {

namespace {

constexpr char kUsage[] = R"(doppler <command> [--flag value ...]

Commands:
  help                                    this text
  catalog   [--extended] [--out F]        dump the generated SKU catalog
  fit-profiles --deployment db|mi [--customers N] [--seed S] [--out F]
  assess    --trace F [--target db|mi] [--catalog F] [--profiles F]
            [--layout F] [--current-sku ID] [--confidence] [--json]
            [--quality strict|repair|permissive]
            [--targets id,id]   cross-target comparison instead (see below)
  targets                                 list the deployment-target registry
  assess-batch --traces DIR [--jobs N] [--target db|mi] [--catalog F]
            [--profiles F] [--quality strict|repair|permissive] [--json]
            [--timings] [--out F]
  serve     --spool DIR [--jobs N] [--queue-depth N] [--deadline-ms N]
            [--target db|mi] [--targets id,id] [--catalog F] [--profiles F]
            [--confidence]
            [--quality strict|repair|permissive] [--json] [--out F]
            [--watch-catalog F] [--rounds N] [--poll-ms N]
            [--journal-out F] [--stats-interval-ms N] [--stats-out F]
            [--slo-ms N]
  monitor   --spool DIR [--target db|mi] [--catalog F] [--profiles F]
            [--rounds N] [--poll-ms N] [--window-rows N] [--sketch-budget N]
            [--min-assess-rows N] [--drift-tolerance X] [--current-sku ID]
            [--quality strict|repair|permissive] [--json] [--out F]
  stats     [--snapshots F] [--last N]       render the serve stats file
  forecast  --trace F [--current-sku ID] [--months N]
  drift     --trace F --current-sku ID [--recent-fraction X]
  tco       --trace F
  synth     --trace F

Global flags (any command; --flag=value and --flag value both work):
  --log-level debug|info|warning|error   stderr verbosity (default info)
  --log-json                             one JSON object per log line
  --metrics-out F    write the metrics registry after the command
                     (Prometheus text; .json extension switches to JSON)
  --trace-out F      record spans and write a Chrome trace_event JSON —
                     open in chrome://tracing or https://ui.perfetto.dev

Traces are CSV files with a t_seconds column plus cpu/memory/iops/
log_rate/io_latency/storage/workers columns (any subset).

--quality selects how assess treats dirty telemetry: strict rejects the
first defect, repair (default) fixes and records every intervention,
permissive records without repairing.

assess --targets compares registered deployment targets instead of
assessing one catalog: each id (see `doppler targets`) is compiled into
its own snapshot, recommended against, and costed under every pricing
model the target offers (pay-go, reserved, serverless autoscale — the
serverless row simulates a lagging autoscaler and evaluates throttling
against the provisioned-capacity series, not the scale ceiling). serve
--targets additionally compiles one snapshot per id under the same epoch
swap, so every target serves from one catalog generation.

assess-batch assesses every *.csv under --traces (sorted by name; the file
name is the customer id) across --jobs workers (default: one per hardware
thread). Reports are byte-identical at any --jobs value; per-trace wall
clocks are only included with --timings. A bad trace never sinks the
batch: its slot carries a structured status and the command exits 1.

serve runs the long-lived assessment service against a request spool: each
*.csv dropped under --spool is one request (the file name is the customer
id). --jobs workers drain a bounded --queue-depth admission queue; a full
queue sheds requests with RESOURCE_EXHAUSTED and sustained pressure sheds
the confidence stage first. --deadline-ms bounds each request; expired
requests report DEADLINE_EXCEEDED with the stages that completed. --rounds
scans the spool that many times (sleeping --poll-ms between scans), and
--watch-catalog hot-swaps a repriced catalog file into a new snapshot
epoch without disturbing in-flight requests.

serve observability: --journal-out appends every terminal request (status,
cause, pinned epoch, queue wait, per-stage timings) to a JSON-lines flight
journal; --stats-interval-ms runs the windowed metrics snapshotter on that
cadence, writing --stats-out (default doppler-stats.jsonl, plus a .prom
twin) atomically with windowed rates, p50/p95/p99 latency quantiles and —
with --slo-ms — the fraction of requests inside the SLO. Recording never
changes assessment results. `doppler stats` renders the snapshot file as a
text dashboard (request rates per outcome, latency quantiles, queue
gauges, catalog epoch history); --last N keeps only the newest N
snapshots.

monitor tails a telemetry spool as a STREAM: each *.csv under --spool is
one batch for the customer named by the file name up to the first '.'
("acme.0001.csv" extends acme's stream), appended into a per-customer
sliding window of --window-rows rows with incrementally maintained order
statistics and exceedance bitsets (windows past --sketch-budget rows fall
back to bounded-memory quantile sketches). A customer's first
--min-assess-rows rows trigger one full assessment (minus confidence);
afterwards a window-mean shift past --drift-tolerance on any dimension
re-runs ONLY the affected stages, and with --current-sku also the SKU
drift detector. --rounds/--poll-ms scan like serve.

Exit codes: 0 success, 1 partial failure (some batch/serve requests
failed), 2 bad command line, 3 invalid input, 4 not found,
5 failed precondition (e.g. strict quality rejection), 6 out of range,
7 unavailable, 8 internal error, 9 resource exhausted (shed),
10 deadline exceeded.
)";

StatusOr<catalog::Deployment> ParseDeployment(const std::string& text) {
  if (text == "db" || text.empty()) return catalog::Deployment::kSqlDb;
  if (text == "mi") return catalog::Deployment::kSqlMi;
  return InvalidArgumentError("unknown deployment '" + text +
                              "' (expected db or mi)");
}

StatusOr<int> ParsePositiveInt(const std::string& text, const char* what) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || !Trim(end).empty() || value <= 0) {
    return InvalidArgumentError(std::string(what) + " must be a positive "
                                "integer, got '" + text + "'");
  }
  return static_cast<int>(value);
}

// Loads the catalog from --catalog, or generates the default one.
StatusOr<catalog::SkuCatalog> ResolveCatalog(const CliOptions& options) {
  const std::string path = options.Get("catalog");
  if (!path.empty()) return LoadCatalog(path);
  catalog::CatalogOptions catalog_options;
  if (options.Has("extended")) {
    catalog_options.include_serverless = true;
    catalog_options.include_hyperscale = true;
    catalog_options.include_sql_vm = true;
  }
  return catalog::BuildAzureLikeCatalog(catalog_options);
}

// Loads profiles from --profiles, or fits them offline on the fly.
StatusOr<core::GroupModel> ResolveProfiles(const CliOptions& options,
                                           const catalog::SkuCatalog& skus,
                                           catalog::Deployment deployment,
                                           std::ostream& out) {
  const std::string path = options.Get("profiles");
  if (!path.empty()) return LoadGroupModel(path);
  if (!options.Has("json")) {
    // Keep --json output parseable: the note would corrupt the document.
    out << "(no --profiles given; fitting the group model offline, this "
           "takes a moment)\n";
  }
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  return FitGroupModelOffline(skus, pricing, estimator, deployment,
                              /*num_customers=*/120, /*seed=*/11);
}

StatusOr<int> RunCatalog(const CliOptions& options, std::ostream& out) {
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  const std::string out_path = options.Get("out");
  if (!out_path.empty()) {
    DOPPLER_RETURN_IF_ERROR(SaveCatalog(skus, out_path));
    out << "wrote " << skus.size() << " SKUs to " << out_path << "\n";
    return 0;
  }
  TablePrinter table({"id", "deployment", "tier", "vCores", "memory GB",
                      "IOPS", "price/h"});
  for (const catalog::Sku& sku : skus.skus()) {
    table.AddRow({sku.id, catalog::DeploymentName(sku.deployment),
                  catalog::ServiceTierName(sku.tier),
                  std::to_string(sku.vcores),
                  FormatDouble(sku.max_memory_gb, 1),
                  FormatDouble(sku.max_iops, 0),
                  FormatDouble(sku.price_per_hour, 2)});
  }
  table.Print(out);
  return 0;
}

StatusOr<int> RunFitProfiles(const CliOptions& options, std::ostream& out) {
  DOPPLER_ASSIGN_OR_RETURN(catalog::Deployment deployment,
                           ParseDeployment(options.Get("deployment", "db")));
  int customers = 150;
  if (options.Has("customers")) {
    DOPPLER_ASSIGN_OR_RETURN(
        customers, ParsePositiveInt(options.Get("customers"), "--customers"));
  }
  int seed = 11;
  if (options.Has("seed")) {
    DOPPLER_ASSIGN_OR_RETURN(seed,
                             ParsePositiveInt(options.Get("seed"), "--seed"));
  }
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  DOPPLER_ASSIGN_OR_RETURN(
      core::GroupModel model,
      FitGroupModelOffline(skus, pricing, estimator, deployment, customers,
                           static_cast<std::uint64_t>(seed)));
  const std::string out_path = options.Get("out");
  if (!out_path.empty()) {
    DOPPLER_RETURN_IF_ERROR(SaveGroupModel(model, out_path));
    out << "wrote " << model.AllGroups().size() << " group profiles to "
        << out_path << "\n";
    return 0;
  }
  TablePrinter table({"group", "n", "mean P(throttle)", "std"});
  for (const core::GroupStats& stats : model.AllGroups()) {
    table.AddRow({std::to_string(stats.group_id + 1),
                  std::to_string(stats.count),
                  FormatPercent(stats.mean_probability, 2),
                  FormatDouble(stats.std_probability, 4)});
  }
  table.Print(out);
  return 0;
}

StatusOr<int> RunTargets(const CliOptions& options, std::ostream& out) {
  if (options.Has("json")) {
    JsonWriter json;
    json.BeginArray();
    for (const catalog::TargetSpec& spec :
         catalog::TargetRegistry::BuiltIns().specs()) {
      json.BeginObject();
      json.Key("id").String(spec.id);
      json.Key("display_name").String(spec.display_name);
      json.Key("deployment")
          .String(catalog::DeploymentName(spec.deployment));
      json.Key("skus").Int(static_cast<long long>(spec.build_catalog().size()));
      json.Key("storage_tiers")
          .Int(static_cast<long long>(spec.storage_tiers().size()));
      json.Key("pricing_models").BeginArray();
      for (const catalog::TargetPricingModel& model : spec.pricing_models) {
        json.String(catalog::PricingModelName(model.model));
      }
      json.EndArray();
      json.Key("capacity_dims").BeginArray();
      for (catalog::ResourceDim dim : spec.capacity_dims) {
        json.String(catalog::ResourceDimName(dim));
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    out << json.str() << "\n";
    return 0;
  }
  TablePrinter table({"id", "Target", "Deployment", "SKUs", "Storage tiers",
                      "Pricing models"});
  for (const catalog::TargetSpec& spec :
       catalog::TargetRegistry::BuiltIns().specs()) {
    std::string models;
    for (const catalog::TargetPricingModel& model : spec.pricing_models) {
      if (!models.empty()) models += ", ";
      models += catalog::PricingModelName(model.model);
    }
    table.AddRow({spec.id, spec.display_name,
                  catalog::DeploymentName(spec.deployment),
                  std::to_string(spec.build_catalog().size()),
                  std::to_string(spec.storage_tiers().size()), models});
  }
  table.Print(out);
  return 0;
}

// The `assess --targets` path: one trace, several registered targets,
// rendered as the cross-target comparison.
StatusOr<int> RunAssessTargets(const CliOptions& options,
                               const telemetry::PerfTrace& trace,
                               std::ostream& out) {
  DOPPLER_ASSIGN_OR_RETURN(
      const std::vector<const catalog::TargetSpec*> targets,
      ResolveTargets(options.Get("targets")));
  if (!options.Has("json")) {
    out << "(comparing " << targets.size()
        << " targets; each fits its group model offline, this takes a "
           "moment)\n";
  }
  DOPPLER_ASSIGN_OR_RETURN(const CrossTargetReport report,
                           AssessAcrossTargets(trace, targets));
  if (options.Has("json")) {
    out << RenderCrossTargetJson(report) << "\n";
  } else {
    out << RenderCrossTargetReport(report);
  }
  // Exit 1 when some (not all) targets failed, mirroring assess-batch's
  // partial-failure contract.
  int failed = 0;
  for (const TargetAssessment& target : report.targets) {
    if (!target.status.ok()) ++failed;
  }
  return failed == 0 ? 0 : 1;
}

StatusOr<int> RunAssess(const CliOptions& options, std::ostream& out) {
  const std::string trace_path = options.Get("trace");
  if (trace_path.empty()) {
    return InvalidArgumentError("assess requires --trace <csv>");
  }
  quality::QualityPolicy policy = quality::QualityPolicy::kRepair;
  if (options.Has("quality") &&
      !quality::ParseQualityPolicy(options.Get("quality"), &policy)) {
    return InvalidArgumentError("unknown quality policy '" +
                                options.Get("quality") +
                                "' (expected strict, repair or permissive)");
  }
  quality::GateOptions gate;
  gate.policy = policy;
  DOPPLER_ASSIGN_OR_RETURN(quality::GatedTrace gated,
                           quality::ReadTraceFileGated(trace_path, gate));
  if (options.Has("targets")) {
    return RunAssessTargets(options, gated.trace, out);
  }
  DOPPLER_ASSIGN_OR_RETURN(catalog::Deployment deployment,
                           ParseDeployment(options.Get("target", "db")));
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  DOPPLER_ASSIGN_OR_RETURN(core::GroupModel profiles,
                           ResolveProfiles(options, skus, deployment, out));
  DOPPLER_ASSIGN_OR_RETURN(
      SkuRecommendationPipeline pipeline,
      SkuRecommendationPipeline::Create({std::move(skus),
                                         std::move(profiles)}));
  AssessmentRequest request;
  request.customer_id = trace_path;
  request.target = deployment;
  request.database_traces = {std::move(gated.trace)};
  request.current_sku_id = options.Get("current-sku");
  request.compute_confidence = options.Has("confidence");
  request.quality_policy = policy;
  request.ingest_quality = std::move(gated.report);
  if (options.Has("layout")) {
    DOPPLER_ASSIGN_OR_RETURN(request.layout,
                             LoadLayout(options.Get("layout")));
  }
  DOPPLER_ASSIGN_OR_RETURN(AssessmentOutcome outcome,
                           pipeline.Assess(request));

  if (options.Has("json")) {
    out << RenderAssessmentJson(outcome) << "\n";
    return 0;
  }
  out << RenderRecommendationReport(outcome.instance_trace, outcome.elastic);
  out << "\nTelemetry quality: " << outcome.quality.Summary() << "\n";
  if (!outcome.stage_timings.empty()) {
    out << "Stage timings:";
    for (const StageTiming& timing : outcome.stage_timings) {
      out << " " << timing.stage << " "
          << FormatDouble(timing.seconds * 1000.0, 2) << " ms;";
    }
    out << "\n";
  }
  out << "\n"
      << RenderNegotiabilityReport(outcome.instance_trace, request.target);
  if (outcome.confidence.has_value()) {
    out << "\nConfidence: " << FormatPercent(outcome.confidence->score, 0)
        << " (" << outcome.confidence->matching_runs << "/"
        << outcome.confidence->runs << " bootstrap runs agree)\n";
  }
  if (outcome.baseline.ok()) {
    out << "Legacy baseline pick: " << outcome.baseline->sku.DisplayName()
        << " at " << FormatDollars(outcome.baseline->monthly_cost, 0)
        << "/month\n";
  } else {
    out << "Legacy baseline: no SKU meets every scalar requirement\n";
  }
  if (outcome.rightsizing.has_value()) {
    out << "Right-sizing: "
        << (outcome.rightsizing->over_provisioned ? "OVER-PROVISIONED"
                                                  : "well sized")
        << "; moving to " << outcome.rightsizing->recommended.sku.DisplayName()
        << " saves " << FormatDollars(outcome.rightsizing->annual_savings, 0)
        << "/year\n";
  } else if (!outcome.rightsizing_skip_reason.empty()) {
    out << "Right-sizing: skipped (" << outcome.rightsizing_skip_reason
        << ")\n";
  }
  return 0;
}

StatusOr<int> RunAssessBatch(const CliOptions& options, std::ostream& out) {
  const std::string dir = options.Get("traces");
  if (dir.empty()) {
    return InvalidArgumentError("assess-batch requires --traces <directory>");
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return InvalidArgumentError("--traces '" + dir + "' is not a directory");
  }
  // Lexicographic file order fixes both the customer ids and the request
  // order, so the batch report is reproducible run to run.
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    return InvalidArgumentError("cannot scan '" + dir + "': " + ec.message());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    return NotFoundError("no *.csv traces under '" + dir + "'");
  }

  int jobs = 0;  // 0 = one per hardware thread.
  if (options.Has("jobs")) {
    DOPPLER_ASSIGN_OR_RETURN(jobs,
                             ParsePositiveInt(options.Get("jobs"), "--jobs"));
  }
  quality::QualityPolicy policy = quality::QualityPolicy::kRepair;
  if (options.Has("quality") &&
      !quality::ParseQualityPolicy(options.Get("quality"), &policy)) {
    return InvalidArgumentError("unknown quality policy '" +
                                options.Get("quality") +
                                "' (expected strict, repair or permissive)");
  }
  DOPPLER_ASSIGN_OR_RETURN(catalog::Deployment deployment,
                           ParseDeployment(options.Get("target", "db")));
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  DOPPLER_ASSIGN_OR_RETURN(core::GroupModel profiles,
                           ResolveProfiles(options, skus, deployment, out));
  SkuRecommendationPipeline::Config config;
  config.num_threads = jobs;  // --jobs drives both fan-out levels.
  DOPPLER_ASSIGN_OR_RETURN(
      SkuRecommendationPipeline pipeline,
      SkuRecommendationPipeline::Create(
          {std::move(skus), std::move(profiles)}, config));

  // Ingestion stays on the calling thread (the gate reads files); only the
  // assessments fan out. Read failures become error slots so one bad file
  // never sinks the batch.
  std::vector<std::string> customer_ids;
  std::vector<std::size_t> request_index(files.size());
  std::vector<AssessmentRequest> requests;
  std::vector<StatusOr<AssessmentOutcome>> results;
  results.reserve(files.size());
  quality::GateOptions gate;
  gate.policy = policy;
  for (std::size_t i = 0; i < files.size(); ++i) {
    customer_ids.push_back(files[i].filename().string());
    StatusOr<quality::GatedTrace> gated =
        quality::ReadTraceFileGated(files[i].string(), gate);
    if (!gated.ok()) {
      request_index[i] = static_cast<std::size_t>(-1);
      results.emplace_back(gated.status());
      continue;
    }
    AssessmentRequest request;
    request.customer_id = customer_ids.back();
    request.target = deployment;
    request.database_traces = {std::move(gated->trace)};
    request.quality_policy = policy;
    request.ingest_quality = std::move(gated->report);
    request_index[i] = requests.size();
    requests.push_back(std::move(request));
    results.emplace_back(InternalError("request not assessed"));
  }

  const exec::FleetAssessor assessor(&pipeline, jobs == 0
                                                    ? exec::ThreadPool::
                                                          HardwareConcurrency()
                                                    : jobs);
  std::vector<StatusOr<AssessmentOutcome>> assessed =
      assessor.AssessAll(requests);
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (request_index[i] != static_cast<std::size_t>(-1)) {
      results[i] = std::move(assessed[request_index[i]]);
    }
  }

  std::size_t failed = 0;
  for (const auto& result : results) failed += !result.ok();

  std::string rendered;
  if (options.Has("json")) {
    AssessmentJsonOptions json_options;
    json_options.include_stage_seconds = options.Has("timings");
    rendered = RenderFleetAssessmentJson(customer_ids, results, json_options);
    rendered += "\n";
  } else {
    TablePrinter table({"customer", "SKU", "monthly", "P(throttle)", "curve"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        table.AddRow({customer_ids[i],
                      "error: " + std::string(results[i].status().message()),
                      "-", "-", "-"});
        continue;
      }
      const AssessmentOutcome& outcome = *results[i];
      table.AddRow({customer_ids[i], outcome.elastic.sku.DisplayName(),
                    FormatDollars(outcome.elastic.monthly_cost, 0),
                    FormatPercent(outcome.elastic.throttling_probability, 1),
                    core::CurveShapeName(outcome.elastic.curve_shape)});
    }
    std::ostringstream text;
    table.Print(text);
    text << "\nAssessed " << results.size() - failed << "/" << results.size()
         << " traces with " << assessor.jobs() << " job(s)\n";
    rendered = text.str();
  }
  const std::string out_path = options.Get("out");
  if (!out_path.empty()) {
    DOPPLER_RETURN_IF_ERROR(obs::WriteTextFileAtomic(out_path, rendered));
    out << "wrote batch report for " << results.size() << " traces to "
        << out_path << "\n";
  } else {
    out << rendered;
  }
  // Partial-failure contract: the report always renders every slot, and
  // the exit code says whether every slot succeeded.
  return failed == 0 ? 0 : 1;
}

// Builds one serving snapshot: a pipeline compiled from `skus` and a copy
// of `profiles`. Separated out so --watch-catalog can rebuild against a
// repriced catalog without refitting the group model.
StatusOr<std::shared_ptr<const SkuRecommendationPipeline>> BuildSnapshot(
    catalog::SkuCatalog skus, const core::GroupModel& profiles) {
  DOPPLER_ASSIGN_OR_RETURN(
      SkuRecommendationPipeline pipeline,
      SkuRecommendationPipeline::Create({std::move(skus), profiles}));
  return std::make_shared<const SkuRecommendationPipeline>(
      std::move(pipeline));
}

// Builds one pipeline per requested target id (serve --targets): each
// target's own catalog is compiled into its own CompiledCatalog snapshot,
// with a group model fitted offline on that catalog. The list is
// published under one SnapshotRegistry epoch, so every target serves from
// the same generation.
StatusOr<serve::TargetPipelineList> BuildTargetPipelines(
    const std::string& target_ids) {
  DOPPLER_ASSIGN_OR_RETURN(
      const std::vector<const catalog::TargetSpec*> specs,
      ResolveTargets(target_ids));
  serve::TargetPipelineList pipelines;
  pipelines.reserve(specs.size());
  for (const catalog::TargetSpec* spec : specs) {
    catalog::SkuCatalog skus = spec->build_catalog();
    const catalog::DefaultPricing pricing;
    const core::NonParametricEstimator estimator;
    DOPPLER_ASSIGN_OR_RETURN(
        core::GroupModel profiles,
        FitGroupModelOffline(skus, pricing, estimator, spec->deployment,
                             /*num_customers=*/120, /*seed=*/11));
    SkuRecommendationPipeline::Config config;
    config.target = spec;
    DOPPLER_ASSIGN_OR_RETURN(
        SkuRecommendationPipeline pipeline,
        SkuRecommendationPipeline::Create(
            {std::move(skus), std::move(profiles)}, config));
    pipelines.emplace_back(spec->id,
                           std::make_shared<const SkuRecommendationPipeline>(
                               std::move(pipeline)));
  }
  return pipelines;
}

StatusOr<int> RunServe(const CliOptions& options, std::ostream& out) {
  const std::string spool_dir = options.Get("spool");
  if (spool_dir.empty()) {
    return InvalidArgumentError("serve requires --spool <directory>");
  }
  serve::ServiceOptions service_options;
  if (options.Has("jobs")) {
    DOPPLER_ASSIGN_OR_RETURN(service_options.workers,
                             ParsePositiveInt(options.Get("jobs"), "--jobs"));
  }
  if (options.Has("queue-depth")) {
    DOPPLER_ASSIGN_OR_RETURN(
        service_options.queue_depth,
        ParsePositiveInt(options.Get("queue-depth"), "--queue-depth"));
  }
  serve::SpoolOptions spool_options;
  spool_options.dir = spool_dir;
  DOPPLER_ASSIGN_OR_RETURN(spool_options.target,
                           ParseDeployment(options.Get("target", "db")));
  if (options.Has("quality") &&
      !quality::ParseQualityPolicy(options.Get("quality"),
                                   &spool_options.quality_policy)) {
    return InvalidArgumentError("unknown quality policy '" +
                                options.Get("quality") +
                                "' (expected strict, repair or permissive)");
  }
  if (options.Has("deadline-ms")) {
    DOPPLER_ASSIGN_OR_RETURN(
        const int deadline_ms,
        ParsePositiveInt(options.Get("deadline-ms"), "--deadline-ms"));
    spool_options.deadline_seconds = deadline_ms / 1000.0;
  }
  spool_options.compute_confidence = options.Has("confidence");
  int rounds = 1;
  if (options.Has("rounds")) {
    DOPPLER_ASSIGN_OR_RETURN(
        rounds, ParsePositiveInt(options.Get("rounds"), "--rounds"));
  }
  int poll_ms = 50;
  if (options.Has("poll-ms")) {
    DOPPLER_ASSIGN_OR_RETURN(
        poll_ms, ParsePositiveInt(options.Get("poll-ms"), "--poll-ms"));
  }

  // Serving-grade observability: the flight recorder journals every
  // terminal request, the snapshotter publishes windowed stats on a
  // cadence. Both are passive — reports are byte-identical either way.
  const std::string journal_path = options.Get("journal-out");
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!journal_path.empty()) {
    recorder = std::make_unique<obs::FlightRecorder>();
  }
  service_options.flight_recorder = recorder.get();

  int stats_interval_ms = 0;
  if (options.Has("stats-interval-ms")) {
    DOPPLER_ASSIGN_OR_RETURN(stats_interval_ms,
                             ParsePositiveInt(options.Get("stats-interval-ms"),
                                              "--stats-interval-ms"));
  }
  obs::SnapshotterOptions stats_options;
  const bool stats_enabled = stats_interval_ms > 0 ||
                             options.Has("stats-out") ||
                             options.Has("slo-ms");
  if (stats_enabled) {
    stats_options.jsonl_path = options.Get("stats-out", "doppler-stats.jsonl");
    // Prometheus twin next to the jsonl history, extension swapped.
    const std::filesystem::path prom_twin =
        std::filesystem::path(stats_options.jsonl_path)
            .replace_extension(".prom");
    stats_options.prom_path = prom_twin.string();
    if (options.Has("slo-ms")) {
      DOPPLER_ASSIGN_OR_RETURN(
          const int slo_ms, ParsePositiveInt(options.Get("slo-ms"), "--slo-ms"));
      stats_options.slo_seconds = slo_ms / 1000.0;
    }
  }

  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  DOPPLER_ASSIGN_OR_RETURN(
      core::GroupModel profiles,
      ResolveProfiles(options, skus, spool_options.target, out));
  DOPPLER_ASSIGN_OR_RETURN(auto initial,
                           BuildSnapshot(std::move(skus), profiles));
  serve::TargetPipelineList target_pipelines;
  if (options.Has("targets")) {
    DOPPLER_ASSIGN_OR_RETURN(target_pipelines,
                             BuildTargetPipelines(options.Get("targets")));
  }
  serve::SnapshotRegistry registry(std::move(initial), target_pipelines);
  if (!target_pipelines.empty() && !options.Has("json")) {
    out << "(serving " << target_pipelines.size()
        << " target snapshots under epoch 1:";
    for (const auto& [id, pipeline] : target_pipelines) {
      out << " " << id << "=" << pipeline->catalog().size() << " SKUs";
    }
    out << ")\n";
  }
  serve::AssessmentService service(&registry, service_options);

  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;
  if (stats_enabled) {
    snapshotter = std::make_unique<obs::MetricsSnapshotter>(
        &obs::DefaultMetrics(), stats_options);
    // Startup tick anchors the first window at process start, so lifetime
    // totals reconstructed from window deltas match the cumulative
    // counters; the background cadence takes over from here.
    snapshotter->Tick();
    if (stats_interval_ms > 0) snapshotter->Start(stats_interval_ms);
  }

  const std::string watch_path = options.Get("watch-catalog");
  const bool quiet = options.Has("json");
  std::filesystem::file_time_type watch_mtime{};
  bool watch_loaded = false;
  std::set<std::string> seen;
  serve::SpoolReport report;
  for (int round = 0; round < rounds; ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    // Hot swap: a new or rewritten --watch-catalog file becomes the next
    // snapshot epoch. Requests already admitted keep their pinned epoch.
    if (!watch_path.empty()) {
      std::error_code ec;
      const auto mtime = std::filesystem::last_write_time(watch_path, ec);
      if (!ec && (!watch_loaded || mtime != watch_mtime)) {
        watch_loaded = true;
        watch_mtime = mtime;
        StatusOr<catalog::SkuCatalog> fresh = LoadCatalog(watch_path);
        if (fresh.ok()) {
          StatusOr<std::shared_ptr<const SkuRecommendationPipeline>> next =
              BuildSnapshot(std::move(*fresh), profiles);
          if (next.ok()) {
            // The per-target pipelines ride along into the new epoch: the
            // watch file reprices the primary catalog only, and the swap
            // republishes the whole set atomically.
            const std::uint64_t epoch =
                registry.Swap(std::move(*next), target_pipelines);
            if (!quiet) {
              out << "(swapped catalog snapshot to epoch " << epoch << ")\n";
            }
          } else if (!quiet) {
            out << "(keeping current snapshot: " << next.status().ToString()
                << ")\n";
          }
        } else if (!quiet) {
          out << "(keeping current snapshot: " << fresh.status().ToString()
              << ")\n";
        }
      }
    }
    DOPPLER_ASSIGN_OR_RETURN(const std::vector<std::string> paths,
                             serve::ScanSpool(spool_dir, &seen));
    if (paths.empty()) continue;
    serve::SpoolReport pass = serve::DrainSpool(service, paths, spool_options);
    report.failures += pass.failures;
    for (serve::ServeResponse& response : pass.responses) {
      report.responses.push_back(std::move(response));
    }
    // Publish the journal at every round boundary, not just at exit, so a
    // killed server still leaves the journal of its completed rounds.
    if (recorder != nullptr) {
      const Status dumped = recorder->DumpJsonLines(journal_path);
      if (!dumped.ok() && !quiet) {
        out << "(journal write failed: " << dumped.ToString() << ")\n";
      }
    }
  }
  // Final tick after the last round guarantees at least two snapshot lines
  // (startup + final) even when the run outpaces the cadence.
  if (snapshotter != nullptr) {
    snapshotter->Stop();
    snapshotter->Tick();
    if (const Status exported = snapshotter->LastExportStatus();
        !exported.ok() && !quiet) {
      out << "(stats write failed: " << exported.ToString() << ")\n";
    }
  }
  if (recorder != nullptr) {
    const Status dumped = recorder->DumpJsonLines(journal_path);
    if (!dumped.ok() && !quiet) {
      out << "(journal write failed: " << dumped.ToString() << ")\n";
    }
  }
  if (report.responses.empty()) {
    return NotFoundError("no *.csv requests appeared under '" + spool_dir +
                         "' in " + std::to_string(rounds) + " scan(s)");
  }

  const serve::AssessmentService::Stats stats = service.stats();
  const std::string rendered =
      options.Has("json") ? serve::RenderSpoolReportJson(report, stats) + "\n"
                          : serve::RenderSpoolReportText(report, stats);
  const std::string out_path = options.Get("out");
  if (!out_path.empty()) {
    DOPPLER_RETURN_IF_ERROR(obs::WriteTextFileAtomic(out_path, rendered));
    out << "wrote serve report for " << report.responses.size()
        << " requests to " << out_path << "\n";
  } else {
    out << rendered;
  }
  // Same partial-failure contract as assess-batch: every request reached a
  // terminal status and the report says which; exit 1 flags any non-OK.
  return report.failures == 0 ? 0 : 1;
}

StatusOr<int> RunMonitor(const CliOptions& options, std::ostream& out) {
  const std::string spool_dir = options.Get("spool");
  if (spool_dir.empty()) {
    return InvalidArgumentError("monitor requires --spool <directory>");
  }
  stream::MonitorOptions monitor_options;
  DOPPLER_ASSIGN_OR_RETURN(monitor_options.target,
                           ParseDeployment(options.Get("target", "db")));
  if (options.Has("window-rows")) {
    DOPPLER_ASSIGN_OR_RETURN(
        const int rows,
        ParsePositiveInt(options.Get("window-rows"), "--window-rows"));
    monitor_options.window_rows = static_cast<std::size_t>(rows);
  }
  if (options.Has("sketch-budget")) {
    DOPPLER_ASSIGN_OR_RETURN(
        const int budget,
        ParsePositiveInt(options.Get("sketch-budget"), "--sketch-budget"));
    monitor_options.sketch_row_budget = static_cast<std::size_t>(budget);
  }
  if (options.Has("min-assess-rows")) {
    DOPPLER_ASSIGN_OR_RETURN(const int rows,
                             ParsePositiveInt(options.Get("min-assess-rows"),
                                              "--min-assess-rows"));
    monitor_options.min_assess_rows = static_cast<std::size_t>(rows);
  }
  if (options.Has("drift-tolerance")) {
    char* end = nullptr;
    monitor_options.drift_tolerance =
        std::strtod(options.Get("drift-tolerance").c_str(), &end);
    if (end == nullptr || *end != '\0' ||
        monitor_options.drift_tolerance <= 0.0) {
      return InvalidArgumentError("--drift-tolerance expects a positive "
                                  "number, got '" +
                                  options.Get("drift-tolerance") + "'");
    }
  }
  monitor_options.current_sku_id = options.Get("current-sku");
  quality::GateOptions gate;
  if (options.Has("quality") &&
      !quality::ParseQualityPolicy(options.Get("quality"), &gate.policy)) {
    return InvalidArgumentError("unknown quality policy '" +
                                options.Get("quality") +
                                "' (expected strict, repair or permissive)");
  }
  int rounds = 1;
  if (options.Has("rounds")) {
    DOPPLER_ASSIGN_OR_RETURN(
        rounds, ParsePositiveInt(options.Get("rounds"), "--rounds"));
  }
  int poll_ms = 50;
  if (options.Has("poll-ms")) {
    DOPPLER_ASSIGN_OR_RETURN(
        poll_ms, ParsePositiveInt(options.Get("poll-ms"), "--poll-ms"));
  }

  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  DOPPLER_ASSIGN_OR_RETURN(
      core::GroupModel profiles,
      ResolveProfiles(options, skus, monitor_options.target, out));
  DOPPLER_ASSIGN_OR_RETURN(
      SkuRecommendationPipeline pipeline,
      SkuRecommendationPipeline::Create({std::move(skus), profiles}));
  stream::StreamMonitor monitor(&pipeline, monitor_options);

  const bool json = options.Has("json");
  std::ostringstream rendered;
  std::set<std::string> seen;
  std::size_t batches = 0;
  std::size_t failures = 0;
  std::size_t reassessments = 0;
  std::size_t drift_trips = 0;
  for (int round = 0; round < rounds; ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
    DOPPLER_ASSIGN_OR_RETURN(const std::vector<std::string> paths,
                             serve::ScanSpool(spool_dir, &seen));
    for (const std::string& path : paths) {
      const std::string customer_id = serve::SpoolCustomerId(path);
      StatusOr<quality::GatedTrace> gated =
          quality::ReadTraceFileGated(path, gate);
      if (!gated.ok()) {
        ++failures;
        rendered << (json ? "{\"customer_id\":\"" +
                                JsonWriter::Escape(customer_id) +
                                "\",\"error\":\"" +
                                JsonWriter::Escape(
                                    gated.status().ToString()) +
                                "\"}\n"
                          : customer_id + ": ingest failed: " +
                                gated.status().ToString() + "\n");
        continue;
      }
      StatusOr<stream::MonitorEvent> event =
          monitor.Ingest(customer_id, gated->trace);
      if (!event.ok()) {
        ++failures;
        rendered << (json ? "{\"customer_id\":\"" +
                                JsonWriter::Escape(customer_id) +
                                "\",\"error\":\"" +
                                JsonWriter::Escape(
                                    event.status().ToString()) +
                                "\"}\n"
                          : customer_id + ": " +
                                event.status().ToString() + "\n");
        continue;
      }
      ++batches;
      if (event->assessed && !event->initial) ++reassessments;
      drift_trips += event->drifted_dims.size();
      rendered << (json ? stream::RenderMonitorEventJson(*event) + "\n"
                        : stream::RenderMonitorEventText(*event));
    }
  }
  if (batches == 0 && failures == 0) {
    return NotFoundError("no *.csv batches appeared under '" + spool_dir +
                         "' in " + std::to_string(rounds) + " scan(s)");
  }
  if (!json) {
    rendered << "monitored " << batches << " batches across "
             << monitor.num_customers() << " customers ("
             << reassessments << " drift re-assessments, " << drift_trips
             << " dimension trips, " << failures << " failures)\n";
  }
  const std::string out_path = options.Get("out");
  if (!out_path.empty()) {
    DOPPLER_RETURN_IF_ERROR(
        obs::WriteTextFileAtomic(out_path, rendered.str()));
    out << "wrote monitor log for " << batches << " batches to " << out_path
        << "\n";
  } else {
    out << rendered.str();
  }
  return failures == 0 ? 0 : 1;
}

// Renders the snapshot history `serve --stats-interval-ms` maintains.
// Reads the same file serve writes atomically, so running this while the
// server is live always sees a complete history, never a torn write.
StatusOr<int> RunStats(const CliOptions& options, std::ostream& out) {
  const std::string path = options.Get("snapshots", "doppler-stats.jsonl");
  std::vector<obs::WindowedSnapshot> history;
  DOPPLER_RETURN_IF_ERROR(
      obs::MetricsSnapshotter::ReadJsonLines(path, &history));
  if (options.Has("last")) {
    DOPPLER_ASSIGN_OR_RETURN(const int last,
                             ParsePositiveInt(options.Get("last"), "--last"));
    if (history.size() > static_cast<std::size_t>(last)) {
      history.erase(history.begin(),
                    history.end() - static_cast<std::ptrdiff_t>(last));
    }
  }
  out << obs::RenderStatsDashboard(history);
  return 0;
}

StatusOr<int> RunForecast(const CliOptions& options, std::ostream& out) {
  const std::string trace_path = options.Get("trace");
  if (trace_path.empty()) {
    return InvalidArgumentError("forecast requires --trace <csv>");
  }
  DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                           telemetry::ReadTraceFile(trace_path));
  int months = 12;
  if (options.Has("months")) {
    DOPPLER_ASSIGN_OR_RETURN(
        months, ParsePositiveInt(options.Get("months"), "--months"));
  }
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(std::move(skus), &pricing);
  const core::NonParametricEstimator estimator;
  core::ForecastOptions forecast_options;
  forecast_options.horizon_months = months;
  DOPPLER_ASSIGN_OR_RETURN(
      core::GrowthForecast forecast,
      core::ForecastUpgrades(
          trace, compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          compiled.pricing(), estimator, options.Get("current-sku"),
          forecast_options));
  TablePrinter table({"Month", "Right-sized SKU", "Monthly",
                      "Current-SKU throttling"});
  for (const core::HorizonPoint& point : forecast.timeline) {
    table.AddRow({std::to_string(point.month),
                  point.recommended_sku_id.empty()
                      ? "(nothing fits)"
                      : point.recommended_display_name,
                  FormatDollars(point.recommended_monthly_cost, 0),
                  FormatPercent(point.current_sku_probability, 1)});
  }
  table.Print(out);
  if (forecast.upgrade_due_month > 0) {
    out << "\nUpgrade due in month " << forecast.upgrade_due_month
        << ": the current SKU's throttling crosses the tolerance.\n";
  } else if (!options.Get("current-sku").empty()) {
    out << "\nThe current SKU holds through the horizon.\n";
  }
  return 0;
}

StatusOr<int> RunDrift(const CliOptions& options, std::ostream& out) {
  const std::string trace_path = options.Get("trace");
  const std::string current_sku = options.Get("current-sku");
  if (trace_path.empty() || current_sku.empty()) {
    return InvalidArgumentError(
        "drift requires --trace <csv> and --current-sku <id>");
  }
  DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                           telemetry::ReadTraceFile(trace_path));
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(std::move(skus), &pricing);
  const core::NonParametricEstimator estimator;
  core::DriftOptions drift_options;
  if (options.Has("recent-fraction")) {
    char* end = nullptr;
    drift_options.recent_fraction =
        std::strtod(options.Get("recent-fraction").c_str(), &end);
  }
  DOPPLER_ASSIGN_OR_RETURN(
      core::DriftReport report,
      core::DetectSkuDrift(
          trace, compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          compiled.pricing(), estimator, current_sku, drift_options));
  out << "Baseline-window throttling on " << current_sku << ": "
      << FormatPercent(report.baseline_probability, 1) << "\n";
  out << "Recent-window throttling:  "
      << FormatPercent(report.recent_probability, 1) << "\n";
  out << "SKU change needed: " << (report.needs_change ? "YES" : "no")
      << "\n";
  if (!report.recommended_sku_id.empty()) {
    out << "Right-sized target for the recent window: "
        << report.recommended_display_name << " ("
        << FormatDollars(report.recommended_monthly_cost, 0) << "/month)\n";
  }
  return 0;
}

StatusOr<int> RunTco(const CliOptions& options, std::ostream& out) {
  const std::string trace_path = options.Get("trace");
  if (trace_path.empty()) {
    return InvalidArgumentError("tco requires --trace <csv>");
  }
  DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                           telemetry::ReadTraceFile(trace_path));
  DOPPLER_ASSIGN_OR_RETURN(catalog::SkuCatalog skus, ResolveCatalog(options));
  const core::NonParametricEstimator estimator;
  DOPPLER_ASSIGN_OR_RETURN(
      core::GroupModel profiles,
      ResolveProfiles(options, skus, catalog::Deployment::kSqlDb, out));
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(catalog::Deployment::kSqlDb));
  const tco::OnPremCostModel on_prem;
  DOPPLER_ASSIGN_OR_RETURN(
      tco::TcoComparison comparison,
      tco::CompareTco(trace, on_prem, skus, estimator, profiler, profiles));
  out << tco::RenderTcoReport(comparison);
  return 0;
}

// Applies the command-independent observability flags before dispatch:
// logging verbosity/format and span recording. Collected metrics always
// accumulate; --metrics-out / --trace-out only control export.
Status ApplyGlobalFlags(const CliOptions& options) {
  if (options.Has("log-level")) {
    LogLevel level = LogLevel::kInfo;
    if (!ParseLogLevel(options.Get("log-level"), &level)) {
      return InvalidArgumentError(
          "unknown log level '" + options.Get("log-level") +
          "' (expected debug, info, warning or error)");
    }
    SetMinLogLevel(level);
  }
  if (options.Has("log-json")) SetLogFormat(LogFormat::kJson);
  if (options.Has("trace-out")) {
    obs::SetTracingEnabled(true);
    obs::ClearTraceBuffer();
  }
  return OkStatus();
}

// Writes the requested exports after the command ran (also on command
// failure — the partial record is exactly what debugging needs).
Status ExportObservability(const CliOptions& options) {
  if (options.Has("metrics-out")) {
    const std::string path = options.Get("metrics-out");
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    const obs::MetricsRegistry& metrics = obs::DefaultMetrics();
    DOPPLER_RETURN_IF_ERROR(obs::WriteTextFileAtomic(
        path, json ? metrics.RenderJson() : metrics.RenderPrometheusText()));
  }
  if (options.Has("trace-out")) {
    DOPPLER_RETURN_IF_ERROR(obs::WriteChromeTrace(options.Get("trace-out")));
    obs::SetTracingEnabled(false);
  }
  return OkStatus();
}

StatusOr<int> RunSynth(const CliOptions& options, std::ostream& out) {
  const std::string trace_path = options.Get("trace");
  if (trace_path.empty()) {
    return InvalidArgumentError("synth requires --trace <csv>");
  }
  DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                           telemetry::ReadTraceFile(trace_path));
  DOPPLER_ASSIGN_OR_RETURN(workload::SynthesizedWorkload synth,
                           workload::SynthesizeFromHistory(trace));
  out << "Synthesized workload: " << synth.Describe() << "\n";
  out << "Fit error: " << FormatPercent(synth.fit_error, 1)
      << "; peak-to-mean " << FormatDouble(synth.peak_to_mean, 2)
      << "; target latency " << FormatDouble(synth.target_latency_ms, 1)
      << " ms\n";
  return 0;
}

}  // namespace

std::string CliOptions::Get(const std::string& name,
                            const std::string& fallback) const {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

bool CliOptions::Has(const std::string& name) const {
  return flags.find(name) != flags.end();
}

StatusOr<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  if (args.empty()) {
    return InvalidArgumentError("no command given (try 'doppler help')");
  }
  CliOptions options;
  options.command = args[0];
  std::size_t i = 1;
  while (i < args.size()) {
    if (!StartsWith(args[i], "--") || args[i].size() <= 2) {
      return InvalidArgumentError("expected --flag, got '" + args[i] + "'");
    }
    const std::string flag = args[i].substr(2);
    ++i;
    // --flag=value binds inline; otherwise the next non-flag token (if
    // any) is the value and a missing one makes a boolean flag.
    const std::size_t equals = flag.find('=');
    if (equals != std::string::npos) {
      options.flags[flag.substr(0, equals)] = flag.substr(equals + 1);
    } else if (i < args.size() && !StartsWith(args[i], "--")) {
      options.flags[flag] = args[i];
      ++i;
    } else {
      options.flags[flag] = "";  // Boolean flag.
    }
  }
  return options;
}

StatusOr<int> RunCli(const CliOptions& options, std::ostream& out) {
  if (options.command == "help") {
    out << kUsage;
    return 0;
  }
  if (options.command == "catalog") return RunCatalog(options, out);
  if (options.command == "fit-profiles") return RunFitProfiles(options, out);
  if (options.command == "assess") return RunAssess(options, out);
  if (options.command == "targets") return RunTargets(options, out);
  if (options.command == "assess-batch") return RunAssessBatch(options, out);
  if (options.command == "serve") return RunServe(options, out);
  if (options.command == "monitor") return RunMonitor(options, out);
  if (options.command == "stats") return RunStats(options, out);
  if (options.command == "forecast") return RunForecast(options, out);
  if (options.command == "drift") return RunDrift(options, out);
  if (options.command == "tco") return RunTco(options, out);
  if (options.command == "synth") return RunSynth(options, out);
  return InvalidArgumentError("unknown command '" + options.command +
                              "' (try 'doppler help')");
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 3;
    case StatusCode::kNotFound:
      return 4;
    case StatusCode::kFailedPrecondition:
      return 5;
    case StatusCode::kOutOfRange:
      return 6;
    case StatusCode::kUnavailable:
      return 7;
    case StatusCode::kInternal:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
    case StatusCode::kDeadlineExceeded:
      return 10;
  }
  return 8;
}

int CliMain(const std::vector<std::string>& args, std::ostream& out) {
  StatusOr<CliOptions> options = ParseCliArgs(args);
  if (!options.ok()) {
    out << "error: " << options.status().message() << "\n" << kUsage;
    return 2;
  }
  const Status global = ApplyGlobalFlags(*options);
  if (!global.ok()) {
    out << "error: " << global.message() << "\n" << kUsage;
    return 2;
  }
  StatusOr<int> code = RunCli(*options, out);
  // Export even when the command failed: the metrics and spans recorded up
  // to the failure point are the debugging record.
  const Status exported = ExportObservability(*options);
  if (!exported.ok()) {
    out << "error: " << exported.ToString() << "\n";
    if (code.ok()) return ExitCodeForStatus(exported);
  }
  if (!code.ok()) {
    out << "error: " << code.status().ToString() << "\n";
    return ExitCodeForStatus(code.status());
  }
  return *code;
}

}  // namespace doppler::dma
