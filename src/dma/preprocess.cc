#include "dma/preprocess.h"

#include "core/backtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "workload/population.h"

namespace doppler::dma {

StatusOr<telemetry::PerfTrace> DataPreprocessingModule::PrepareDatabaseTrace(
    const telemetry::PerfTrace& raw) const {
  if (raw.interval_seconds() == output_interval_seconds_) return raw;
  return telemetry::ResampleTrace(raw, output_interval_seconds_);
}

StatusOr<telemetry::PerfTrace> DataPreprocessingModule::PrepareDatabaseTrace(
    const telemetry::PerfTrace& raw, const quality::GateOptions& gate,
    quality::TraceQualityReport* report) const {
  DOPPLER_TRACE_SPAN("preprocess.database");
  static obs::Counter* const kDatabases =
      obs::DefaultMetrics().GetCounter("preprocess.databases");
  static obs::Counter* const kSamplesIn =
      obs::DefaultMetrics().GetCounter("preprocess.samples_in");
  kDatabases->Increment();
  kSamplesIn->Increment(raw.num_samples());
  quality::GateOptions per_database = gate;
  // Expected dimensions are judged once on the instance rollup; a single
  // database legitimately misses dimensions its siblings carry.
  per_database.expected_dims.clear();
  DOPPLER_ASSIGN_OR_RETURN(quality::GatedTrace gated,
                           quality::GateTrace(raw, per_database));
  if (report != nullptr) report->MergeFrom(gated.report);
  return PrepareDatabaseTrace(gated.trace);
}

StatusOr<telemetry::PerfTrace> DataPreprocessingModule::PrepareInstanceTrace(
    const std::vector<telemetry::PerfTrace>& raw_databases,
    const quality::GateOptions& gate,
    quality::TraceQualityReport* report) const {
  std::vector<telemetry::PerfTrace> prepared;
  prepared.reserve(raw_databases.size());
  for (const telemetry::PerfTrace& raw : raw_databases) {
    DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                             PrepareDatabaseTrace(raw, gate, report));
    prepared.push_back(std::move(trace));
  }
  DOPPLER_TRACE_SPAN("preprocess.rollup");
  StatusOr<telemetry::PerfTrace> instance =
      telemetry::RollupToInstance(prepared);
  if (instance.ok()) {
    static obs::Counter* const kSamplesOut =
        obs::DefaultMetrics().GetCounter("preprocess.samples_out");
    kSamplesOut->Increment(instance->num_samples());
    DOPPLER_LOG(kDebug) << "rolled " << prepared.size()
                        << " database traces into " << instance->num_samples()
                        << " instance samples";
  }
  return instance;
}

StatusOr<telemetry::PerfTrace> DataPreprocessingModule::PrepareInstanceTrace(
    const std::vector<telemetry::PerfTrace>& raw_databases) const {
  std::vector<telemetry::PerfTrace> prepared;
  prepared.reserve(raw_databases.size());
  for (const telemetry::PerfTrace& raw : raw_databases) {
    DOPPLER_ASSIGN_OR_RETURN(telemetry::PerfTrace trace,
                             PrepareDatabaseTrace(raw));
    prepared.push_back(std::move(trace));
  }
  return telemetry::RollupToInstance(prepared);
}

StatusOr<core::GroupModel> FitGroupModelOffline(
    const catalog::SkuCatalog& catalog, const catalog::PricingService& pricing,
    const core::ThrottlingEstimator& estimator,
    catalog::Deployment deployment, int num_customers, std::uint64_t seed) {
  workload::PopulationOptions population_options;
  population_options.num_customers = num_customers;
  population_options.deployment = deployment;
  population_options.seed = seed;
  DOPPLER_ASSIGN_OR_RETURN(std::vector<workload::SyntheticCustomer> fleet,
                           workload::GeneratePopulation(population_options));

  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  DOPPLER_ASSIGN_OR_RETURN(
      core::BacktestDataset dataset,
      core::BuildBacktestDataset(std::move(fleet), compiled, estimator, &rng));

  const core::ThresholdingStrategy strategy;
  const std::vector<catalog::ResourceDim> dims =
      workload::ProfilingDims(deployment);

  std::vector<std::pair<int, double>> training;
  for (const core::LabeledCustomer& labeled : dataset.customers) {
    if (labeled.customer.over_provisioned) continue;  // Not "optimal" choices.
    // Flat curves carry no tolerance signal (any choice is ~0 throttling).
    if (labeled.curve_shape == core::CurveShape::kFlat) continue;
    DOPPLER_ASSIGN_OR_RETURN(core::NegotiabilityScores summary,
                             strategy.Evaluate(labeled.customer.trace, dims));
    training.emplace_back(core::GroupIdFromBits(summary.negotiable),
                          labeled.chosen_probability);
  }
  return core::GroupModel::Fit(training);
}

}  // namespace doppler::dma
