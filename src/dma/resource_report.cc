#include "dma/resource_report.h"

#include <sstream>

#include "core/negotiability.h"
#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "util/ascii_plot.h"
#include "util/json_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/population.h"

namespace doppler::dma {

std::string RenderUsageReport(const telemetry::PerfTrace& trace) {
  std::ostringstream out;
  out << "Resource usage over " << FormatDouble(trace.DurationDays(), 1)
      << " days (" << trace.num_samples() << " samples @ "
      << trace.interval_seconds() << "s)\n\n";

  TablePrinter summary(
      {"Dimension", "Mean", "P50", "P95", "Max", "StdDev", "ECDF AUC"});
  for (catalog::ResourceDim dim : trace.PresentDims()) {
    const std::vector<double>& values = trace.Values(dim);
    summary.AddRow({catalog::ResourceDimName(dim),
                    FormatDouble(stats::Mean(values), 2),
                    FormatDouble(stats::Median(values), 2),
                    FormatDouble(stats::Quantile(values, 0.95), 2),
                    FormatDouble(stats::Max(values), 2),
                    FormatDouble(stats::StdDev(values), 2),
                    FormatDouble(stats::Ecdf(values).NormalizedAuc(), 3)});
  }
  out << summary.ToString() << "\n";

  for (catalog::ResourceDim dim : trace.PresentDims()) {
    PlotOptions options;
    options.title = std::string("-- ") + catalog::ResourceDimName(dim) +
                    " over time --";
    options.height = 10;
    out << LinePlot(trace.Values(dim), options) << "\n";
  }
  return out.str();
}

std::string RenderCurveReport(const core::PricePerformanceCurve& curve,
                              int max_rows) {
  std::ostringstream out;
  out << "Price-performance curve (" << curve.size() << " relevant SKUs, "
      << core::CurveShapeName(curve.Classify()) << " shape)\n";

  TablePrinter table({"SKU", "Monthly price", "Throttling prob",
                      "Performance"});
  const auto& points = curve.points();
  const std::size_t rows =
      std::min<std::size_t>(points.size(), static_cast<std::size_t>(max_rows));
  // Sample evenly across the curve when it is longer than the row budget.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t i = rows <= 1 ? 0 : r * (points.size() - 1) / (rows - 1);
    const core::PricePerformancePoint& point = points[i];
    table.AddRow({point.sku.DisplayName(),
                  FormatDollars(point.monthly_price),
                  FormatPercent(point.MonotoneProbability(), 2),
                  FormatPercent(point.performance, 1)});
  }
  out << table.ToString() << "\n";

  PlotOptions plot;
  plot.title = "performance (fraction of needs met) vs monthly price";
  plot.height = 12;
  out << ScatterPlot(curve.Prices(), curve.Performances(), plot);
  return out.str();
}

std::string RenderRecommendationReport(const telemetry::PerfTrace& trace,
                                       const core::Recommendation& rec) {
  std::ostringstream out;
  out << "==================================================================\n";
  out << " Doppler recommendation for '" << trace.id() << "'\n";
  out << "==================================================================\n";
  out << " SKU:        " << rec.sku.DisplayName() << "\n";
  out << " Monthly:    " << FormatDollars(rec.monthly_cost) << "\n";
  out << " Throttling: " << FormatPercent(rec.throttling_probability, 2)
      << "\n";
  if (rec.group_id >= 0) {
    out << " Group:      " << rec.group_id + 1 << " (target "
        << FormatPercent(rec.group_target, 1) << ")\n";
  }
  out << " Why:        " << rec.rationale << "\n\n";
  out << RenderUsageReport(trace) << "\n";
  out << RenderCurveReport(rec.curve);
  return out.str();
}

std::string RenderNegotiabilityReport(const telemetry::PerfTrace& trace,
                                      catalog::Deployment deployment) {
  const std::vector<catalog::ResourceDim> dims =
      workload::ProfilingDims(deployment);
  std::ostringstream out;
  out << "Negotiability profile (" << catalog::DeploymentName(deployment)
      << " dimensions)\n";
  TablePrinter table({"Dimension", "Thresholding", "MinMax AUC", "Max AUC",
                      "Outlier %", "Verdict"});
  const core::ThresholdingStrategy thresholding;
  const core::MinMaxAucStrategy minmax;
  const core::MaxAucStrategy max_auc;
  const core::OutlierPercentageStrategy outlier;
  StatusOr<core::NegotiabilityScores> t = thresholding.Evaluate(trace, dims);
  StatusOr<core::NegotiabilityScores> mm = minmax.Evaluate(trace, dims);
  StatusOr<core::NegotiabilityScores> mx = max_auc.Evaluate(trace, dims);
  StatusOr<core::NegotiabilityScores> ol = outlier.Evaluate(trace, dims);
  if (!t.ok() || !mm.ok() || !mx.ok() || !ol.ok()) {
    return "(negotiability profile unavailable: trace has no usable "
           "profiling dimensions)\n";
  }
  for (std::size_t i = 0; i < dims.size(); ++i) {
    table.AddRow({catalog::ResourceDimName(dims[i]),
                  FormatDouble(t->scores[i], 3),
                  FormatDouble(mm->scores[i], 3),
                  FormatDouble(mx->scores[i], 3),
                  FormatDouble(ol->scores[i], 3),
                  t->negotiable[i] ? "negotiable" : "non-negotiable"});
  }
  out << table.ToString();
  return out.str();
}

namespace {

// Serialises one curve point.
void WriteCurvePoint(JsonWriter& json, const core::PricePerformancePoint& p) {
  json.BeginObject();
  json.Key("sku_id").String(p.sku.id);
  json.Key("display_name").String(p.sku.DisplayName());
  json.Key("monthly_price").Number(p.monthly_price);
  json.Key("throttling_probability").Number(p.MonotoneProbability());
  json.Key("performance").Number(p.performance);
  json.EndObject();
}

void WriteRecommendation(JsonWriter& json, const core::Recommendation& rec,
                         bool include_curve) {
  json.BeginObject();
  json.Key("sku_id").String(rec.sku.id);
  json.Key("display_name").String(rec.sku.DisplayName());
  json.Key("monthly_cost").Number(rec.monthly_cost);
  json.Key("throttling_probability").Number(rec.throttling_probability);
  json.Key("curve_shape").String(core::CurveShapeName(rec.curve_shape));
  if (rec.group_id >= 0) {
    json.Key("group").Int(rec.group_id + 1);
    json.Key("group_target_probability").Number(rec.group_target);
  }
  json.Key("rationale").String(rec.rationale);
  if (rec.degraded) {
    json.Key("degraded").Bool(true);
    json.Key("missing_profile_dims").BeginArray();
    for (catalog::ResourceDim dim : rec.missing_profile_dims) {
      json.String(catalog::ResourceDimName(dim));
    }
    json.EndArray();
  }
  if (include_curve) {
    json.Key("curve").BeginArray();
    for (const core::PricePerformancePoint& point : rec.curve.points()) {
      WriteCurvePoint(json, point);
    }
    json.EndArray();
  }
  json.EndObject();
}

// Serialises the telemetry quality gate's report: the defect trail, the
// degraded-mode assessment, and the one-line summary the UI surfaces.
void WriteQualityReport(JsonWriter& json,
                        const quality::TraceQualityReport& report) {
  json.BeginObject();
  json.Key("policy").String(quality::QualityPolicyName(report.policy));
  json.Key("clean").Bool(report.clean());
  json.Key("total_defects").Int(report.TotalDefects());
  json.Key("repaired_defects").Int(report.RepairedDefects());
  json.Key("samples_in").Int(report.samples_in);
  json.Key("samples_out").Int(report.samples_out);
  json.Key("defects").BeginArray();
  for (const quality::QualityDefect& defect : report.defects) {
    json.BeginObject();
    json.Key("class").String(quality::DefectClassName(defect.defect));
    json.Key("count").Int(defect.count);
    json.Key("repaired").Bool(defect.repaired);
    if (!defect.detail.empty()) json.Key("detail").String(defect.detail);
    json.EndObject();
  }
  json.EndArray();
  json.Key("degraded").Bool(report.degraded);
  if (report.degraded) {
    json.Key("missing_dims").BeginArray();
    for (catalog::ResourceDim dim : report.missing_dims) {
      json.String(catalog::ResourceDimName(dim));
    }
    json.EndArray();
    json.Key("assessed_dims").BeginArray();
    for (catalog::ResourceDim dim : report.assessed_dims) {
      json.String(catalog::ResourceDimName(dim));
    }
    json.EndArray();
    json.Key("confidence_penalty").Number(report.confidence_penalty);
  }
  json.Key("summary").String(report.Summary());
  json.EndObject();
}

}  // namespace

std::string RenderAssessmentJson(const AssessmentOutcome& outcome) {
  return RenderAssessmentJson(outcome, AssessmentJsonOptions());
}

std::string RenderAssessmentJson(const AssessmentOutcome& outcome,
                                 const AssessmentJsonOptions& options) {
  JsonWriter json;
  json.BeginObject();
  json.Key("customer_id").String(outcome.customer_id);
  json.Key("samples").Int(
      static_cast<long long>(outcome.instance_trace.num_samples()));
  json.Key("duration_days").Number(outcome.instance_trace.DurationDays());

  json.Key("quality");
  WriteQualityReport(json, outcome.quality);

  json.Key("stage_timings").BeginArray();
  for (const StageTiming& timing : outcome.stage_timings) {
    json.BeginObject();
    json.Key("stage").String(timing.stage);
    if (options.include_stage_seconds) {
      json.Key("seconds").Number(timing.seconds);
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("elastic");
  WriteRecommendation(json, outcome.elastic, /*include_curve=*/true);

  json.Key("baseline");
  if (outcome.baseline.ok()) {
    WriteRecommendation(json, *outcome.baseline, /*include_curve=*/false);
  } else {
    json.BeginObject();
    json.Key("error").String(outcome.baseline.status().ToString());
    json.EndObject();
  }

  if (outcome.confidence.has_value()) {
    json.Key("confidence").BeginObject();
    json.Key("score").Number(outcome.confidence->score);
    json.Key("runs").Int(outcome.confidence->runs);
    json.Key("matching_runs").Int(outcome.confidence->matching_runs);
    json.EndObject();
  }
  {
    const std::vector<catalog::ResourceDim> dims =
        workload::ProfilingDims(outcome.target);
    const core::ThresholdingStrategy thresholding;
    StatusOr<core::NegotiabilityScores> profile =
        thresholding.Evaluate(outcome.instance_trace, dims);
    if (profile.ok()) {
      json.Key("negotiability").BeginArray();
      for (std::size_t i = 0; i < dims.size(); ++i) {
        json.BeginObject();
        json.Key("dimension").String(catalog::ResourceDimName(dims[i]));
        json.Key("score").Number(profile->scores[i]);
        json.Key("negotiable").Bool(profile->negotiable[i]);
        json.EndObject();
      }
      json.EndArray();
    }
  }
  if (outcome.rightsizing.has_value()) {
    json.Key("rightsizing").BeginObject();
    json.Key("over_provisioned").Bool(outcome.rightsizing->over_provisioned);
    json.Key("price_headroom").Number(outcome.rightsizing->price_headroom);
    json.Key("recommended_sku_id")
        .String(outcome.rightsizing->recommended.sku.id);
    json.Key("monthly_savings").Number(outcome.rightsizing->monthly_savings);
    json.Key("annual_savings").Number(outcome.rightsizing->annual_savings);
    json.EndObject();
  } else if (!outcome.rightsizing_skip_reason.empty()) {
    // Right-sizing was requested but produced no assessment; the reason
    // must survive into the report rather than silently vanishing.
    json.Key("rightsizing_skipped").String(outcome.rightsizing_skip_reason);
  }
  json.EndObject();
  return json.str();
}

std::string RenderFleetAssessmentJson(
    const std::vector<std::string>& customer_ids,
    const std::vector<StatusOr<AssessmentOutcome>>& outcomes,
    const AssessmentJsonOptions& options) {
  std::size_t succeeded = 0;
  for (const auto& outcome : outcomes) succeeded += outcome.ok();
  // Per-assessment documents are emitted by RenderAssessmentJson and
  // spliced into the array verbatim (the writer emits compact JSON, so
  // concatenation stays well-formed).
  std::string out = "{\"fleet_size\":" + std::to_string(outcomes.size()) +
                    ",\"succeeded\":" + std::to_string(succeeded) +
                    ",\"failed\":" +
                    std::to_string(outcomes.size() - succeeded) +
                    ",\"assessments\":[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) out += ",";
    if (outcomes[i].ok()) {
      out += RenderAssessmentJson(*outcomes[i], options);
    } else {
      // Failed slots carry a machine-readable status so batch callers can
      // route on the code without parsing prose.
      JsonWriter error;
      error.BeginObject();
      error.Key("customer_id")
          .String(i < customer_ids.size() ? customer_ids[i] : "");
      error.Key("status").BeginObject();
      error.Key("code").String(
          StatusCodeToString(outcomes[i].status().code()));
      error.Key("message").String(outcomes[i].status().message());
      error.EndObject();
      error.EndObject();
      out += error.str();
    }
  }
  out += "]}";
  return out;
}

}  // namespace doppler::dma
