#ifndef DOPPLER_DMA_ASSESSMENT_H_
#define DOPPLER_DMA_ASSESSMENT_H_

#include <map>
#include <string>
#include <vector>

#include "dma/pipeline.h"
#include "util/csv.h"
#include "util/statusor.h"

namespace doppler::dma {

/// One row of the adoption report (paper Table 1): per period, how many
/// unique instances and databases were assessed and how many
/// recommendations were generated (an assessment can emit several —
/// elastic, baseline, and per-deployment variants).
struct AdoptionRow {
  std::string period;
  int unique_instances = 0;
  int unique_databases = 0;
  int recommendations = 0;
};

/// Batch front-end over the pipeline: processes assessment requests,
/// collects outcomes, and keeps the adoption counters the production
/// service reports. Periods are free-form labels (e.g. "Oct-21").
class AssessmentService {
 public:
  /// Borrows the pipeline, which must outlive the service.
  explicit AssessmentService(const SkuRecommendationPipeline* pipeline)
      : pipeline_(pipeline) {}

  /// Assesses one request under the given period label. Failed assessments
  /// are counted (an instance was seen) but yield an error.
  StatusOr<AssessmentOutcome> Assess(const std::string& period,
                                     const AssessmentRequest& request);

  /// Assesses a batch; failures are skipped (and tallied), successes
  /// returned in request order.
  std::vector<AssessmentOutcome> AssessBatch(
      const std::string& period,
      const std::vector<AssessmentRequest>& requests);

  /// Adoption rows in first-seen period order.
  std::vector<AdoptionRow> AdoptionReport() const;

  int failed_assessments() const { return failed_; }

  /// Exports assessment outcomes as the migration-plan CSV the DMA tool
  /// hands to stakeholders: one row per assessed instance with the elastic
  /// and baseline picks, costs and curve shape.
  static CsvTable OutcomesToCsv(const std::vector<AssessmentOutcome>& outcomes);

 private:
  const SkuRecommendationPipeline* pipeline_;
  std::vector<std::string> period_order_;
  std::map<std::string, AdoptionRow> periods_;
  int failed_ = 0;
};

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_ASSESSMENT_H_
