#include "dma/pipeline.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "util/logging.h"
#include "workload/population.h"

namespace doppler::dma {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;

/// Times one pipeline stage: emits an obs span (trace buffer + latency
/// histogram) and appends a per-request StageTiming to the outcome so the
/// breakdown ships with the assessment itself.
class StageScope {
 public:
  StageScope(const char* name, AssessmentOutcome* outcome)
      : span_(name),
        name_(name),
        outcome_(outcome),
        start_(std::chrono::steady_clock::now()) {}

  ~StageScope() {
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    outcome_->stage_timings.push_back({name_, seconds});
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  obs::ScopedSpan span_;
  const char* name_;
  AssessmentOutcome* outcome_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs) {
  return Create(std::move(inputs), Config());
}

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs, Config config) {
  if (inputs.catalog.empty()) {
    return InvalidArgumentError("static inputs carry an empty SKU catalog");
  }
  SkuRecommendationPipeline pipeline;
  pipeline.config_ = config;
  pipeline.catalog_ =
      std::make_unique<catalog::SkuCatalog>(std::move(inputs.catalog));
  pipeline.pricing_ = std::make_unique<catalog::DefaultPricing>();
  pipeline.estimator_ = std::make_unique<core::NonParametricEstimator>();
  pipeline.group_model_ =
      std::make_unique<core::GroupModel>(std::move(inputs.group_model));

  auto strategy = std::make_shared<core::ThresholdingStrategy>(config.rho);
  pipeline.db_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlDb));
  pipeline.mi_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlMi));

  pipeline.db_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      pipeline.estimator_.get(), pipeline.db_profiler_.get(),
      pipeline.group_model_.get());
  pipeline.mi_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      pipeline.estimator_.get(), pipeline.mi_profiler_.get(),
      pipeline.group_model_.get());
  pipeline.baseline_ = std::make_unique<core::BaselineRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      config.baseline_quantile);
  return pipeline;
}

StatusOr<AssessmentOutcome> SkuRecommendationPipeline::Assess(
    const AssessmentRequest& request) const {
  if (request.database_traces.empty()) {
    return InvalidArgumentError("assessment request carries no traces");
  }
  DOPPLER_TRACE_SPAN("pipeline.assess");
  static obs::Counter* const kAssessments =
      obs::DefaultMetrics().GetCounter("pipeline.assessments");
  kAssessments->Increment();

  AssessmentOutcome outcome;
  outcome.customer_id = request.customer_id;
  outcome.target = request.target;

  // The quality report starts from whatever ingestion already found (the
  // CLI's CSV-boundary gate) and accumulates the per-database gates.
  outcome.quality = request.ingest_quality;
  outcome.quality.policy = request.quality_policy;
  const bool pregated = outcome.quality.samples_in > 0;
  quality::GateOptions gate;
  gate.policy = request.quality_policy;
  quality::TraceQualityReport pipeline_gate;
  {
    StageScope stage("pipeline.preprocess", &outcome);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.instance_trace,
        preprocessing_.PrepareInstanceTrace(request.database_traces, gate,
                                            &pipeline_gate));
  }
  if (pregated) {
    // Ingestion already counted the raw samples; the in-pipeline re-gate
    // of the repaired trace contributes defect findings only.
    pipeline_gate.samples_in = 0;
    pipeline_gate.samples_out = 0;
  }
  outcome.quality.MergeFrom(pipeline_gate);

  // Degraded mode is judged exactly once, on the instance rollup, against
  // the profiling dimensions the target deployment expects.
  {
    StageScope stage("pipeline.quality", &outcome);
    quality::AssessDegradedMode(outcome.instance_trace.PresentDims(),
                                workload::ProfilingDims(request.target),
                                &outcome.quality);
  }
  if (outcome.quality.degraded) {
    static obs::Counter* const kDegraded =
        obs::DefaultMetrics().GetCounter("quality.degraded_assessments");
    kDegraded->Increment();
  }
  if (request.quality_policy == quality::QualityPolicy::kStrict &&
      outcome.quality.degraded) {
    std::string names;
    for (ResourceDim dim : outcome.quality.missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    return FailedPreconditionError(
        "strict quality policy: expected profiling dimensions missing from "
        "the trace: " +
        names);
  }

  // Default MI layout: one file sized to the observed allocation.
  catalog::FileLayout layout = request.layout;
  if (request.target == Deployment::kSqlMi && layout.files.empty()) {
    double size_gb = 32.0;
    if (outcome.instance_trace.Has(ResourceDim::kStorageGb)) {
      size_gb = std::max(
          1.0, stats::Max(outcome.instance_trace.Values(ResourceDim::kStorageGb)));
    }
    layout = catalog::UniformLayout(size_gb * 1.1, 1);
  }

  const core::ElasticRecommender& recommender =
      request.target == Deployment::kSqlDb ? *db_recommender_
                                           : *mi_recommender_;
  {
    StageScope stage("pipeline.recommend", &outcome);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.elastic,
        recommender.Recommend(outcome.instance_trace, request.target, layout));
  }
  DOPPLER_LOG(kDebug) << "elastic pick " << outcome.elastic.sku.id << " ("
                      << core::CurveShapeName(outcome.elastic.curve_shape)
                      << " curve) for " << outcome.customer_id;

  {
    StageScope stage("pipeline.baseline", &outcome);
    outcome.baseline =
        baseline_->Recommend(outcome.instance_trace, request.target);
  }

  if (request.compute_confidence) {
    StageScope stage("pipeline.confidence", &outcome);
    Rng rng(config_.confidence_seed);
    core::RecommendFn rerun =
        [&recommender, &request, &layout](const telemetry::PerfTrace& trace) {
          return recommender.Recommend(trace, request.target, layout);
        };
    DOPPLER_ASSIGN_OR_RETURN(
        core::ConfidenceResult confidence,
        core::ScoreConfidence(outcome.instance_trace, rerun,
                              config_.confidence, &rng));
    outcome.confidence = std::move(confidence);
  }

  if (!request.current_sku_id.empty()) {
    StageScope stage("pipeline.rightsizing", &outcome);
    StatusOr<core::RightSizingAssessment> rightsizing =
        core::AssessRightSizing(outcome.elastic.curve, request.current_sku_id);
    if (rightsizing.ok()) outcome.rightsizing = std::move(rightsizing).value();
  }
  return outcome;
}

}  // namespace doppler::dma
