#include "dma/pipeline.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "util/logging.h"
#include "workload/population.h"

namespace doppler::dma {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;

/// Times one pipeline stage: emits an obs span (trace buffer + latency
/// histogram) and records a per-request StageTiming through the context's
/// sink so the breakdown ships with the assessment itself.
class StageScope {
 public:
  StageScope(const char* name, TimingSink* sink)
      : span_(name),
        sink_(sink),
        slot_(sink->Open(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~StageScope() {
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    sink_->Close(slot_, seconds);
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  obs::ScopedSpan span_;
  TimingSink* sink_;
  std::size_t slot_;
  std::chrono::steady_clock::time_point start_;
};

// Emplaces the memoized order-statistics cache over the frozen instance
// trace on first use (recommend and baseline share it, in either order).
telemetry::TraceStatsCache* EnsureInstanceStats(RequestContext& ctx) {
  if (!ctx.instance_stats.has_value()) {
    ctx.instance_stats.emplace(ctx.outcome.instance_trace);
  }
  return &*ctx.instance_stats;
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case kStagePreprocess:
      return "pipeline.preprocess";
    case kStageQuality:
      return "pipeline.quality";
    case kStageLayout:
      return "pipeline.layout";
    case kStageRecommend:
      return "pipeline.recommend";
    case kStageBaseline:
      return "pipeline.baseline";
    case kStageConfidence:
      return "pipeline.confidence";
    case kStageRightsizing:
      return "pipeline.rightsizing";
  }
  return "pipeline.unknown";
}

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs) {
  return Create(std::move(inputs), Config());
}

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs, Config config) {
  if (inputs.catalog.empty()) {
    return InvalidArgumentError("static inputs carry an empty SKU catalog");
  }
  SkuRecommendationPipeline pipeline;
  pipeline.config_ = config;
  pipeline.pricing_ = std::make_unique<catalog::DefaultPricing>();
  // The whole SKU search space is compiled exactly once per pipeline:
  // per-deployment candidate sets in final (billed price, id) order with
  // memoized prices and capacities, plus the premium-disk limit table.
  // Every assessment afterwards reads borrowed views of this snapshot.
  pipeline.compiled_ = std::make_unique<const catalog::CompiledCatalog>(
      catalog::CompiledCatalog::Compile(std::move(inputs.catalog),
                                        pipeline.pricing_.get(),
                                        config.target));
  pipeline.estimator_ = std::make_unique<core::NonParametricEstimator>();
  pipeline.group_model_ =
      std::make_unique<core::GroupModel>(std::move(inputs.group_model));

  auto strategy = std::make_shared<core::ThresholdingStrategy>(config.rho);
  pipeline.db_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlDb));
  pipeline.mi_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlMi));

  pipeline.db_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.compiled_.get(), pipeline.estimator_.get(),
      pipeline.db_profiler_.get(), pipeline.group_model_.get());
  pipeline.mi_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.compiled_.get(), pipeline.estimator_.get(),
      pipeline.mi_profiler_.get(), pipeline.group_model_.get());
  pipeline.baseline_ = std::make_unique<core::BaselineRecommender>(
      pipeline.compiled_.get(), config.baseline_quantile);

  // Execution pool for the per-SKU probability scans. num_threads == 1 (or
  // auto on a single-core host) keeps the engine strictly serial; either
  // way the assessment bytes are identical.
  const int threads = config.num_threads == 0
                          ? exec::ThreadPool::HardwareConcurrency()
                          : config.num_threads;
  if (threads > 1) {
    pipeline.pool_ = std::make_unique<exec::ThreadPool>(threads);
    pipeline.db_recommender_->SetExecutor(pipeline.pool_.get());
    pipeline.mi_recommender_->SetExecutor(pipeline.pool_.get());
  }
  return pipeline;
}

Status SkuRecommendationPipeline::StagePreprocess(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  AssessmentOutcome& outcome = ctx.outcome;

  // The quality report starts from whatever ingestion already found (the
  // CLI's CSV-boundary gate) and accumulates the per-database gates.
  outcome.quality = request.ingest_quality;
  outcome.quality.policy = request.quality_policy;
  const bool pregated = outcome.quality.samples_in > 0;
  quality::GateOptions gate;
  gate.policy = request.quality_policy;
  {
    StageScope stage("pipeline.preprocess", &ctx.timings);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.instance_trace,
        preprocessing_.PrepareInstanceTrace(request.database_traces, gate,
                                            &ctx.pipeline_gate));
  }
  if (pregated) {
    // Ingestion already counted the raw samples; the in-pipeline re-gate
    // of the repaired trace contributes defect findings only.
    ctx.pipeline_gate.samples_in = 0;
    ctx.pipeline_gate.samples_out = 0;
  }
  outcome.quality.MergeFrom(ctx.pipeline_gate);
  return OkStatus();
}

Status SkuRecommendationPipeline::StageQuality(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  AssessmentOutcome& outcome = ctx.outcome;

  // Degraded mode is judged exactly once, on the instance rollup, against
  // the profiling dimensions the target deployment expects.
  {
    StageScope stage("pipeline.quality", &ctx.timings);
    quality::AssessDegradedMode(outcome.instance_trace.PresentDims(),
                                workload::ProfilingDims(request.target),
                                &outcome.quality);
  }
  if (outcome.quality.degraded) {
    static obs::Counter* const kDegraded =
        obs::DefaultMetrics().GetCounter("quality.degraded_assessments");
    kDegraded->Increment();
  }
  if (request.quality_policy == quality::QualityPolicy::kStrict &&
      outcome.quality.degraded) {
    std::string names;
    for (ResourceDim dim : outcome.quality.missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    return FailedPreconditionError(
        "strict quality policy: expected profiling dimensions missing from "
        "the trace: " +
        names);
  }
  return OkStatus();
}

Status SkuRecommendationPipeline::StageLayout(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  // Layout resolution is a handful of scalar ops, so it is deliberately
  // not a timed stage: the per-request stage_timings list is part of the
  // stable report surface.
  ctx.layout = request.layout;
  if (request.target == Deployment::kSqlMi && ctx.layout.files.empty()) {
    // Default MI layout: one file sized to the observed allocation.
    double size_gb = config_.mi_default_storage_gb;
    if (ctx.outcome.instance_trace.Has(ResourceDim::kStorageGb)) {
      size_gb = std::max(1.0, stats::Max(ctx.outcome.instance_trace.Values(
                                  ResourceDim::kStorageGb)));
    }
    ctx.layout =
        catalog::UniformLayout(size_gb * config_.mi_layout_headroom, 1);
  }
  return OkStatus();
}

Status SkuRecommendationPipeline::StageRecommend(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  AssessmentOutcome& outcome = ctx.outcome;
  const core::ElasticRecommender& recommender =
      request.target == Deployment::kSqlDb ? *db_recommender_
                                           : *mi_recommender_;
  // One memoized order-statistics view of the (now frozen) instance trace,
  // shared with the baseline so each dimension is sorted once per
  // assessment instead of once per consumer.
  telemetry::TraceStatsCache* instance_stats = EnsureInstanceStats(ctx);
  {
    StageScope stage("pipeline.recommend", &ctx.timings);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.elastic,
        recommender.Recommend(outcome.instance_trace, request.target,
                              ctx.layout, instance_stats));
  }
  DOPPLER_LOG(kDebug) << "elastic pick " << outcome.elastic.sku.id << " ("
                      << core::CurveShapeName(outcome.elastic.curve_shape)
                      << " curve) for " << outcome.customer_id;
  return OkStatus();
}

Status SkuRecommendationPipeline::StageBaseline(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  telemetry::TraceStatsCache* instance_stats = EnsureInstanceStats(ctx);
  StageScope stage("pipeline.baseline", &ctx.timings);
  ctx.outcome.baseline = baseline_->Recommend(ctx.outcome.instance_trace,
                                              request.target, instance_stats);
  return OkStatus();
}

Status SkuRecommendationPipeline::StageConfidence(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  if (!request.compute_confidence) return OkStatus();
  AssessmentOutcome& outcome = ctx.outcome;
  const core::ElasticRecommender& recommender =
      request.target == Deployment::kSqlDb ? *db_recommender_
                                           : *mi_recommender_;
  StageScope stage("pipeline.confidence", &ctx.timings);
  Rng rng(config_.confidence_seed);
  const catalog::FileLayout& layout = ctx.layout;
  // The scorer's first rerun evaluates the original instance trace: reuse
  // the assessment's memoized cache (sorted series + argsort feeding the
  // exceedance index) instead of re-sorting every dimension again. Each
  // bootstrap resample is a distinct trace and gets its own view.
  telemetry::TraceStatsCache* instance_stats = EnsureInstanceStats(ctx);
  const telemetry::PerfTrace* instance_trace = &outcome.instance_trace;
  core::RecommendFn rerun =
      [&recommender, &request, &layout, instance_stats,
       instance_trace](const telemetry::PerfTrace& trace) {
        if (&trace == instance_trace) {
          return recommender.Recommend(trace, request.target, layout,
                                       instance_stats);
        }
        telemetry::TraceStatsCache resample_stats(trace);
        return recommender.Recommend(trace, request.target, layout,
                                     &resample_stats);
      };
  DOPPLER_ASSIGN_OR_RETURN(
      core::ConfidenceResult confidence,
      core::ScoreConfidence(outcome.instance_trace, rerun, config_.confidence,
                            &rng));
  outcome.confidence = std::move(confidence);
  return OkStatus();
}

Status SkuRecommendationPipeline::StageRightsizing(RequestContext& ctx) const {
  const AssessmentRequest& request = *ctx.request;
  if (request.current_sku_id.empty()) return OkStatus();
  StageScope stage("pipeline.rightsizing", &ctx.timings);
  StatusOr<core::RightSizingAssessment> rightsizing =
      core::AssessRightSizing(ctx.outcome.elastic.curve,
                              request.current_sku_id);
  if (rightsizing.ok()) {
    ctx.outcome.rightsizing = std::move(rightsizing).value();
  } else {
    // The request asked for right-sizing; a failure must not vanish.
    // Record why the stage produced no assessment so the report (and its
    // readers) can surface it.
    ctx.outcome.rightsizing_skip_reason = rightsizing.status().ToString();
    static obs::Counter* const kSkipped =
        obs::DefaultMetrics().GetCounter("pipeline.rightsizing_skipped");
    kSkipped->Increment();
  }
  return OkStatus();
}

AssessmentOutcome SkuRecommendationPipeline::Finish(RequestContext& ctx) const {
  ctx.timings.DrainTo(&ctx.outcome.stage_timings);
  ctx.outcome.completed_stages = ctx.completed_stages;
  return std::move(ctx.outcome);
}

Status SkuRecommendationPipeline::RunStages(RequestContext& ctx,
                                            StageMask stages) const {
  struct StageEntry {
    Stage stage;
    Status (SkuRecommendationPipeline::*run)(RequestContext&) const;
  };
  static constexpr StageEntry kStageTable[] = {
      {kStagePreprocess, &SkuRecommendationPipeline::StagePreprocess},
      {kStageQuality, &SkuRecommendationPipeline::StageQuality},
      {kStageLayout, &SkuRecommendationPipeline::StageLayout},
      {kStageRecommend, &SkuRecommendationPipeline::StageRecommend},
      {kStageBaseline, &SkuRecommendationPipeline::StageBaseline},
      {kStageConfidence, &SkuRecommendationPipeline::StageConfidence},
      {kStageRightsizing, &SkuRecommendationPipeline::StageRightsizing},
  };
  const AssessmentRequest& request = *ctx.request;
  // The deadline is only polled when it can actually expire, keeping the
  // unbounded (CLI one-shot) path branch-light and byte-identical.
  const bool bounded = request.deadline.IsBounded();
  for (const StageEntry& entry : kStageTable) {
    if (!(stages & entry.stage)) continue;
    const char* name = StageName(entry.stage);
    // Hook first, check second: a hook that cancels the deadline at this
    // boundary is observed by the very next check, which is what makes
    // deadline-expiry tests schedule-independent.
    if (request.stage_boundary_hook) request.stage_boundary_hook(name);
    if (bounded && request.deadline.IsExpired()) {
      static obs::Counter* const kExpired =
          obs::DefaultMetrics().GetCounter("pipeline.deadline_expired");
      kExpired->Increment();
      return DeadlineExceededError(std::string("deadline expired before ") +
                                   name);
    }
    DOPPLER_RETURN_IF_ERROR((this->*entry.run)(ctx));
    ctx.completed_stages |= entry.stage;
  }
  return OkStatus();
}

StatusOr<AssessmentOutcome> SkuRecommendationPipeline::AssessStages(
    const AssessmentRequest& request, StageMask stages) const {
  if (request.database_traces.empty()) {
    return InvalidArgumentError("assessment request carries no traces");
  }
  DOPPLER_TRACE_SPAN("pipeline.assess");
  static obs::Counter* const kAssessments =
      obs::DefaultMetrics().GetCounter("pipeline.assessments");
  kAssessments->Increment();

  RequestContext ctx(request);
  DOPPLER_RETURN_IF_ERROR(RunStages(ctx, stages));
  return Finish(ctx);
}

StatusOr<AssessmentOutcome> SkuRecommendationPipeline::Assess(
    const AssessmentRequest& request) const {
  return AssessStages(request, kAllStages);
}

}  // namespace doppler::dma
