#include "dma/pipeline.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "telemetry/trace_stats.h"
#include "util/logging.h"
#include "workload/population.h"

namespace doppler::dma {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;

/// Collects per-request stage timings. StageScope used to append straight
/// to AssessmentOutcome::stage_timings from its destructor, which is a data
/// race the moment any stage runs work on pool threads that itself opens a
/// scope. The sink serialises writes behind a mutex and keeps entries in
/// scope-OPEN order (a slot is reserved on entry), so the drained list is
/// order-stable no matter which thread closes a scope first.
class TimingSink {
 public:
  /// Reserves a slot in entry order and returns its index.
  std::size_t Open(const char* stage) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({stage, 0.0});
    return entries_.size() - 1;
  }

  void Close(std::size_t slot, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[slot].seconds = seconds;
  }

  /// Moves the collected timings (entry order) into `out`.
  void DrainTo(std::vector<StageTiming>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    *out = std::move(entries_);
    entries_.clear();
  }

 private:
  std::mutex mu_;
  std::vector<StageTiming> entries_;
};

/// Times one pipeline stage: emits an obs span (trace buffer + latency
/// histogram) and records a per-request StageTiming through the sink so the
/// breakdown ships with the assessment itself.
class StageScope {
 public:
  StageScope(const char* name, TimingSink* sink)
      : span_(name),
        sink_(sink),
        slot_(sink->Open(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~StageScope() {
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start_)
            .count();
    sink_->Close(slot_, seconds);
  }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  obs::ScopedSpan span_;
  TimingSink* sink_;
  std::size_t slot_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs) {
  return Create(std::move(inputs), Config());
}

StatusOr<SkuRecommendationPipeline> SkuRecommendationPipeline::Create(
    StaticInputs inputs, Config config) {
  if (inputs.catalog.empty()) {
    return InvalidArgumentError("static inputs carry an empty SKU catalog");
  }
  SkuRecommendationPipeline pipeline;
  pipeline.config_ = config;
  pipeline.catalog_ =
      std::make_unique<catalog::SkuCatalog>(std::move(inputs.catalog));
  pipeline.pricing_ = std::make_unique<catalog::DefaultPricing>();
  pipeline.estimator_ = std::make_unique<core::NonParametricEstimator>();
  pipeline.group_model_ =
      std::make_unique<core::GroupModel>(std::move(inputs.group_model));

  auto strategy = std::make_shared<core::ThresholdingStrategy>(config.rho);
  pipeline.db_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlDb));
  pipeline.mi_profiler_ = std::make_unique<core::CustomerProfiler>(
      strategy, workload::ProfilingDims(Deployment::kSqlMi));

  pipeline.db_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      pipeline.estimator_.get(), pipeline.db_profiler_.get(),
      pipeline.group_model_.get());
  pipeline.mi_recommender_ = std::make_unique<core::ElasticRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      pipeline.estimator_.get(), pipeline.mi_profiler_.get(),
      pipeline.group_model_.get());
  pipeline.baseline_ = std::make_unique<core::BaselineRecommender>(
      pipeline.catalog_.get(), pipeline.pricing_.get(),
      config.baseline_quantile);

  // Execution pool for the per-SKU probability scans. num_threads == 1 (or
  // auto on a single-core host) keeps the engine strictly serial; either
  // way the assessment bytes are identical.
  const int threads = config.num_threads == 0
                          ? exec::ThreadPool::HardwareConcurrency()
                          : config.num_threads;
  if (threads > 1) {
    pipeline.pool_ = std::make_unique<exec::ThreadPool>(threads);
    pipeline.db_recommender_->SetExecutor(pipeline.pool_.get());
    pipeline.mi_recommender_->SetExecutor(pipeline.pool_.get());
  }
  return pipeline;
}

StatusOr<AssessmentOutcome> SkuRecommendationPipeline::Assess(
    const AssessmentRequest& request) const {
  if (request.database_traces.empty()) {
    return InvalidArgumentError("assessment request carries no traces");
  }
  DOPPLER_TRACE_SPAN("pipeline.assess");
  static obs::Counter* const kAssessments =
      obs::DefaultMetrics().GetCounter("pipeline.assessments");
  kAssessments->Increment();

  AssessmentOutcome outcome;
  outcome.customer_id = request.customer_id;
  outcome.target = request.target;
  TimingSink timings;

  // The quality report starts from whatever ingestion already found (the
  // CLI's CSV-boundary gate) and accumulates the per-database gates.
  outcome.quality = request.ingest_quality;
  outcome.quality.policy = request.quality_policy;
  const bool pregated = outcome.quality.samples_in > 0;
  quality::GateOptions gate;
  gate.policy = request.quality_policy;
  quality::TraceQualityReport pipeline_gate;
  {
    StageScope stage("pipeline.preprocess", &timings);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.instance_trace,
        preprocessing_.PrepareInstanceTrace(request.database_traces, gate,
                                            &pipeline_gate));
  }
  if (pregated) {
    // Ingestion already counted the raw samples; the in-pipeline re-gate
    // of the repaired trace contributes defect findings only.
    pipeline_gate.samples_in = 0;
    pipeline_gate.samples_out = 0;
  }
  outcome.quality.MergeFrom(pipeline_gate);

  // Degraded mode is judged exactly once, on the instance rollup, against
  // the profiling dimensions the target deployment expects.
  {
    StageScope stage("pipeline.quality", &timings);
    quality::AssessDegradedMode(outcome.instance_trace.PresentDims(),
                                workload::ProfilingDims(request.target),
                                &outcome.quality);
  }
  if (outcome.quality.degraded) {
    static obs::Counter* const kDegraded =
        obs::DefaultMetrics().GetCounter("quality.degraded_assessments");
    kDegraded->Increment();
  }
  if (request.quality_policy == quality::QualityPolicy::kStrict &&
      outcome.quality.degraded) {
    std::string names;
    for (ResourceDim dim : outcome.quality.missing_dims) {
      if (!names.empty()) names += ", ";
      names += catalog::ResourceDimName(dim);
    }
    return FailedPreconditionError(
        "strict quality policy: expected profiling dimensions missing from "
        "the trace: " +
        names);
  }

  // Default MI layout: one file sized to the observed allocation.
  catalog::FileLayout layout = request.layout;
  if (request.target == Deployment::kSqlMi && layout.files.empty()) {
    double size_gb = 32.0;
    if (outcome.instance_trace.Has(ResourceDim::kStorageGb)) {
      size_gb = std::max(
          1.0, stats::Max(outcome.instance_trace.Values(ResourceDim::kStorageGb)));
    }
    layout = catalog::UniformLayout(size_gb * 1.1, 1);
  }

  const core::ElasticRecommender& recommender =
      request.target == Deployment::kSqlDb ? *db_recommender_
                                           : *mi_recommender_;
  // One memoized order-statistics view of the (now frozen) instance trace,
  // shared by profiling and the baseline so each dimension is sorted once
  // per assessment instead of once per consumer.
  telemetry::TraceStatsCache instance_stats(outcome.instance_trace);
  {
    StageScope stage("pipeline.recommend", &timings);
    DOPPLER_ASSIGN_OR_RETURN(
        outcome.elastic,
        recommender.Recommend(outcome.instance_trace, request.target, layout,
                              &instance_stats));
  }
  DOPPLER_LOG(kDebug) << "elastic pick " << outcome.elastic.sku.id << " ("
                      << core::CurveShapeName(outcome.elastic.curve_shape)
                      << " curve) for " << outcome.customer_id;

  {
    StageScope stage("pipeline.baseline", &timings);
    outcome.baseline = baseline_->Recommend(outcome.instance_trace,
                                            request.target, &instance_stats);
  }

  if (request.compute_confidence) {
    StageScope stage("pipeline.confidence", &timings);
    Rng rng(config_.confidence_seed);
    core::RecommendFn rerun =
        [&recommender, &request, &layout](const telemetry::PerfTrace& trace) {
          // Each bootstrap resample is a distinct trace, so it gets its own
          // memoized view for the profiling re-run.
          telemetry::TraceStatsCache resample_stats(trace);
          return recommender.Recommend(trace, request.target, layout,
                                       &resample_stats);
        };
    DOPPLER_ASSIGN_OR_RETURN(
        core::ConfidenceResult confidence,
        core::ScoreConfidence(outcome.instance_trace, rerun,
                              config_.confidence, &rng));
    outcome.confidence = std::move(confidence);
  }

  if (!request.current_sku_id.empty()) {
    StageScope stage("pipeline.rightsizing", &timings);
    StatusOr<core::RightSizingAssessment> rightsizing =
        core::AssessRightSizing(outcome.elastic.curve, request.current_sku_id);
    if (rightsizing.ok()) outcome.rightsizing = std::move(rightsizing).value();
  }
  timings.DrainTo(&outcome.stage_timings);
  return outcome;
}

}  // namespace doppler::dma
