#ifndef DOPPLER_DMA_CLI_H_
#define DOPPLER_DMA_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace doppler::dma {

/// Parsed command line: a command word plus --flag value pairs. The
/// doppler_cli binary is a thin main() around this, so the whole front-end
/// is unit-testable.
struct CliOptions {
  std::string command;
  std::map<std::string, std::string> flags;

  /// Flag value or default.
  std::string Get(const std::string& name, const std::string& fallback = "")
      const;
  /// True when the flag is present (with any value, including empty).
  bool Has(const std::string& name) const;
};

/// Parses `args` (without argv[0]). The first token is the command; the
/// rest must be --flag [value] pairs (a flag followed by another flag or
/// end of input is boolean). Fails on empty input or malformed tokens.
StatusOr<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

/// Executes a parsed command, writing human output to `out`. Returns the
/// process exit code (0 on success). Commands:
///
///   help                                     usage text
///   catalog  [--extended] [--out skus.csv]   dump the generated catalog
///   fit-profiles --deployment db|mi [--customers N] [--seed S]
///                [--out profiles.csv]        offline group-model fit
///   assess   --trace t.csv [--target db|mi] [--catalog skus.csv]
///            [--profiles p.csv] [--current-sku ID] [--confidence]
///   forecast --trace t.csv [--current-sku ID] [--months N]
///   tco      --trace t.csv                   on-prem vs cloud comparison
///   synth    --trace t.csv                   benchmark-mix synthesis
StatusOr<int> RunCli(const CliOptions& options, std::ostream& out);

/// Maps a non-OK Status to the CLI's typed exit code so scripted callers
/// can branch on the failure class: 3 invalid input, 4 not found, 5 failed
/// precondition (e.g. a strict-quality rejection), 6 out of range,
/// 7 unavailable, 8 internal. OK maps to 0.
int ExitCodeForStatus(const Status& status);

/// Convenience: parse + run. Usage errors print to `out` and return 2;
/// run errors return ExitCodeForStatus of the failure.
int CliMain(const std::vector<std::string>& args, std::ostream& out);

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_CLI_H_
