#include "dma/multi_target.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "catalog/compiled_catalog.h"
#include "core/autoscale.h"
#include "core/negotiability.h"
#include "core/profiler.h"
#include "core/throttling.h"
#include "dma/preprocess.h"
#include "stats/descriptive.h"
#include "util/json_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/population.h"

namespace doppler::dma {

namespace {

// Assesses one target end to end: compile its spec, fit its offline group
// model, recommend, then cost the pick under every pricing model the spec
// offers.
TargetAssessment AssessOneTarget(const telemetry::PerfTrace& trace,
                                 const catalog::TargetSpec& spec,
                                 const CrossTargetOptions& options) {
  TargetAssessment assessment;
  assessment.target_id = spec.id;
  assessment.display_name = spec.display_name;

  if (spec.deployment != catalog::Deployment::kSqlDb) {
    assessment.status = FailedPreconditionError(
        "cross-target assess supports kSqlDb targets (MI-style targets "
        "need a file layout per target)");
    return assessment;
  }

  const catalog::DefaultPricing pricing;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::CompileTarget(spec, &pricing);
  const core::NonParametricEstimator estimator;

  StatusOr<core::GroupModel> model = FitGroupModelOffline(
      compiled.catalog(), pricing, estimator, spec.deployment,
      options.training_customers, options.training_seed);
  if (!model.ok()) {
    assessment.status = model.status();
    return assessment;
  }
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(spec.deployment));
  const core::ElasticRecommender recommender(&compiled, &estimator, &profiler,
                                             &*model);
  StatusOr<core::Recommendation> recommendation =
      recommender.RecommendDb(trace);
  if (!recommendation.ok()) {
    assessment.status = recommendation.status();
    return assessment;
  }
  assessment.recommendation = *std::move(recommendation);
  const core::Recommendation& rec = assessment.recommendation;

  for (const catalog::TargetPricingModel& model_spec : spec.pricing_models) {
    TargetPricingEstimate estimate;
    estimate.model = model_spec.model;
    switch (model_spec.model) {
      case catalog::PricingModel::kPayGo:
        estimate.monthly_cost = rec.monthly_cost;
        estimate.throttling_probability = rec.throttling_probability;
        break;
      case catalog::PricingModel::kReserved:
        estimate.monthly_cost =
            rec.monthly_cost * (1.0 - model_spec.reserved_discount);
        estimate.throttling_probability = rec.throttling_probability;
        estimate.detail =
            FormatPercent(model_spec.reserved_discount, 0) +
            " reserved discount";
        break;
      case catalog::PricingModel::kServerless: {
        // Cost the recommended shape as if it autoscaled: simulate the
        // lagging autoscaler over the CPU column, bill the mean
        // provisioned capacity, and evaluate throttling against the
        // MOVING provisioned series (Eq. 1 with R_cpu(t)).
        StatusOr<core::AutoscaleSimulation> sim =
            core::SimulateServerlessAutoscale(trace, rec.sku,
                                              model_spec.autoscale);
        if (!sim.ok()) continue;  // e.g. no CPU column: no serverless row.
        StatusOr<double> probability = estimator.ProbabilityMoving(
            trace, rec.sku.Capacities(), sim->capacity);
        if (!probability.ok()) continue;
        estimate.monthly_cost = sim->monthly_cost;
        estimate.throttling_probability = *probability;
        estimate.detail = "autoscale mean " +
                          FormatDouble(sim->mean_provisioned_vcores, 1) +
                          " vCores";
        break;
      }
    }
    assessment.pricing.push_back(std::move(estimate));
  }
  return assessment;
}

}  // namespace

StatusOr<CrossTargetReport> AssessAcrossTargets(
    const telemetry::PerfTrace& trace,
    const std::vector<const catalog::TargetSpec*>& targets,
    const CrossTargetOptions& options) {
  if (trace.num_samples() == 0) {
    return InvalidArgumentError("performance trace is empty");
  }
  if (targets.empty()) return InvalidArgumentError("no targets to assess");

  CrossTargetReport report;
  const double storage_gb =
      trace.Has(catalog::ResourceDim::kStorageGb)
          ? stats::Max(trace.Values(catalog::ResourceDim::kStorageGb))
          : 0.0;
  report.on_prem_monthly = options.on_prem.MonthlyCost(storage_gb);

  for (const catalog::TargetSpec* spec : targets) {
    if (spec == nullptr) return InvalidArgumentError("null target spec");
    report.targets.push_back(AssessOneTarget(trace, *spec, options));
  }

  for (std::size_t i = 0; i < report.targets.size(); ++i) {
    const TargetAssessment& target = report.targets[i];
    if (!target.status.ok()) continue;
    for (const TargetPricingEstimate& estimate : target.pricing) {
      if (report.best_index < 0 || estimate.monthly_cost < report.best_monthly) {
        report.best_index = static_cast<int>(i);
        report.best_model = estimate.model;
        report.best_monthly = estimate.monthly_cost;
      }
    }
  }
  return report;
}

StatusOr<std::vector<const catalog::TargetSpec*>> ResolveTargets(
    const std::string& comma_separated_ids) {
  std::vector<const catalog::TargetSpec*> specs;
  std::stringstream stream(comma_separated_ids);
  std::string id;
  while (std::getline(stream, id, ',')) {
    id = std::string(Trim(id));
    if (id.empty()) continue;
    const catalog::TargetSpec* spec =
        catalog::TargetRegistry::BuiltIns().Find(id);
    if (spec == nullptr) {
      std::string known;
      for (const catalog::TargetSpec& built_in :
           catalog::TargetRegistry::BuiltIns().specs()) {
        if (!known.empty()) known += ", ";
        known += built_in.id;
      }
      return InvalidArgumentError("unknown target '" + id +
                                  "' (registered: " + known + ")");
    }
    specs.push_back(spec);
  }
  if (specs.empty()) {
    return InvalidArgumentError("no target ids given (expected e.g. "
                                "--targets azure-db,aws-rds)");
  }
  return specs;
}

std::string RenderCrossTargetReport(const CrossTargetReport& report) {
  std::ostringstream out;
  TablePrinter table({"Target", "Pricing model", "Recommended SKU", "Monthly",
                      "Throttling", "Detail"});
  table.AddRow({"On-premises", "-", "(current estate)",
                FormatDollars(report.on_prem_monthly, 0), "-", "-"});
  for (std::size_t i = 0; i < report.targets.size(); ++i) {
    const TargetAssessment& target = report.targets[i];
    if (!target.status.ok()) {
      table.AddRow({target.display_name, "-", "(failed)", "-", "-",
                    std::string(target.status.message())});
      continue;
    }
    for (const TargetPricingEstimate& estimate : target.pricing) {
      const bool best = static_cast<int>(i) == report.best_index &&
                        estimate.model == report.best_model;
      table.AddRow({target.display_name,
                    std::string(catalog::PricingModelName(estimate.model)) +
                        (best ? "  <== best" : ""),
                    // The raw id, not DisplayName(): display names encode
                    // the Azure tier/hardware nomenclature, which reads
                    // wrong for non-Azure targets.
                    target.recommendation.sku.id,
                    FormatDollars(estimate.monthly_cost, 0),
                    FormatPercent(estimate.throttling_probability, 1),
                    estimate.detail.empty() ? "-" : estimate.detail});
    }
  }
  out << table.ToString();
  if (report.best_index >= 0) {
    const TargetAssessment& best = report.targets[report.best_index];
    const double savings = report.on_prem_monthly - report.best_monthly;
    out << "\nBest option: " << best.display_name << " under "
        << catalog::PricingModelName(report.best_model) << " at "
        << FormatDollars(report.best_monthly, 0) << "/month";
    if (savings > 0.0) {
      out << " — saves " << FormatDollars(savings, 0)
          << "/month over staying on-premises.\n";
    } else {
      out << " — staying on-premises is cheaper by "
          << FormatDollars(-savings, 0) << "/month.\n";
    }
  } else {
    out << "\nNo target produced a recommendation.\n";
  }
  return out.str();
}

std::string RenderCrossTargetJson(const CrossTargetReport& report) {
  JsonWriter json;
  json.BeginObject();
  json.Key("on_prem_monthly").Number(report.on_prem_monthly);
  if (report.best_index >= 0) {
    json.Key("best").BeginObject();
    json.Key("target").String(report.targets[report.best_index].target_id);
    json.Key("pricing_model")
        .String(catalog::PricingModelName(report.best_model));
    json.Key("monthly_cost").Number(report.best_monthly);
    json.EndObject();
  } else {
    json.Key("best").Null();
  }
  json.Key("targets").BeginArray();
  for (const TargetAssessment& target : report.targets) {
    json.BeginObject();
    json.Key("id").String(target.target_id);
    json.Key("display_name").String(target.display_name);
    json.Key("ok").Bool(target.status.ok());
    if (!target.status.ok()) {
      json.Key("error").String(std::string(target.status.message()));
    } else {
      json.Key("recommendation").BeginObject();
      json.Key("sku").String(target.recommendation.sku.id);
      json.Key("display_name")
          .String(target.recommendation.sku.DisplayName());
      json.Key("monthly_cost").Number(target.recommendation.monthly_cost);
      json.Key("throttling_probability")
          .Number(target.recommendation.throttling_probability);
      json.EndObject();
      json.Key("pricing").BeginArray();
      for (const TargetPricingEstimate& estimate : target.pricing) {
        json.BeginObject();
        json.Key("model").String(catalog::PricingModelName(estimate.model));
        json.Key("monthly_cost").Number(estimate.monthly_cost);
        json.Key("throttling_probability")
            .Number(estimate.throttling_probability);
        if (!estimate.detail.empty()) {
          json.Key("detail").String(estimate.detail);
        }
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace doppler::dma
