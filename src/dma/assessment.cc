#include "dma/assessment.h"

#include "util/string_util.h"

namespace doppler::dma {

StatusOr<AssessmentOutcome> AssessmentService::Assess(
    const std::string& period, const AssessmentRequest& request) {
  if (periods_.find(period) == periods_.end()) {
    period_order_.push_back(period);
    periods_[period].period = period;
  }
  AdoptionRow& row = periods_[period];
  ++row.unique_instances;
  row.unique_databases += static_cast<int>(request.database_traces.size());

  StatusOr<AssessmentOutcome> outcome = pipeline_->Assess(request);
  if (!outcome.ok()) {
    ++failed_;
    return outcome;
  }
  // Elastic always produces one recommendation; the baseline counts when
  // it found a SKU.
  row.recommendations += outcome->baseline.ok() ? 2 : 1;
  return outcome;
}

std::vector<AssessmentOutcome> AssessmentService::AssessBatch(
    const std::string& period,
    const std::vector<AssessmentRequest>& requests) {
  std::vector<AssessmentOutcome> outcomes;
  outcomes.reserve(requests.size());
  for (const AssessmentRequest& request : requests) {
    StatusOr<AssessmentOutcome> outcome = Assess(period, request);
    if (outcome.ok()) outcomes.push_back(std::move(outcome).value());
  }
  return outcomes;
}

std::vector<AdoptionRow> AssessmentService::AdoptionReport() const {
  std::vector<AdoptionRow> rows;
  rows.reserve(period_order_.size());
  for (const std::string& period : period_order_) {
    rows.push_back(periods_.at(period));
  }
  return rows;
}

CsvTable AssessmentService::OutcomesToCsv(
    const std::vector<AssessmentOutcome>& outcomes) {
  CsvTable table({"customer_id", "target", "elastic_sku", "elastic_monthly",
                  "elastic_throttling", "curve_shape", "baseline_sku",
                  "baseline_monthly", "confidence", "over_provisioned",
                  "annual_savings"});
  for (const AssessmentOutcome& outcome : outcomes) {
    std::vector<std::string> row;
    row.push_back(outcome.customer_id);
    row.emplace_back(catalog::DeploymentName(outcome.target));
    row.push_back(outcome.elastic.sku.id);
    row.push_back(FormatDouble(outcome.elastic.monthly_cost, 2));
    row.push_back(FormatDouble(outcome.elastic.throttling_probability, 4));
    row.emplace_back(core::CurveShapeName(outcome.elastic.curve_shape));
    row.push_back(outcome.baseline.ok() ? outcome.baseline->sku.id : "");
    row.push_back(outcome.baseline.ok()
                      ? FormatDouble(outcome.baseline->monthly_cost, 2)
                      : "");
    row.push_back(outcome.confidence.has_value()
                      ? FormatDouble(outcome.confidence->score, 3)
                      : "");
    row.push_back(outcome.rightsizing.has_value()
                      ? (outcome.rightsizing->over_provisioned ? "1" : "0")
                      : "");
    row.push_back(outcome.rightsizing.has_value()
                      ? FormatDouble(outcome.rightsizing->annual_savings, 2)
                      : "");
    (void)table.AddRow(std::move(row));
  }
  return table;
}

}  // namespace doppler::dma
