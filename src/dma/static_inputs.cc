#include "dma/static_inputs.h"

#include <cstdlib>

#include "util/string_util.h"

namespace doppler::dma {

namespace {

StatusOr<double> ParseNumber(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return InvalidArgumentError("not a number: '" + text + "'");
  }
  return value;
}

StatusOr<int> ParseInt(const std::string& text) {
  DOPPLER_ASSIGN_OR_RETURN(double value, ParseNumber(text));
  return static_cast<int>(value);
}

template <typename Enum>
StatusOr<Enum> ParseEnum(const std::string& text,
                         std::initializer_list<Enum> values,
                         const char* (*name)(Enum)) {
  for (Enum value : values) {
    if (text == name(value)) return value;
  }
  return InvalidArgumentError("unknown enum value '" + text + "'");
}

}  // namespace

CsvTable GroupModelToCsv(const core::GroupModel& model) {
  CsvTable table({"group_id", "count", "mean_probability",
                  "std_probability"});
  // The global mean travels as a pseudo-row keyed -1.
  (void)table.AddRow({"-1", "0", FormatDouble(model.global_mean(), 9), "0"});
  for (const core::GroupStats& stats : model.AllGroups()) {
    (void)table.AddRow({std::to_string(stats.group_id),
                        std::to_string(stats.count),
                        FormatDouble(stats.mean_probability, 9),
                        FormatDouble(stats.std_probability, 9)});
  }
  return table;
}

StatusOr<core::GroupModel> GroupModelFromCsv(const CsvTable& table) {
  DOPPLER_ASSIGN_OR_RETURN(std::size_t id_col, table.ColumnIndex("group_id"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t count_col, table.ColumnIndex("count"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t mean_col,
                           table.ColumnIndex("mean_probability"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t std_col,
                           table.ColumnIndex("std_probability"));

  double global_mean = 0.0;
  std::vector<core::GroupStats> stats;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    DOPPLER_ASSIGN_OR_RETURN(int group_id, ParseInt(table.row(r)[id_col]));
    DOPPLER_ASSIGN_OR_RETURN(double mean, ParseNumber(table.row(r)[mean_col]));
    if (group_id < 0) {
      global_mean = mean;
      continue;
    }
    core::GroupStats group;
    group.group_id = group_id;
    DOPPLER_ASSIGN_OR_RETURN(group.count, ParseInt(table.row(r)[count_col]));
    group.mean_probability = mean;
    DOPPLER_ASSIGN_OR_RETURN(group.std_probability,
                             ParseNumber(table.row(r)[std_col]));
    stats.push_back(group);
  }
  return core::GroupModel::FromStats(std::move(stats), global_mean);
}

Status SaveGroupModel(const core::GroupModel& model, const std::string& path) {
  return GroupModelToCsv(model).WriteFile(path);
}

StatusOr<core::GroupModel> LoadGroupModel(const std::string& path) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return GroupModelFromCsv(table);
}

CsvTable LayoutToCsv(const catalog::FileLayout& layout) {
  CsvTable table({"name", "size_gib"});
  for (const catalog::DatabaseFile& file : layout.files) {
    (void)table.AddRow({file.name, FormatDouble(file.size_gib, 6)});
  }
  return table;
}

StatusOr<catalog::FileLayout> LayoutFromCsv(const CsvTable& table) {
  DOPPLER_ASSIGN_OR_RETURN(std::size_t name_col, table.ColumnIndex("name"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t size_col,
                           table.ColumnIndex("size_gib"));
  catalog::FileLayout layout;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    catalog::DatabaseFile file;
    file.name = table.row(r)[name_col];
    DOPPLER_ASSIGN_OR_RETURN(file.size_gib,
                             ParseNumber(table.row(r)[size_col]));
    if (file.size_gib <= 0.0) {
      return InvalidArgumentError("file '" + file.name +
                                  "' has non-positive size");
    }
    layout.files.push_back(std::move(file));
  }
  if (layout.files.empty()) {
    return InvalidArgumentError("layout CSV carries no files");
  }
  return layout;
}

StatusOr<catalog::FileLayout> LoadLayout(const std::string& path) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return LayoutFromCsv(table);
}

CsvTable CatalogToCsv(const catalog::SkuCatalog& skus) {
  CsvTable table({"id", "deployment", "tier", "hardware", "vcores",
                  "max_memory_gb", "max_data_gb", "max_iops",
                  "max_log_rate_mbps", "min_io_latency_ms", "max_workers",
                  "price_per_hour", "serverless", "min_vcores",
                  "price_per_vcore_hour"});
  for (const catalog::Sku& sku : skus.skus()) {
    (void)table.AddRow(
        {sku.id, catalog::DeploymentName(sku.deployment),
         catalog::ServiceTierName(sku.tier),
         catalog::HardwareGenName(sku.hardware), std::to_string(sku.vcores),
         FormatDouble(sku.max_memory_gb, 6), FormatDouble(sku.max_data_gb, 6),
         FormatDouble(sku.max_iops, 6),
         FormatDouble(sku.max_log_rate_mbps, 6),
         FormatDouble(sku.min_io_latency_ms, 6),
         FormatDouble(sku.max_workers, 6),
         FormatDouble(sku.price_per_hour, 6),
         sku.serverless ? "1" : "0", FormatDouble(sku.min_vcores, 6),
         FormatDouble(sku.price_per_vcore_hour, 6)});
  }
  return table;
}

StatusOr<catalog::SkuCatalog> CatalogFromCsv(const CsvTable& table) {
  auto column = [&](const char* name) { return table.ColumnIndex(name); };
  DOPPLER_ASSIGN_OR_RETURN(std::size_t id_col, column("id"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t deployment_col, column("deployment"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t tier_col, column("tier"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t hardware_col, column("hardware"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t vcores_col, column("vcores"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t memory_col, column("max_memory_gb"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t data_col, column("max_data_gb"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t iops_col, column("max_iops"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t log_col, column("max_log_rate_mbps"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t latency_col,
                           column("min_io_latency_ms"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t workers_col, column("max_workers"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t price_col, column("price_per_hour"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t serverless_col, column("serverless"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t min_vcores_col, column("min_vcores"));
  DOPPLER_ASSIGN_OR_RETURN(std::size_t vcore_rate_col,
                           column("price_per_vcore_hour"));

  catalog::SkuCatalog skus;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const std::vector<std::string>& row = table.row(r);
    catalog::Sku sku;
    sku.id = row[id_col];
    DOPPLER_ASSIGN_OR_RETURN(
        sku.deployment,
        ParseEnum(row[deployment_col],
                  {catalog::Deployment::kSqlDb, catalog::Deployment::kSqlMi,
                   catalog::Deployment::kSqlVm},
                  catalog::DeploymentName));
    DOPPLER_ASSIGN_OR_RETURN(
        sku.tier, ParseEnum(row[tier_col],
                            {catalog::ServiceTier::kGeneralPurpose,
                             catalog::ServiceTier::kBusinessCritical,
                             catalog::ServiceTier::kHyperscale},
                            catalog::ServiceTierName));
    DOPPLER_ASSIGN_OR_RETURN(
        sku.hardware,
        ParseEnum(row[hardware_col],
                  {catalog::HardwareGen::kGen5,
                   catalog::HardwareGen::kPremiumSeries,
                   catalog::HardwareGen::kPremiumSeriesMemoryOptimized},
                  catalog::HardwareGenName));
    DOPPLER_ASSIGN_OR_RETURN(sku.vcores, ParseInt(row[vcores_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.max_memory_gb, ParseNumber(row[memory_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.max_data_gb, ParseNumber(row[data_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.max_iops, ParseNumber(row[iops_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.max_log_rate_mbps,
                             ParseNumber(row[log_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.min_io_latency_ms,
                             ParseNumber(row[latency_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.max_workers, ParseNumber(row[workers_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.price_per_hour, ParseNumber(row[price_col]));
    sku.serverless = row[serverless_col] == "1";
    DOPPLER_ASSIGN_OR_RETURN(sku.min_vcores,
                             ParseNumber(row[min_vcores_col]));
    DOPPLER_ASSIGN_OR_RETURN(sku.price_per_vcore_hour,
                             ParseNumber(row[vcore_rate_col]));
    skus.Add(std::move(sku));
  }
  if (skus.empty()) {
    return InvalidArgumentError("catalog CSV carries no SKUs");
  }
  return skus;
}

Status SaveCatalog(const catalog::SkuCatalog& skus, const std::string& path) {
  return CatalogToCsv(skus).WriteFile(path);
}

StatusOr<catalog::SkuCatalog> LoadCatalog(const std::string& path) {
  DOPPLER_ASSIGN_OR_RETURN(CsvTable table, CsvTable::ReadFile(path));
  return CatalogFromCsv(table);
}

}  // namespace doppler::dma
