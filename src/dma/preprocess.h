#ifndef DOPPLER_DMA_PREPROCESS_H_
#define DOPPLER_DMA_PREPROCESS_H_

#include <vector>

#include "catalog/catalog.h"
#include "catalog/pricing.h"
#include "core/profiler.h"
#include "core/throttling.h"
#include "quality/quality_gate.h"
#include "telemetry/aggregate.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::dma {

/// The Data Preprocessing Module (paper §4): turns raw collector output
/// into the 10-minute, instance-level format the recommendation engine
/// ingests — the step the baseline never needed because it collapsed
/// everything to one scalar.
class DataPreprocessingModule {
 public:
  explicit DataPreprocessingModule(
      std::int64_t output_interval_seconds = telemetry::kDmaIntervalSeconds)
      : output_interval_seconds_(output_interval_seconds) {}

  /// Re-bins one database's raw counters to the engine cadence.
  StatusOr<telemetry::PerfTrace> PrepareDatabaseTrace(
      const telemetry::PerfTrace& raw) const;

  /// Quality-gated variant: runs the cell-level telemetry gate (NaN/Inf,
  /// negative counters, dead series) on the raw trace before re-binning
  /// and folds what the gate found into `report` (may be null). Degraded
  /// mode is deliberately NOT assessed here — expected dimensions are
  /// judged once on the instance rollup, not per database.
  StatusOr<telemetry::PerfTrace> PrepareDatabaseTrace(
      const telemetry::PerfTrace& raw, const quality::GateOptions& gate,
      quality::TraceQualityReport* report) const;

  /// Re-bins every database then rolls them up to one instance trace.
  StatusOr<telemetry::PerfTrace> PrepareInstanceTrace(
      const std::vector<telemetry::PerfTrace>& raw_databases) const;

  /// Quality-gated variant of the rollup: every database trace passes the
  /// gate (accumulating into `report`) before re-binning and aggregation.
  StatusOr<telemetry::PerfTrace> PrepareInstanceTrace(
      const std::vector<telemetry::PerfTrace>& raw_databases,
      const quality::GateOptions& gate,
      quality::TraceQualityReport* report) const;

 private:
  std::int64_t output_interval_seconds_;
};

/// The static inputs the DMA tool ships with (paper §4: "relevant SKU
/// resource limits and customer profiles ... are calculated offline and
/// saved in the application as static input").
struct StaticInputs {
  catalog::SkuCatalog catalog;
  core::GroupModel group_model;
};

/// Fits the shipped group model offline from a labelled migrated fleet:
/// generate a fleet for `deployment`, assign chosen SKUs, profile with the
/// production thresholding strategy, and record per-group chosen
/// throttling probabilities. `num_customers` trades fidelity for runtime.
StatusOr<core::GroupModel> FitGroupModelOffline(
    const catalog::SkuCatalog& catalog, const catalog::PricingService& pricing,
    const core::ThrottlingEstimator& estimator,
    catalog::Deployment deployment, int num_customers = 150,
    std::uint64_t seed = 11);

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_PREPROCESS_H_
