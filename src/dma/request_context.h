#ifndef DOPPLER_DMA_REQUEST_CONTEXT_H_
#define DOPPLER_DMA_REQUEST_CONTEXT_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/file_layout.h"
#include "core/confidence.h"
#include "core/recommender.h"
#include "core/rightsizing.h"
#include "quality/quality_gate.h"
#include "quality/quality_report.h"
#include "telemetry/perf_trace.h"
#include "telemetry/trace_stats.h"
#include "util/deadline.h"
#include "util/statusor.h"

namespace doppler::dma {

/// A set of pipeline Stage flags (the enum lives in dma/pipeline.h; the
/// alias lives here so outcomes can record stage progress without pulling
/// the whole pipeline interface into every consumer).
using StageMask = unsigned;

/// One assessment request as the DMA tool would submit it: raw per-database
/// counters plus migration intent.
struct AssessmentRequest {
  std::string customer_id;
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  /// Raw collector output, one trace per database.
  std::vector<telemetry::PerfTrace> database_traces;
  /// MI targets: the data-file layout (defaults to one file sized from the
  /// observed storage counter when empty).
  catalog::FileLayout layout;
  /// Cloud customers only: the SKU they currently run, enabling the
  /// right-sizing assessment.
  std::string current_sku_id;
  /// Run the bootstrap confidence score (adds runs x curve builds).
  bool compute_confidence = false;
  /// How the telemetry quality gate reacts to defects in the raw traces:
  /// kRepair (default) fixes and records, kStrict aborts the assessment on
  /// the first defect, kPermissive records only.
  quality::QualityPolicy quality_policy = quality::QualityPolicy::kRepair;
  /// Quality findings from ingestion upstream of the pipeline (e.g. the
  /// CLI's ReadTraceFileGated); merged into the outcome's report so the
  /// full dirt trail survives end to end.
  quality::TraceQualityReport ingest_quality;
  /// Time budget for the assessment, checked cooperatively at stage
  /// boundaries: an expired request returns kDeadlineExceeded carrying the
  /// stages that DID complete (AssessmentOutcome::completed_stages) rather
  /// than burning pool time on the rest. Default: never expires.
  Deadline deadline;
  /// Invoked at every stage boundary (before the deadline check) with the
  /// stage's span name ("pipeline.recommend", ...). Fault-injection seam:
  /// sim::StageLatencyPlan provides a seeded delay implementation, and
  /// deterministic deadline tests cancel the request's deadline from here
  /// at a chosen boundary instead of racing a timer. Null = no-op.
  std::function<void(const char* stage)> stage_boundary_hook;
};

/// Wall-clock latency of one pipeline stage of an assessment, named by the
/// observability span scheme ("pipeline.preprocess", "pipeline.recommend",
/// ...). Per-request counterpart of the process-wide `latency.*`
/// histograms in obs::DefaultMetrics().
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Everything the DMA UI surfaces for one request.
struct AssessmentOutcome {
  std::string customer_id;
  /// Deployment the assessment targeted.
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  /// The Doppler (elastic) recommendation.
  core::Recommendation elastic;
  /// The legacy baseline recommendation; NOT_FOUND when the baseline could
  /// not find any SKU (its documented failure mode, §5.3).
  StatusOr<core::Recommendation> baseline{
      NotFoundError("baseline not evaluated")};
  std::optional<core::ConfidenceResult> confidence;
  std::optional<core::RightSizingAssessment> rightsizing;
  /// Why the right-sizing stage produced no assessment despite the request
  /// naming a current SKU (e.g. the SKU is not on the curve). Empty when
  /// right-sizing succeeded or was never requested.
  std::string rightsizing_skip_reason;
  /// The preprocessed instance-level trace the engine consumed.
  telemetry::PerfTrace instance_trace;
  /// Everything the telemetry quality gate found and repaired across
  /// ingestion and preprocessing, plus the degraded-mode assessment of the
  /// instance trace against the target's profiling dimensions.
  quality::TraceQualityReport quality;
  /// Where the assessment's time went, one entry per executed stage in
  /// execution order (skipped stages — confidence, right-sizing — do not
  /// appear).
  std::vector<StageTiming> stage_timings;
  /// Stages that ran to completion on this outcome (dma::Stage flags).
  /// Equal to the requested mask on success; a strict prefix of it when a
  /// deadline expired mid-pipeline and the serving layer salvaged the
  /// partial outcome. Not part of the rendered JSON report.
  StageMask completed_stages = 0;
};

/// Collects per-request stage timings. StageScope used to append straight
/// to AssessmentOutcome::stage_timings from its destructor, which is a data
/// race the moment any stage runs work on pool threads that itself opens a
/// scope. The sink serialises writes behind a mutex and keeps entries in
/// scope-OPEN order (a slot is reserved on entry), so the drained list is
/// order-stable no matter which thread closes a scope first.
class TimingSink {
 public:
  /// Reserves a slot in entry order and returns its index.
  std::size_t Open(const char* stage) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back({stage, 0.0});
    return entries_.size() - 1;
  }

  void Close(std::size_t slot, double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[slot].seconds = seconds;
  }

  /// Moves the collected timings (entry order) into `out`.
  void DrainTo(std::vector<StageTiming>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    *out = std::move(entries_);
    entries_.clear();
  }

 private:
  std::mutex mu_;
  std::vector<StageTiming> entries_;
};

/// Per-request working state threaded through the pipeline's stage
/// functions. Ownership rules:
///  - the context BORROWS the request, which must outlive it;
///  - the context OWNS everything produced on the request's behalf: the
///    outcome under assembly, the timing sink, the resolved file layout,
///    and the memoized order-statistics cache over the frozen instance
///    trace (lazily emplaced — TraceStatsCache is non-movable — and shared
///    by the recommend and baseline stages so each dimension is sorted
///    once per assessment).
/// A context is single-request, non-copyable scratch state; stages may be
/// applied to it exactly once, in pipeline order.
struct RequestContext {
  explicit RequestContext(const AssessmentRequest& req) : request(&req) {
    outcome.customer_id = req.customer_id;
    outcome.target = req.target;
  }

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  const AssessmentRequest* request;
  AssessmentOutcome outcome;
  TimingSink timings;
  /// Resolved by the layout stage: the request's layout, or the default MI
  /// layout sized from the observed storage counter.
  catalog::FileLayout layout;
  /// Memoized order statistics over outcome.instance_trace; emplaced once
  /// the trace is frozen (after preprocessing).
  std::optional<telemetry::TraceStatsCache> instance_stats;
  /// Findings of the in-pipeline quality gate, merged into outcome.quality
  /// by the preprocess stage.
  quality::TraceQualityReport pipeline_gate;
  /// Stage flags RunStages has completed so far; Finish copies the mask
  /// into the outcome so partial progress survives a deadline expiry.
  StageMask completed_stages = 0;
};

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_REQUEST_CONTEXT_H_
