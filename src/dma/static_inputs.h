#ifndef DOPPLER_DMA_STATIC_INPUTS_H_
#define DOPPLER_DMA_STATIC_INPUTS_H_

#include <string>

#include "catalog/catalog.h"
#include "catalog/file_layout.h"
#include "core/profiler.h"
#include "util/csv.h"
#include "util/statusor.h"

namespace doppler::dma {

/// Persistence for the DMA tool's static inputs (paper §4: "relevant SKU
/// resource limits and customer profiles ... are calculated offline and
/// saved in the application as static input"). Both artefacts round-trip
/// through CSV so the offline fitting job and the shipped appliance can
/// exchange them as plain files.

/// Group-model <-> CSV. Columns: group_id, count, mean_probability,
/// std_probability; the global mean rides in a pseudo-row with
/// group_id = -1.
CsvTable GroupModelToCsv(const core::GroupModel& model);
StatusOr<core::GroupModel> GroupModelFromCsv(const CsvTable& table);
Status SaveGroupModel(const core::GroupModel& model, const std::string& path);
StatusOr<core::GroupModel> LoadGroupModel(const std::string& path);

/// MI file layout <-> CSV (columns: name, size_gib) — the input a
/// customer hands the MI premium-disk Step 1/2 (paper §3.2).
CsvTable LayoutToCsv(const catalog::FileLayout& layout);
StatusOr<catalog::FileLayout> LayoutFromCsv(const CsvTable& table);
StatusOr<catalog::FileLayout> LoadLayout(const std::string& path);

/// SKU-catalog <-> CSV (resource limits + pricing, one row per SKU).
CsvTable CatalogToCsv(const catalog::SkuCatalog& skus);
StatusOr<catalog::SkuCatalog> CatalogFromCsv(const CsvTable& table);
Status SaveCatalog(const catalog::SkuCatalog& skus, const std::string& path);
StatusOr<catalog::SkuCatalog> LoadCatalog(const std::string& path);

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_STATIC_INPUTS_H_
