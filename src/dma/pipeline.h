#ifndef DOPPLER_DMA_PIPELINE_H_
#define DOPPLER_DMA_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/compiled_catalog.h"
#include "catalog/file_layout.h"
#include "core/confidence.h"
#include "core/recommender.h"
#include "core/rightsizing.h"
#include "dma/preprocess.h"
#include "dma/request_context.h"
#include "exec/thread_pool.h"
#include "quality/quality_gate.h"
#include "util/statusor.h"

namespace doppler::dma {

/// The pipeline's stages as bit flags, in canonical execution order.
/// AssessStages masks select a subset; each stage assumes its upstream
/// stages already ran on the context (see the stage functions below).
enum Stage : unsigned {
  kStagePreprocess = 1u << 0,
  kStageQuality = 1u << 1,
  kStageLayout = 1u << 2,
  kStageRecommend = 1u << 3,
  kStageBaseline = 1u << 4,
  kStageConfidence = 1u << 5,
  kStageRightsizing = 1u << 6,
};

// StageMask (a set of Stage flags) is declared in dma/request_context.h so
// outcomes can record stage progress without including this header.

inline constexpr StageMask kAllStages =
    kStagePreprocess | kStageQuality | kStageLayout | kStageRecommend |
    kStageBaseline | kStageConfidence | kStageRightsizing;

/// The stage's observability span name ("pipeline.preprocess", ...), also
/// the name the request's stage_boundary_hook receives. `stage` must be a
/// single Stage flag.
const char* StageName(Stage stage);

/// The SKU Recommendation Pipeline (paper §4): preprocessing, curve
/// building, profiling, elastic + baseline recommendations, confidence and
/// right-sizing. `Assess` runs the whole thing; batch drivers (the fleet
/// assessor, backtests, the simulator's replayer) can instead run named
/// stages over a RequestContext, or a masked subset via `AssessStages`.
///
/// Create() compiles the SKU catalog into an immutable CompiledCatalog
/// snapshot exactly once; every assessment afterwards reads borrowed views
/// of it (no per-request catalog copies, price derivations, or sorts). The
/// pipeline owns its engine components; it is movable and cheap to share
/// by const reference across a fleet.
class SkuRecommendationPipeline {
 public:
  struct Config {
    double baseline_quantile = 0.95;
    double rho = 0.10;  ///< Thresholding-duration cutoff.
    core::ConfidenceOptions confidence;
    std::uint64_t confidence_seed = 19;
    /// Worker threads for the per-SKU curve build: 0 picks the hardware
    /// concurrency, 1 keeps the engine strictly serial (no pool is
    /// created), >1 sizes the pool. Assessments are bit-identical at every
    /// setting — parallelism changes wall-clock only.
    int num_threads = 0;
    /// Default MI layout (used when an MI request carries no file layout):
    /// allocated size to assume, in GB, when the trace never reported a
    /// storage counter. Mirrors DMA's single-data-file default for small
    /// databases.
    double mi_default_storage_gb = 32.0;
    /// Headroom multiplier applied to the observed (or assumed) allocated
    /// size before placing the default MI layout on premium disks, so the
    /// provisioned file is not 100% full on day one.
    double mi_layout_headroom = 1.1;
    /// Deployment target the catalog is compiled for (BORROWED; built-in
    /// specs have static storage). nullptr compiles for the Azure DB/MI
    /// spec — the pre-registry behaviour, byte for byte.
    const catalog::TargetSpec* target = nullptr;
  };

  /// Builds a pipeline around the shipped static inputs.
  static StatusOr<SkuRecommendationPipeline> Create(StaticInputs inputs,
                                                    Config config);

  /// Default-config overload (a default argument of a nested aggregate
  /// cannot appear inside the enclosing class definition).
  static StatusOr<SkuRecommendationPipeline> Create(StaticInputs inputs);

  /// Runs one full assessment (all stages).
  StatusOr<AssessmentOutcome> Assess(const AssessmentRequest& request) const;

  /// Runs the masked stages in canonical order over a fresh context and
  /// finalises the outcome. The mask must be prefix-consistent: a selected
  /// stage's upstream data dependencies (see each stage function) must
  /// also be selected.
  StatusOr<AssessmentOutcome> AssessStages(const AssessmentRequest& request,
                                           StageMask stages) const;

  /// Runs the masked stages in canonical order over a caller-owned context,
  /// invoking the request's stage_boundary_hook and checking its deadline
  /// before each stage: on expiry, returns kDeadlineExceeded immediately
  /// with ctx.completed_stages recording the prefix that DID run. Callers
  /// that want the partial outcome (the serving layer) call Finish(ctx)
  /// even on error; AssessStages instead drops it and propagates the
  /// status.
  Status RunStages(RequestContext& ctx, StageMask stages) const;

  // --- Individual stage functions -----------------------------------------
  // Each operates on a caller-owned RequestContext and may be invoked at
  // most once per context, in pipeline order. Conditional stages
  // (confidence, right-sizing) are no-ops when the request does not ask
  // for them.

  /// Rolls the per-database traces up to the instance trace through the
  /// telemetry quality gate; merges ingest + pipeline gate findings.
  Status StagePreprocess(RequestContext& ctx) const;

  /// Judges degraded mode on the instance rollup; fails under the strict
  /// quality policy when profiling dimensions are missing. Requires
  /// StagePreprocess.
  Status StageQuality(RequestContext& ctx) const;

  /// Resolves the effective file layout (MI default layout when the
  /// request carries none). Requires StagePreprocess.
  Status StageLayout(RequestContext& ctx) const;

  /// Elastic (Doppler) recommendation over the compiled snapshot.
  /// Requires StagePreprocess and StageLayout.
  Status StageRecommend(RequestContext& ctx) const;

  /// Legacy baseline recommendation; its failure is recorded in the
  /// outcome, never propagated. Requires StagePreprocess.
  Status StageBaseline(RequestContext& ctx) const;

  /// Bootstrap confidence score (when the request asks for it). Requires
  /// StageRecommend's inputs (preprocess + layout).
  Status StageConfidence(RequestContext& ctx) const;

  /// Right-sizing against the request's current SKU (when named). A
  /// failure is recorded as the outcome's skip reason, never propagated.
  /// Requires StageRecommend.
  Status StageRightsizing(RequestContext& ctx) const;

  /// Drains the stage timings into the outcome and releases it. The
  /// context is dead afterwards.
  AssessmentOutcome Finish(RequestContext& ctx) const;

  const catalog::SkuCatalog& catalog() const { return compiled_->catalog(); }
  /// The immutable compiled snapshot every assessment reads.
  const catalog::CompiledCatalog& compiled() const { return *compiled_; }
  const core::GroupModel& group_model() const { return *group_model_; }
  /// The pipeline's SKU-scoring pool; nullptr when the engine is serial
  /// (num_threads == 1 or single-core auto detection).
  exec::ThreadPool* executor() const { return pool_.get(); }

 private:
  SkuRecommendationPipeline() = default;

  // Engine components live behind unique_ptr so the recommenders' borrowed
  // pointers stay valid across moves of the pipeline object.
  std::unique_ptr<catalog::DefaultPricing> pricing_;
  // Compiled once at Create; immutable and read concurrently by every
  // assessment worker. Borrows pricing_.
  std::unique_ptr<const catalog::CompiledCatalog> compiled_;
  std::unique_ptr<core::NonParametricEstimator> estimator_;
  std::unique_ptr<core::GroupModel> group_model_;
  std::unique_ptr<core::CustomerProfiler> db_profiler_;
  std::unique_ptr<core::CustomerProfiler> mi_profiler_;
  std::unique_ptr<core::ElasticRecommender> db_recommender_;
  std::unique_ptr<core::ElasticRecommender> mi_recommender_;
  std::unique_ptr<core::BaselineRecommender> baseline_;
  // SKU-scoring pool shared by both recommenders; they borrow the raw
  // pointer, which stays valid across moves of the pipeline object.
  std::unique_ptr<exec::ThreadPool> pool_;
  DataPreprocessingModule preprocessing_;
  Config config_;
};

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_PIPELINE_H_
