#ifndef DOPPLER_DMA_PIPELINE_H_
#define DOPPLER_DMA_PIPELINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/file_layout.h"
#include "core/confidence.h"
#include "core/recommender.h"
#include "core/rightsizing.h"
#include "dma/preprocess.h"
#include "exec/thread_pool.h"
#include "quality/quality_gate.h"
#include "util/statusor.h"

namespace doppler::dma {

/// One assessment request as the DMA tool would submit it: raw per-database
/// counters plus migration intent.
struct AssessmentRequest {
  std::string customer_id;
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  /// Raw collector output, one trace per database.
  std::vector<telemetry::PerfTrace> database_traces;
  /// MI targets: the data-file layout (defaults to one file sized from the
  /// observed storage counter when empty).
  catalog::FileLayout layout;
  /// Cloud customers only: the SKU they currently run, enabling the
  /// right-sizing assessment.
  std::string current_sku_id;
  /// Run the bootstrap confidence score (adds runs x curve builds).
  bool compute_confidence = false;
  /// How the telemetry quality gate reacts to defects in the raw traces:
  /// kRepair (default) fixes and records, kStrict aborts the assessment on
  /// the first defect, kPermissive records only.
  quality::QualityPolicy quality_policy = quality::QualityPolicy::kRepair;
  /// Quality findings from ingestion upstream of the pipeline (e.g. the
  /// CLI's ReadTraceFileGated); merged into the outcome's report so the
  /// full dirt trail survives end to end.
  quality::TraceQualityReport ingest_quality;
};

/// Wall-clock latency of one pipeline stage of an assessment, named by the
/// observability span scheme ("pipeline.preprocess", "pipeline.recommend",
/// ...). Per-request counterpart of the process-wide `latency.*`
/// histograms in obs::DefaultMetrics().
struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

/// Everything the DMA UI surfaces for one request.
struct AssessmentOutcome {
  std::string customer_id;
  /// Deployment the assessment targeted.
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  /// The Doppler (elastic) recommendation.
  core::Recommendation elastic;
  /// The legacy baseline recommendation; NOT_FOUND when the baseline could
  /// not find any SKU (its documented failure mode, §5.3).
  StatusOr<core::Recommendation> baseline{
      NotFoundError("baseline not evaluated")};
  std::optional<core::ConfidenceResult> confidence;
  std::optional<core::RightSizingAssessment> rightsizing;
  /// The preprocessed instance-level trace the engine consumed.
  telemetry::PerfTrace instance_trace;
  /// Everything the telemetry quality gate found and repaired across
  /// ingestion and preprocessing, plus the degraded-mode assessment of the
  /// instance trace against the target's profiling dimensions.
  quality::TraceQualityReport quality;
  /// Where the assessment's time went, one entry per executed stage in
  /// execution order (skipped stages — confidence, right-sizing — do not
  /// appear).
  std::vector<StageTiming> stage_timings;
};

/// The SKU Recommendation Pipeline (paper §4): preprocessing, curve
/// building, profiling, elastic + baseline recommendations, confidence and
/// right-sizing, behind one call. The pipeline owns its engine components;
/// it is movable and cheap to share by const reference across a fleet.
class SkuRecommendationPipeline {
 public:
  struct Config {
    double baseline_quantile = 0.95;
    double rho = 0.10;  ///< Thresholding-duration cutoff.
    core::ConfidenceOptions confidence;
    std::uint64_t confidence_seed = 19;
    /// Worker threads for the per-SKU curve build: 0 picks the hardware
    /// concurrency, 1 keeps the engine strictly serial (no pool is
    /// created), >1 sizes the pool. Assessments are bit-identical at every
    /// setting — parallelism changes wall-clock only.
    int num_threads = 0;
  };

  /// Builds a pipeline around the shipped static inputs.
  static StatusOr<SkuRecommendationPipeline> Create(StaticInputs inputs,
                                                    Config config);

  /// Default-config overload (a default argument of a nested aggregate
  /// cannot appear inside the enclosing class definition).
  static StatusOr<SkuRecommendationPipeline> Create(StaticInputs inputs);

  /// Runs one full assessment.
  StatusOr<AssessmentOutcome> Assess(const AssessmentRequest& request) const;

  const catalog::SkuCatalog& catalog() const { return *catalog_; }
  const core::GroupModel& group_model() const { return *group_model_; }
  /// The pipeline's SKU-scoring pool; nullptr when the engine is serial
  /// (num_threads == 1 or single-core auto detection).
  exec::ThreadPool* executor() const { return pool_.get(); }

 private:
  SkuRecommendationPipeline() = default;

  // Engine components live behind unique_ptr so the recommenders' borrowed
  // pointers stay valid across moves of the pipeline object.
  std::unique_ptr<catalog::SkuCatalog> catalog_;
  std::unique_ptr<catalog::DefaultPricing> pricing_;
  std::unique_ptr<core::NonParametricEstimator> estimator_;
  std::unique_ptr<core::GroupModel> group_model_;
  std::unique_ptr<core::CustomerProfiler> db_profiler_;
  std::unique_ptr<core::CustomerProfiler> mi_profiler_;
  std::unique_ptr<core::ElasticRecommender> db_recommender_;
  std::unique_ptr<core::ElasticRecommender> mi_recommender_;
  std::unique_ptr<core::BaselineRecommender> baseline_;
  // SKU-scoring pool shared by both recommenders; they borrow the raw
  // pointer, which stays valid across moves of the pipeline object.
  std::unique_ptr<exec::ThreadPool> pool_;
  DataPreprocessingModule preprocessing_;
  Config config_;
};

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_PIPELINE_H_
