#ifndef DOPPLER_DMA_RESOURCE_REPORT_H_
#define DOPPLER_DMA_RESOURCE_REPORT_H_

#include <string>

#include "core/recommender.h"
#include "dma/pipeline.h"
#include "telemetry/perf_trace.h"

namespace doppler::dma {

/// The Resource Use Module (paper §4): renders the visual explanation that
/// ships with every recommendation — per-dimension usage plots and
/// distribution summaries, the price-performance curve, and the rationale —
/// so "customers can understand why they received a specific SKU
/// recommendation". Terminal/ASCII here; the DMA UI draws the same data.

/// Time-series plot plus distribution summary for every collected
/// dimension.
std::string RenderUsageReport(const telemetry::PerfTrace& trace);

/// The price-performance curve as an aligned table (price order) plus an
/// ASCII scatter of performance against monthly price.
std::string RenderCurveReport(const core::PricePerformanceCurve& curve,
                              int max_rows = 24);

/// The full explanation: usage, curve, recommendation and rationale.
std::string RenderRecommendationReport(const telemetry::PerfTrace& trace,
                                       const core::Recommendation& rec);

/// Per-dimension negotiability analysis: every summarisation strategy's
/// score for each profiling dimension plus the production (thresholding)
/// verdict — the "what performance dimension may be negotiable" view the
/// paper's field engineers reason with (§3.3).
std::string RenderNegotiabilityReport(const telemetry::PerfTrace& trace,
                                      catalog::Deployment deployment);

/// Rendering knobs for the assessment JSON.
struct AssessmentJsonOptions {
  /// Emit each stage's wall-clock seconds. Stage NAMES are always listed
  /// (execution order is part of the assessment); the seconds are the one
  /// nondeterministic field in the report, so batch/golden/determinism
  /// consumers turn them off to get byte-identical output.
  bool include_stage_seconds = true;
};

/// Machine-readable form of a full assessment for downstream tooling
/// (`doppler assess --json`): the elastic recommendation, the baseline
/// outcome, confidence, right-sizing, and the full curve.
std::string RenderAssessmentJson(const AssessmentOutcome& outcome);

/// Options-taking overload; the default options match the plain overload.
std::string RenderAssessmentJson(const AssessmentOutcome& outcome,
                                 const AssessmentJsonOptions& options);

/// Batch document for `doppler assess-batch --json`: one entry per request
/// in request order — the full assessment JSON on success, a
/// {customer_id, error} object on per-request failure. `customer_ids`
/// aligns with `outcomes` (error slots have no outcome to name themselves).
std::string RenderFleetAssessmentJson(
    const std::vector<std::string>& customer_ids,
    const std::vector<StatusOr<AssessmentOutcome>>& outcomes,
    const AssessmentJsonOptions& options);

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_RESOURCE_REPORT_H_
