#ifndef DOPPLER_DMA_MULTI_TARGET_H_
#define DOPPLER_DMA_MULTI_TARGET_H_

#include <string>
#include <vector>

#include "catalog/target.h"
#include "core/recommender.h"
#include "tco/tco.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::dma {

/// Cross-target assessment (ROADMAP item 5): one workload trace assessed
/// against several registered deployment targets, each compiled into its
/// own CompiledCatalog snapshot and run through the unchanged recommender
/// stack, then costed under every pricing model the target offers. The
/// serverless model's throttling is evaluated against the MOVING capacity
/// the autoscale simulation produces (paper Eq. 1 with R_cpu a function of
/// t; see core/autoscale.h and DESIGN.md §14).

/// One (pricing model, cost) row of a target's estimate table.
struct TargetPricingEstimate {
  catalog::PricingModel model = catalog::PricingModel::kPayGo;
  double monthly_cost = 0.0;
  /// Throttling probability under this model: the recommendation's own
  /// probability for pay-go/reserved (capacity is unchanged by billing),
  /// the moving-capacity probability for serverless autoscale.
  double throttling_probability = 0.0;
  /// Human-readable model detail ("33% reserved discount", "autoscale
  /// mean 3.4 vCores"), empty for pay-go.
  std::string detail;
};

/// One target's slice of the comparison. A target that fails to produce a
/// recommendation carries its error and empty estimates; it never sinks
/// the other targets.
struct TargetAssessment {
  std::string target_id;
  std::string display_name;
  Status status = OkStatus();
  /// Valid only when status is ok.
  core::Recommendation recommendation;
  /// One row per pricing model the target offers, spec order (pay-go
  /// first).
  std::vector<TargetPricingEstimate> pricing;
};

/// The full cross-target comparison for one workload.
struct CrossTargetReport {
  std::vector<TargetAssessment> targets;
  /// Index into `targets` of the cheapest successful (target, model)
  /// pair, -1 when every target failed.
  int best_index = -1;
  /// The winning pricing model and its bill (valid when best_index >= 0).
  catalog::PricingModel best_model = catalog::PricingModel::kPayGo;
  double best_monthly = 0.0;
  /// Staying-put cost from the on-prem model, for the savings line.
  double on_prem_monthly = 0.0;
};

struct CrossTargetOptions {
  /// Synthetic training-fleet size/seed for the per-target offline group
  /// model fit (same machinery as single-target assess without
  /// --profiles).
  int training_customers = 120;
  std::uint64_t training_seed = 11;
  tco::OnPremCostModel on_prem;
};

/// Assesses `trace` against every spec in `targets` (each pointer must
/// outlive the call; registry pointers do). Deterministic for a fixed
/// (trace, targets, options) input, at any engine thread count. Fails only
/// on an empty trace or empty target list — per-target failures are
/// recorded in the report.
StatusOr<CrossTargetReport> AssessAcrossTargets(
    const telemetry::PerfTrace& trace,
    const std::vector<const catalog::TargetSpec*>& targets,
    const CrossTargetOptions& options = {});

/// Resolves a comma-separated id list ("azure-db,aws-rds") against the
/// built-in registry; INVALID_ARGUMENT names the first unknown id.
StatusOr<std::vector<const catalog::TargetSpec*>> ResolveTargets(
    const std::string& comma_separated_ids);

/// Text table: one row per (target, pricing model) plus the on-prem
/// anchor and the savings line.
std::string RenderCrossTargetReport(const CrossTargetReport& report);

/// Machine-readable twin of the text report.
std::string RenderCrossTargetJson(const CrossTargetReport& report);

}  // namespace doppler::dma

#endif  // DOPPLER_DMA_MULTI_TARGET_H_
