#ifndef DOPPLER_WORKLOAD_ARCHETYPE_H_
#define DOPPLER_WORKLOAD_ARCHETYPE_H_

#include <cstdint>
#include <map>
#include <string>

#include "catalog/resource.h"

namespace doppler::workload {

/// Temporal shape of one resource dimension's demand. These span the trace
/// families the paper describes: sustained plateaus (non-negotiable
/// dimensions), rare short spikes (negotiable), business-hour seasonality,
/// growth trends, and mostly-idle servers (§3.3, §5.3).
enum class UsagePattern {
  kSteady,         ///< Plateau with mild daily modulation.
  kDailyPeriodic,  ///< Strong 24-hour cycle (business hours).
  kWeeklyPeriodic, ///< 7-day cycle (weekday/weekend).
  kSpiky,          ///< Low base plus rare, short, tall spikes.
  kBursty,         ///< Frequent medium spikes over a moderate base.
  kTrending,       ///< Linear growth over the window.
  kIdle,           ///< Near-zero demand with noise.
};

const char* UsagePatternName(UsagePattern pattern);

/// Parameters of one dimension's demand process.
struct DimensionSpec {
  UsagePattern pattern = UsagePattern::kSteady;
  /// Baseline demand level, in the dimension's native unit (vCores, GB,
  /// IOPS, MB/s, ms, GB).
  double base = 1.0;
  /// Peak excursion above base: seasonal amplitude for periodic patterns,
  /// spike height for spiky/bursty, end-of-window uplift for trending.
  double amplitude = 0.0;
  /// Relative Gaussian noise applied multiplicatively (sigma as a fraction
  /// of the level).
  double noise_sigma = 0.03;
  /// Spike arrivals per day (spiky/bursty only).
  double spike_rate_per_day = 1.0;
  /// Mean spike duration, minutes (spiky/bursty only).
  double spike_duration_minutes = 20.0;
  /// Daily modulation of the base level under the spikes (spiky/bursty
  /// only): the base breathes by this amount over each day, which is what
  /// gives real traces intermediate load quantiles between "quiet" and
  /// "spiking" (and price-performance curves their intermediate points).
  double base_amplitude = 0.0;

  /// Convenience factories for the common shapes.
  static DimensionSpec Steady(double base, double noise_sigma = 0.03);
  static DimensionSpec DailyPeriodic(double base, double amplitude,
                                     double noise_sigma = 0.03);
  static DimensionSpec WeeklyPeriodic(double base, double amplitude,
                                      double noise_sigma = 0.03);
  static DimensionSpec Spiky(double base, double spike_height,
                             double rate_per_day, double duration_minutes,
                             double noise_sigma = 0.03);
  static DimensionSpec Bursty(double base, double spike_height,
                              double rate_per_day, double duration_minutes,
                              double noise_sigma = 0.05);
  static DimensionSpec Trending(double base, double uplift,
                                double noise_sigma = 0.03);
  static DimensionSpec Idle(double base, double noise_sigma = 0.5);
};

/// Full workload description: one demand process per collected dimension.
struct WorkloadSpec {
  std::string name;
  std::map<catalog::ResourceDim, DimensionSpec> dims;
};

}  // namespace doppler::workload

#endif  // DOPPLER_WORKLOAD_ARCHETYPE_H_
