#ifndef DOPPLER_WORKLOAD_BENCHMARK_MIX_H_
#define DOPPLER_WORKLOAD_BENCHMARK_MIX_H_

#include <string>
#include <vector>

#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "util/statusor.h"
#include "workload/archetype.h"

namespace doppler::workload {

/// The standardised benchmark families the workload synthesiser composes
/// (paper §5.4: synthesized workloads combine "pieces of standardized
/// benchmarks (e.g., TPC-C, TPC-DS, TPC-H, and YCSB) with different
/// database sizes, query frequency, and concurrency").
enum class BenchmarkFamily {
  kTpcC,   ///< Write-heavy OLTP: high log rate, many small IOs.
  kTpcH,   ///< Scan-heavy OLAP: CPU + large sequential IO.
  kTpcDs,  ///< Mixed decision support: CPU + memory heavy.
  kYcsb,   ///< Key-value point ops: IOPS bound, light CPU.
};

const char* BenchmarkFamilyName(BenchmarkFamily family);

/// Per-transaction (or per-query) resource signature of a benchmark family.
/// Units: CPU core-seconds, IO operations and log MB per transaction;
/// working set and on-disk footprint per unit of scale factor.
struct FamilySignature {
  double cpu_seconds_per_txn;
  double ios_per_txn;
  double log_mb_per_txn;
  double memory_gb_per_sf;
  double storage_gb_per_sf;
  double think_latency_ms;  ///< Storage latency the family is tuned for.
};

/// Signature table for a family.
const FamilySignature& SignatureFor(BenchmarkFamily family);

/// One synthesised component: a family at a scale factor, driven at a
/// transaction rate by a number of concurrent clients.
struct SynthesizedComponent {
  BenchmarkFamily family = BenchmarkFamily::kTpcC;
  double scale_factor = 10.0;
  double transactions_per_second = 50.0;
  int concurrency = 8;

  /// Steady-state demand this component offers, derived from the signature
  /// (demand = rate x per-txn cost; memory/storage scale with the scale
  /// factor; concurrency adds queueing pressure on latency).
  catalog::ResourceVector SteadyDemand() const;
};

/// A synthesised workload: a mix of components that together mimic a target
/// performance history.
struct SynthesizedWorkload {
  std::vector<SynthesizedComponent> components;
  /// Mean absolute relative error of the fit against the target's mean
  /// demand, across fitted dimensions.
  double fit_error = 0.0;
  /// IO latency the target history ran at (ms); the rendered demand trace
  /// reproduces it so replay compares SKUs against the customer's actual
  /// requirement. 0 = unknown, fall back to the components' own latency.
  double target_latency_ms = 0.0;
  /// Peak-to-mean ratio of the target history (99.5th percentile over mean,
  /// averaged across fitted dimensions). The rendered trace reproduces
  /// this temporal range so undersized SKUs throttle in replay roughly
  /// where the original would have (paper §5.4 / Fig. 13).
  double peak_to_mean = 1.3;

  /// Total steady demand across components.
  catalog::ResourceVector TotalDemand() const;

  /// Human-readable description, e.g. "TPC-C sf=10 @120tps x16".
  std::string Describe() const;
};

/// Fits a benchmark mix to a target performance history using only the
/// history itself (no customer data or queries, matching the paper's
/// privacy constraint): grid-search over (family, scale, rate, clients),
/// greedily adding up to `max_components` components that minimise the
/// remaining error in mean demand. Fails when the target trace is empty.
StatusOr<SynthesizedWorkload> SynthesizeFromHistory(
    const telemetry::PerfTrace& target, int max_components = 2);

/// Renders the synthesised workload as a demand trace over `duration_days`
/// — the offered load to replay through the SKU execution simulator. The
/// trace reproduces the target's temporal character through a mild daily
/// cycle plus arrival noise.
StatusOr<telemetry::PerfTrace> RenderDemandTrace(
    const SynthesizedWorkload& workload, double duration_days, Rng* rng);

}  // namespace doppler::workload

#endif  // DOPPLER_WORKLOAD_BENCHMARK_MIX_H_
