#include "workload/benchmark_mix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace doppler::workload {

namespace {

using catalog::ResourceDim;

// Dimensions the synthesiser fits (latency is an outcome of the replay, not
// an input knob, and storage follows the scale factor).
constexpr ResourceDim kFitDims[] = {ResourceDim::kCpu, ResourceDim::kMemoryGb,
                                    ResourceDim::kIops,
                                    ResourceDim::kLogRateMbps};

}  // namespace

const char* BenchmarkFamilyName(BenchmarkFamily family) {
  switch (family) {
    case BenchmarkFamily::kTpcC:
      return "TPC-C";
    case BenchmarkFamily::kTpcH:
      return "TPC-H";
    case BenchmarkFamily::kTpcDs:
      return "TPC-DS";
    case BenchmarkFamily::kYcsb:
      return "YCSB";
  }
  return "?";
}

const FamilySignature& SignatureFor(BenchmarkFamily family) {
  // Ratios are calibrated to the qualitative profiles of the published
  // benchmarks: TPC-C is log/IO heavy per transaction, TPC-H burns CPU per
  // query over large scans, TPC-DS adds memory pressure, YCSB is
  // IOPS-dominated point access.
  static const FamilySignature kTpcC = {0.004, 28.0, 0.055, 0.35, 0.9, 4.0};
  static const FamilySignature kTpcH = {0.900, 350.0, 0.010, 1.80, 1.0, 6.0};
  static const FamilySignature kTpcDs = {0.600, 220.0, 0.015, 2.60, 1.0, 6.0};
  static const FamilySignature kYcsb = {0.0006, 9.0, 0.004, 0.12, 0.5, 2.5};
  switch (family) {
    case BenchmarkFamily::kTpcC:
      return kTpcC;
    case BenchmarkFamily::kTpcH:
      return kTpcH;
    case BenchmarkFamily::kTpcDs:
      return kTpcDs;
    case BenchmarkFamily::kYcsb:
      return kYcsb;
  }
  return kTpcC;
}

catalog::ResourceVector SynthesizedComponent::SteadyDemand() const {
  const FamilySignature& sig = SignatureFor(family);
  catalog::ResourceVector demand;
  demand.Set(ResourceDim::kCpu, transactions_per_second * sig.cpu_seconds_per_txn);
  demand.Set(ResourceDim::kMemoryGb, scale_factor * sig.memory_gb_per_sf);
  demand.Set(ResourceDim::kIops, transactions_per_second * sig.ios_per_txn);
  demand.Set(ResourceDim::kLogRateMbps,
             transactions_per_second * sig.log_mb_per_txn);
  demand.Set(ResourceDim::kStorageGb, scale_factor * sig.storage_gb_per_sf);
  // More concurrent clients queue behind the same storage, raising the
  // latency the workload needs served to keep up.
  demand.Set(ResourceDim::kIoLatencyMs,
             sig.think_latency_ms / std::sqrt(std::max(1, concurrency)));
  return demand;
}

catalog::ResourceVector SynthesizedWorkload::TotalDemand() const {
  catalog::ResourceVector total;
  for (ResourceDim dim : catalog::kAllResourceDims) total.Set(dim, 0.0);
  double latency = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const SynthesizedComponent& component : components) {
    const catalog::ResourceVector demand = component.SteadyDemand();
    for (ResourceDim dim : catalog::kAllResourceDims) {
      if (dim == ResourceDim::kIoLatencyMs) continue;
      total.Set(dim, total.Get(dim) + demand.Get(dim));
    }
    latency = std::min(latency, demand.Get(ResourceDim::kIoLatencyMs));
    any = true;
  }
  total.Set(ResourceDim::kIoLatencyMs, any ? latency : 0.0);
  return total;
}

std::string SynthesizedWorkload::Describe() const {
  std::vector<std::string> parts;
  for (const SynthesizedComponent& c : components) {
    parts.push_back(std::string(BenchmarkFamilyName(c.family)) +
                    " sf=" + FormatDouble(c.scale_factor, 0) + " @" +
                    FormatDouble(c.transactions_per_second, 0) + "tps x" +
                    std::to_string(c.concurrency));
  }
  return Join(parts, " + ");
}

namespace {

// Mean demand of the target per fitted dimension (absent dims -> 0).
catalog::ResourceVector TargetMeans(const telemetry::PerfTrace& target) {
  catalog::ResourceVector means;
  for (ResourceDim dim : kFitDims) {
    if (target.Has(dim)) means.Set(dim, stats::Mean(target.Values(dim)));
  }
  if (target.Has(ResourceDim::kStorageGb)) {
    means.Set(ResourceDim::kStorageGb,
              stats::Max(target.Values(ResourceDim::kStorageGb)));
  }
  if (target.Has(ResourceDim::kIoLatencyMs)) {
    means.Set(ResourceDim::kIoLatencyMs,
              stats::Median(target.Values(ResourceDim::kIoLatencyMs)));
  }
  return means;
}

// Error of `demand` against the remaining target `residual`, averaged over
// dimensions the target actually has. Each dimension is normalised by the
// ORIGINAL target mean (`scales`), not the residual — otherwise a
// dimension the first component already covered (residual ~0) makes every
// further component look infinitely wrong and the greedy loop stalls.
double FitError(const catalog::ResourceVector& residual,
                const catalog::ResourceVector& demand,
                const catalog::ResourceVector& scales) {
  double error = 0.0;
  int counted = 0;
  for (ResourceDim dim : kFitDims) {
    if (!residual.Has(dim)) continue;
    const double want = residual.Get(dim);
    const double got = demand.Get(dim);
    const double scale = std::max(1e-6, std::fabs(scales.Get(dim)));
    // Overshooting the target is penalised harder than undershooting: a
    // synthesised workload that demands more than the original would make
    // the recommended SKU look falsely inadequate under replay.
    const double penalty = got > want ? 2.5 : 1.0;
    error += penalty * std::fabs(want - got) / scale;
    ++counted;
  }
  return counted > 0 ? error / counted : 0.0;
}

}  // namespace

StatusOr<SynthesizedWorkload> SynthesizeFromHistory(
    const telemetry::PerfTrace& target, int max_components) {
  if (target.num_samples() == 0) {
    return InvalidArgumentError("target trace is empty");
  }
  if (max_components < 1) {
    return InvalidArgumentError("need at least one component");
  }

  static const BenchmarkFamily kFamilies[] = {
      BenchmarkFamily::kTpcC, BenchmarkFamily::kTpcH, BenchmarkFamily::kTpcDs,
      BenchmarkFamily::kYcsb};
  static const double kScaleLadder[] = {1,  2,  3,   5,   10,  20,
                                        30, 50, 100, 300, 1000};
  static const double kRateLadder[] = {1,   2,    5,    10,   15,   25,  40,
                                       60,  75,   100,  150,  250,  400, 600,
                                       1000, 1500, 2500, 4000, 6000};
  static const int kClientLadder[] = {1, 4, 8, 16, 32, 64};

  const catalog::ResourceVector target_means = TargetMeans(target);
  catalog::ResourceVector residual = target_means;

  SynthesizedWorkload result;
  if (residual.Has(ResourceDim::kIoLatencyMs)) {
    result.target_latency_ms = residual.Get(ResourceDim::kIoLatencyMs);
  }
  {
    double ratio_sum = 0.0;
    int counted = 0;
    for (ResourceDim dim : kFitDims) {
      if (!target.Has(dim)) continue;
      const double mean = stats::Mean(target.Values(dim));
      if (mean <= 0.0) continue;
      ratio_sum += stats::Quantile(target.Values(dim), 0.995) / mean;
      ++counted;
    }
    if (counted > 0) {
      result.peak_to_mean = std::clamp(ratio_sum / counted, 1.05, 2.5);
    }
  }
  for (int round = 0; round < max_components; ++round) {
    double best_error = std::numeric_limits<double>::infinity();
    SynthesizedComponent best;
    for (BenchmarkFamily family : kFamilies) {
      for (double sf : kScaleLadder) {
        for (double tps : kRateLadder) {
          for (int clients : kClientLadder) {
            SynthesizedComponent candidate{family, sf, tps, clients};
            const double error =
                FitError(residual, candidate.SteadyDemand(), target_means);
            if (error < best_error) {
              best_error = error;
              best = candidate;
            }
          }
        }
      }
    }
    // Stop early when an extra component cannot improve on a good fit.
    if (round > 0 && best_error >= result.fit_error * 0.95) break;
    result.components.push_back(best);
    result.fit_error = best_error;
    // Subtract the chosen component from the residual for the next round.
    const catalog::ResourceVector demand = best.SteadyDemand();
    for (ResourceDim dim : kFitDims) {
      if (residual.Has(dim)) {
        residual.Set(dim, std::max(0.0, residual.Get(dim) - demand.Get(dim)));
      }
    }
    if (result.fit_error < 0.05) break;  // Close enough.
  }
  return result;
}

StatusOr<telemetry::PerfTrace> RenderDemandTrace(
    const SynthesizedWorkload& workload, double duration_days, Rng* rng) {
  if (workload.components.empty()) {
    return InvalidArgumentError("synthesised workload has no components");
  }
  const catalog::ResourceVector demand = workload.TotalDemand();
  WorkloadSpec spec;
  spec.name = workload.Describe();
  for (ResourceDim dim : catalog::kAllResourceDims) {
    if (!demand.Has(dim)) continue;
    const double level = demand.Get(dim);
    if (dim == ResourceDim::kStorageGb) {
      spec.dims[dim] = DimensionSpec::Steady(level, 0.0);
    } else if (dim == ResourceDim::kIoLatencyMs) {
      const double latency = workload.target_latency_ms > 0.0
                                 ? workload.target_latency_ms
                                 : level;
      spec.dims[dim] = DimensionSpec::Steady(latency, 0.05);
    } else {
      // Benchmark drivers reproduce the target's temporal range: mean at
      // the fitted level, peaks at the target's peak-to-mean ratio.
      const double ratio = std::clamp(workload.peak_to_mean, 1.05, 2.0);
      const double amplitude = 2.0 * level * (ratio - 1.0);
      const double base = std::max(0.05 * level, level - amplitude * 0.5);
      spec.dims[dim] = DimensionSpec::DailyPeriodic(base, amplitude, 0.03);
    }
  }
  return GenerateTrace(spec, duration_days, rng);
}

}  // namespace doppler::workload
