#ifndef DOPPLER_WORKLOAD_POPULATION_H_
#define DOPPLER_WORKLOAD_POPULATION_H_

#include <array>
#include <string>
#include <vector>

#include "catalog/file_layout.h"
#include "catalog/resource.h"
#include "catalog/sku.h"
#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "util/statusor.h"
#include "workload/archetype.h"

namespace doppler::workload {

/// The intended price-performance curve family of a generated customer
/// (paper §5.1): most real estates are small relative to the smallest SKU
/// (flat), some have a sharp capacity cliff (simple), and the revenue-heavy
/// remainder ranks a wide range of SKUs (complex).
enum class CurveArchetype { kFlat, kSimple, kComplex };

const char* CurveArchetypeName(CurveArchetype archetype);

/// One synthetic customer: the proprietary-telemetry substitute. Ground
/// truth that Azure would know from production (negotiability, tolerance,
/// over-provisioning) is recorded so the back-testing experiments can score
/// recovered values against it.
struct SyntheticCustomer {
  std::string id;
  catalog::Deployment deployment = catalog::Deployment::kSqlDb;
  CurveArchetype archetype = CurveArchetype::kComplex;
  telemetry::PerfTrace trace;
  /// Ground-truth negotiability per dimension (true = negotiable): the
  /// behaviour the trace was generated to exhibit.
  std::array<bool, catalog::kNumResourceDims> negotiable{};
  /// The throttling probability this customer tolerates when fixing a SKU;
  /// derives from the negotiable dimensions plus personal noise.
  double tolerance = 0.0;
  /// True for the ~10% segment that picks a SKU far past the cheapest
  /// 100%-satisfying point (paper §5.1 / §5.2).
  bool over_provisioned = false;
  /// True for customers whose storage latency requirement only Business
  /// Critical SKUs can meet.
  bool latency_sensitive = false;
  /// MI only: the database file layout driving the premium-disk Step 1/2.
  catalog::FileLayout layout;

  /// Negotiability restricted to the profiling dimensions of the
  /// customer's deployment (paper §5.2.1: CPU/memory/IOPS/log-rate for DB,
  /// CPU/memory/IOPS for MI), in that order.
  std::vector<bool> ProfileBits() const;
};

/// Profiling dimensions per deployment, in profile-vector order.
std::vector<catalog::ResourceDim> ProfilingDims(
    catalog::Deployment deployment);

/// Knobs of the synthetic fleet.
struct PopulationOptions {
  int num_customers = 200;
  catalog::Deployment deployment = catalog::Deployment::kSqlDb;
  double duration_days = 30.0;
  /// Curve-family mix; must sum to <= 1, the remainder is complex.
  double flat_fraction = 0.73;
  double simple_fraction = 0.03;
  /// Fraction choosing an over-provisioned SKU.
  double over_provisioned_fraction = 0.10;
  /// Fraction with sub-5ms latency requirements (BC-only customers).
  double latency_sensitive_fraction = 0.12;
  /// Probability that a given profiling dimension is negotiable for a
  /// complex-curve customer.
  double negotiable_probability = 0.5;
  /// Per-dimension throttling tolerance granted by a negotiable dimension;
  /// the sum over negotiable dimensions (plus a small epsilon and personal
  /// noise) is the customer's tolerance.
  double tolerance_per_negotiable_dim = 0.08;
  std::uint64_t seed = 42;
};

/// Generates a reproducible synthetic fleet. Each customer gets an
/// independent RNG stream (forked from the seed) so the fleet composition
/// does not perturb individual traces.
StatusOr<std::vector<SyntheticCustomer>> GeneratePopulation(
    const PopulationOptions& options);

}  // namespace doppler::workload

#endif  // DOPPLER_WORKLOAD_POPULATION_H_
