#ifndef DOPPLER_WORKLOAD_GENERATOR_H_
#define DOPPLER_WORKLOAD_GENERATOR_H_

#include <vector>

#include "telemetry/collector.h"
#include "telemetry/perf_trace.h"
#include "util/random.h"
#include "util/statusor.h"
#include "workload/archetype.h"

namespace doppler::workload {

/// A realised demand process for one dimension: the spec with its spike
/// schedule already drawn, so that repeated evaluation at the same time is
/// consistent (the collector may sample the process at any cadence).
class DimensionProcess {
 public:
  /// Draws the spike schedule for `horizon_days` using `rng`.
  DimensionProcess(const DimensionSpec& spec, double horizon_days, Rng* rng);

  /// Demand at `seconds` since window start (noise-free structural value;
  /// the caller layers sampling noise).
  double ValueAt(std::int64_t seconds) const;

  const DimensionSpec& spec() const { return spec_; }

 private:
  struct Spike {
    std::int64_t start_seconds;
    std::int64_t end_seconds;
    double height;
  };

  DimensionSpec spec_;
  double horizon_days_;
  std::vector<Spike> spikes_;
  double phase_;  ///< Random phase offset for periodic patterns, radians.
};

/// Generates the aligned PerfTrace of a workload over `duration_days` at
/// the given cadence: one DimensionProcess per spec'd dimension plus
/// multiplicative Gaussian observation noise. Values are clamped at zero
/// (latency additionally floored at a small positive value).
StatusOr<telemetry::PerfTrace> GenerateTrace(
    const WorkloadSpec& spec, double duration_days,
    std::int64_t interval_seconds, Rng* rng);

/// Convenience overload at the DMA cadence.
StatusOr<telemetry::PerfTrace> GenerateTrace(const WorkloadSpec& spec,
                                             double duration_days, Rng* rng);

/// Wraps a workload spec as a telemetry::DemandSource so it can be run
/// through the simulated collector (collector.h). The source owns its
/// processes; `rng` is only used at construction (schedule drawing).
telemetry::DemandSource MakeDemandSource(const WorkloadSpec& spec,
                                         double horizon_days, Rng* rng);

/// Scales rows [start_row, num_samples) of one dimension by `factor` in
/// place — the structural "the workload grew mid-stream" edit that drift
/// scenarios (sim::DriftPlan) build on. A start_row at or past the end is
/// a no-op. Fails when the dimension is absent.
Status RampDimension(telemetry::PerfTrace* trace, catalog::ResourceDim dim,
                     std::size_t start_row, double factor);

}  // namespace doppler::workload

#endif  // DOPPLER_WORKLOAD_GENERATOR_H_
