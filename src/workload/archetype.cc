#include "workload/archetype.h"

namespace doppler::workload {

const char* UsagePatternName(UsagePattern pattern) {
  switch (pattern) {
    case UsagePattern::kSteady:
      return "steady";
    case UsagePattern::kDailyPeriodic:
      return "daily_periodic";
    case UsagePattern::kWeeklyPeriodic:
      return "weekly_periodic";
    case UsagePattern::kSpiky:
      return "spiky";
    case UsagePattern::kBursty:
      return "bursty";
    case UsagePattern::kTrending:
      return "trending";
    case UsagePattern::kIdle:
      return "idle";
  }
  return "?";
}

DimensionSpec DimensionSpec::Steady(double base, double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kSteady;
  spec.base = base;
  spec.amplitude = base * 0.08;  // Mild daily modulation.
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::DailyPeriodic(double base, double amplitude,
                                           double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kDailyPeriodic;
  spec.base = base;
  spec.amplitude = amplitude;
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::WeeklyPeriodic(double base, double amplitude,
                                            double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kWeeklyPeriodic;
  spec.base = base;
  spec.amplitude = amplitude;
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::Spiky(double base, double spike_height,
                                   double rate_per_day,
                                   double duration_minutes,
                                   double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kSpiky;
  spec.base = base;
  spec.amplitude = spike_height;
  spec.spike_rate_per_day = rate_per_day;
  spec.spike_duration_minutes = duration_minutes;
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::Bursty(double base, double spike_height,
                                    double rate_per_day,
                                    double duration_minutes,
                                    double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kBursty;
  spec.base = base;
  spec.amplitude = spike_height;
  spec.spike_rate_per_day = rate_per_day;
  spec.spike_duration_minutes = duration_minutes;
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::Trending(double base, double uplift,
                                      double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kTrending;
  spec.base = base;
  spec.amplitude = uplift;
  spec.noise_sigma = noise_sigma;
  return spec;
}

DimensionSpec DimensionSpec::Idle(double base, double noise_sigma) {
  DimensionSpec spec;
  spec.pattern = UsagePattern::kIdle;
  spec.base = base;
  spec.noise_sigma = noise_sigma;
  return spec;
}

}  // namespace doppler::workload
