#include "workload/population.h"

#include <algorithm>
#include <cmath>

#include "workload/generator.h"

namespace doppler::workload {

namespace {

using catalog::Deployment;
using catalog::ResourceDim;

// Per-dimension throttling tolerance a negotiable dimension grants,
// relative to the options' base value. The spread across dimensions makes
// the per-group mean scores distinct (paper Table 3).
double DimTolerance(ResourceDim dim, double per_dim) {
  switch (dim) {
    case ResourceDim::kCpu:
      return per_dim * 1.2;
    case ResourceDim::kMemoryGb:
      return per_dim * 0.7;
    case ResourceDim::kIops:
      return per_dim * 1.0;
    case ResourceDim::kLogRateMbps:
      return per_dim * 0.6;
    default:
      return per_dim;
  }
}

// Demand target for one dimension, relative to an "effective scale" s that
// plays the role of the workload's natural vCore size.
double DimScale(ResourceDim dim, Deployment deployment, double s) {
  switch (dim) {
    case ResourceDim::kCpu:
      return s;
    case ResourceDim::kMemoryGb:
      return 5.2 * s;
    case ResourceDim::kIops:
      return deployment == Deployment::kSqlDb ? 320.0 * s : 680.0 * s;
    case ResourceDim::kLogRateMbps:
      return 3.75 * s;
    default:
      return s;
  }
}

// Builds the demand spec for one profiling dimension according to its
// ground-truth negotiability: negotiable dimensions show rare short spikes
// over a low base; non-negotiable ones sustain business-hour plateaus.
DimensionSpec ShapeForDim(ResourceDim dim, Deployment deployment, double s,
                          bool negotiable, bool simple_curve, Rng* rng) {
  const double scale = DimScale(dim, deployment, s);
  if (simple_curve) {
    // A sharp capacity cliff: tight steady demand.
    return DimensionSpec::Steady(scale * rng->Uniform(0.55, 0.75), 0.015);
  }
  if (negotiable) {
    // Rare short spikes over a base that breathes daily: the spikes make
    // the dimension negotiable (short time near the max), the breathing
    // base gives the curve intermediate quantiles so negotiating customers
    // can land anywhere between ~0 and ~20% throttling probability.
    DimensionSpec spec = DimensionSpec::Spiky(
        scale * rng->Uniform(0.18, 0.30),
        scale * rng->Uniform(0.55, 0.95),
        rng->Uniform(0.4, 1.6),
        rng->Uniform(15.0, 45.0),
        0.04);
    spec.base_amplitude = scale * rng->Uniform(0.25, 0.50);
    return spec;
  }
  return DimensionSpec::DailyPeriodic(scale * rng->Uniform(0.38, 0.52),
                                      scale * rng->Uniform(0.28, 0.42), 0.04);
}

}  // namespace

const char* CurveArchetypeName(CurveArchetype archetype) {
  switch (archetype) {
    case CurveArchetype::kFlat:
      return "flat";
    case CurveArchetype::kSimple:
      return "simple";
    case CurveArchetype::kComplex:
      return "complex";
  }
  return "?";
}

std::vector<catalog::ResourceDim> ProfilingDims(Deployment deployment) {
  if (deployment == Deployment::kSqlDb) {
    return {ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops,
            ResourceDim::kLogRateMbps};
  }
  return {ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops};
}

std::vector<bool> SyntheticCustomer::ProfileBits() const {
  std::vector<bool> bits;
  for (ResourceDim dim : ProfilingDims(deployment)) {
    bits.push_back(negotiable[static_cast<std::size_t>(dim)]);
  }
  return bits;
}

StatusOr<std::vector<SyntheticCustomer>> GeneratePopulation(
    const PopulationOptions& options) {
  if (options.num_customers <= 0) {
    return InvalidArgumentError("population size must be positive");
  }
  if (options.flat_fraction + options.simple_fraction > 1.0) {
    return InvalidArgumentError("curve-family fractions exceed 1");
  }
  if (options.duration_days < 1.0) {
    return InvalidArgumentError("assessment window must cover >= 1 day");
  }

  Rng master(options.seed);
  const std::vector<ResourceDim> profile_dims =
      ProfilingDims(options.deployment);

  std::vector<SyntheticCustomer> fleet;
  fleet.reserve(static_cast<std::size_t>(options.num_customers));

  for (int n = 0; n < options.num_customers; ++n) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(n));
    SyntheticCustomer customer;
    customer.id = (options.deployment == Deployment::kSqlDb ? "db-" : "mi-") +
                  std::to_string(n);
    customer.deployment = options.deployment;

    // Curve family.
    const double roll = rng.Uniform();
    if (roll < options.flat_fraction) {
      customer.archetype = CurveArchetype::kFlat;
    } else if (roll < options.flat_fraction + options.simple_fraction) {
      customer.archetype = CurveArchetype::kSimple;
    } else {
      customer.archetype = CurveArchetype::kComplex;
    }

    customer.over_provisioned =
        rng.Bernoulli(options.over_provisioned_fraction);
    customer.latency_sensitive =
        customer.archetype != CurveArchetype::kFlat &&
        rng.Bernoulli(options.latency_sensitive_fraction);

    // Effective workload scale in "vCores". Flat customers sit below the
    // smallest SKU in every dimension even at spike peaks; others span the
    // ladder with a bias towards small instances.
    double s = 0.0;
    const double min_vcores =
        options.deployment == Deployment::kSqlDb ? 2.0 : 4.0;
    switch (customer.archetype) {
      case CurveArchetype::kFlat:
        s = min_vcores * rng.Uniform(0.15, 0.55);
        break;
      case CurveArchetype::kSimple:
      case CurveArchetype::kComplex:
        s = min_vcores * std::exp(rng.Uniform(0.3, 2.4));
        break;
    }

    // Ground-truth negotiability per profiling dimension.
    const bool simple_curve = customer.archetype == CurveArchetype::kSimple;
    for (ResourceDim dim : profile_dims) {
      const bool negotiable =
          !simple_curve && rng.Bernoulli(options.negotiable_probability);
      customer.negotiable[static_cast<std::size_t>(dim)] = negotiable;
    }

    // Tolerance: epsilon + per-negotiable-dimension allowance with
    // personal noise.
    double tolerance = 0.002;
    for (ResourceDim dim : profile_dims) {
      if (customer.negotiable[static_cast<std::size_t>(dim)]) {
        tolerance += DimTolerance(dim, options.tolerance_per_negotiable_dim) *
                     rng.Uniform(0.8, 1.2);
      }
    }
    // Latency-sensitive customers run premium, risk-averse workloads:
    // they negotiate far less on throttling than their spiky dimensions
    // would otherwise suggest (the paper's BC customers fix their SKUs
    // very consistently - Table 5 micro accuracy).
    if (customer.latency_sensitive) tolerance *= rng.Uniform(0.2, 0.4);
    customer.tolerance = tolerance;

    // Demand spec.
    WorkloadSpec spec;
    spec.name = customer.id;
    for (ResourceDim dim : profile_dims) {
      spec.dims[dim] = ShapeForDim(
          dim, options.deployment, s,
          customer.negotiable[static_cast<std::size_t>(dim)], simple_curve,
          &rng);
    }
    // IO latency: sensitive customers live below the GP floor (5 ms), the
    // rest comfortably above it.
    spec.dims[ResourceDim::kIoLatencyMs] =
        customer.latency_sensitive
            ? DimensionSpec::Steady(rng.Uniform(1.4, 2.6), 0.05)
            : DimensionSpec::Steady(rng.Uniform(6.5, 9.0), 0.04);
    // Storage: slow growth over the window, capped so that even a
    // BC-restricted MI estate fits the largest BC SKU (4 TB).
    const double storage_gb =
        std::min(3400.0, rng.Uniform(8.0, 120.0) * std::max(1.0, s));
    spec.dims[ResourceDim::kStorageGb] =
        DimensionSpec::Trending(storage_gb, storage_gb * 0.03, 0.002);

    DOPPLER_ASSIGN_OR_RETURN(
        customer.trace, GenerateTrace(spec, options.duration_days, &rng));

    // MI file layout: a handful of data files covering the storage need.
    if (options.deployment == Deployment::kSqlMi) {
      const int files = 1 + static_cast<int>(rng.UniformInt(6));
      customer.layout = catalog::UniformLayout(storage_gb * 1.08, files);
    }

    fleet.push_back(std::move(customer));
  }
  return fleet;
}

}  // namespace doppler::workload
