#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace doppler::workload {

namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

DimensionProcess::DimensionProcess(const DimensionSpec& spec,
                                   double horizon_days, Rng* rng)
    : spec_(spec), horizon_days_(std::max(horizon_days, 0.01)) {
  phase_ = rng->Uniform(0.0, kTwoPi);
  if (spec_.pattern == UsagePattern::kSpiky ||
      spec_.pattern == UsagePattern::kBursty) {
    const int count = rng->Poisson(spec_.spike_rate_per_day * horizon_days_);
    spikes_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      Spike spike;
      spike.start_seconds = static_cast<std::int64_t>(
          rng->Uniform(0.0, horizon_days_ * kSecondsPerDay));
      // Durations are exponential around the mean so a few spikes run long.
      const double duration_seconds =
          std::max(60.0, rng->Exponential(1.0) * spec_.spike_duration_minutes *
                             60.0);
      spike.end_seconds =
          spike.start_seconds + static_cast<std::int64_t>(duration_seconds);
      // Heights vary mildly around the configured spike height.
      spike.height = spec_.amplitude * rng->Uniform(0.8, 1.2);
      spikes_.push_back(spike);
    }
    std::sort(spikes_.begin(), spikes_.end(),
              [](const Spike& a, const Spike& b) {
                return a.start_seconds < b.start_seconds;
              });
  }
}

double DimensionProcess::ValueAt(std::int64_t seconds) const {
  const double t_days = static_cast<double>(seconds) / kSecondsPerDay;
  double value = spec_.base;
  switch (spec_.pattern) {
    case UsagePattern::kSteady:
      value += spec_.amplitude *
               0.5 * (1.0 + std::sin(kTwoPi * t_days + phase_));
      break;
    case UsagePattern::kDailyPeriodic:
      value += spec_.amplitude *
               0.5 * (1.0 + std::sin(kTwoPi * t_days + phase_));
      break;
    case UsagePattern::kWeeklyPeriodic: {
      // A weekday plateau modulated by a 7-day cycle plus a daily ripple.
      const double weekly =
          0.5 * (1.0 + std::sin(kTwoPi * t_days / 7.0 + phase_));
      const double daily = 0.15 * std::sin(kTwoPi * t_days + phase_ * 0.7);
      value += spec_.amplitude * std::max(0.0, weekly + daily);
      break;
    }
    case UsagePattern::kSpiky:
    case UsagePattern::kBursty:
      value += spec_.base_amplitude * 0.5 *
               (1.0 + std::sin(kTwoPi * t_days + phase_));
      for (const Spike& spike : spikes_) {
        if (seconds >= spike.start_seconds && seconds < spike.end_seconds) {
          value += spike.height;
        }
        if (spike.start_seconds > seconds) break;  // Sorted by start.
      }
      break;
    case UsagePattern::kTrending:
      value += spec_.amplitude * (t_days / horizon_days_);
      break;
    case UsagePattern::kIdle:
      break;
  }
  return std::max(0.0, value);
}

StatusOr<telemetry::PerfTrace> GenerateTrace(
    const WorkloadSpec& spec, double duration_days,
    std::int64_t interval_seconds, Rng* rng) {
  if (spec.dims.empty()) {
    return InvalidArgumentError("workload spec has no dimensions");
  }
  if (duration_days <= 0.0) {
    return InvalidArgumentError("duration must be positive");
  }
  if (interval_seconds <= 0) {
    return InvalidArgumentError("interval must be positive");
  }
  if (rng == nullptr) return InvalidArgumentError("rng must not be null");

  const std::size_t samples = static_cast<std::size_t>(
      duration_days * kSecondsPerDay / static_cast<double>(interval_seconds));
  if (samples == 0) {
    return InvalidArgumentError("window shorter than one sample");
  }

  telemetry::PerfTrace trace(interval_seconds);
  trace.set_id(spec.name);
  for (const auto& [dim, dim_spec] : spec.dims) {
    DimensionProcess process(dim_spec, duration_days, rng);
    std::vector<double> values(samples);
    for (std::size_t i = 0; i < samples; ++i) {
      const std::int64_t t = static_cast<std::int64_t>(i) * interval_seconds;
      double v = process.ValueAt(t);
      if (dim_spec.noise_sigma > 0.0) {
        v *= std::max(0.0, 1.0 + rng->Normal(0.0, dim_spec.noise_sigma));
      }
      if (dim == catalog::ResourceDim::kIoLatencyMs) {
        v = std::max(0.05, v);  // Physical floor: storage is never free.
      }
      values[i] = v;
    }
    DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dim, std::move(values)));
  }
  return trace;
}

StatusOr<telemetry::PerfTrace> GenerateTrace(const WorkloadSpec& spec,
                                             double duration_days, Rng* rng) {
  return GenerateTrace(spec, duration_days, telemetry::kDmaIntervalSeconds,
                       rng);
}

telemetry::DemandSource MakeDemandSource(const WorkloadSpec& spec,
                                         double horizon_days, Rng* rng) {
  auto processes = std::make_shared<
      std::vector<std::pair<catalog::ResourceDim, DimensionProcess>>>();
  for (const auto& [dim, dim_spec] : spec.dims) {
    processes->emplace_back(dim, DimensionProcess(dim_spec, horizon_days, rng));
  }
  return [processes](std::int64_t seconds) {
    catalog::ResourceVector demand;
    for (const auto& [dim, process] : *processes) {
      double v = process.ValueAt(seconds);
      if (dim == catalog::ResourceDim::kIoLatencyMs) v = std::max(0.05, v);
      demand.Set(dim, v);
    }
    return demand;
  };
}

Status RampDimension(telemetry::PerfTrace* trace, catalog::ResourceDim dim,
                     std::size_t start_row, double factor) {
  if (trace == nullptr) {
    return InvalidArgumentError("RampDimension requires a trace");
  }
  if (!trace->Has(dim)) {
    return InvalidArgumentError(
        "RampDimension: trace lacks dimension '" +
        std::string(catalog::ResourceDimName(dim)) + "'");
  }
  std::vector<double> values = trace->Values(dim);
  for (std::size_t i = start_row; i < values.size(); ++i) {
    values[i] *= factor;
  }
  return trace->SetSeries(dim, std::move(values));
}

}  // namespace doppler::workload
