#include "stream/streaming_trace.h"

#include <algorithm>

namespace doppler::stream {

StreamingTrace::StreamingTrace(const std::vector<catalog::ResourceDim>& dims,
                               std::size_t capacity,
                               std::int64_t interval_seconds)
    : capacity_(std::max<std::size_t>(1, capacity)),
      interval_seconds_(interval_seconds) {
  for (catalog::ResourceDim dim : catalog::kAllResourceDims) {
    if (std::find(dims.begin(), dims.end(), dim) == dims.end()) continue;
    dims_.push_back(dim);
    present_[Index(dim)] = true;
    ring_[Index(dim)].assign(capacity_, 0.0);
  }
}

StatusOr<std::uint64_t> StreamingTrace::Append(const std::vector<double>& row) {
  if (full()) {
    return FailedPreconditionError(
        "streaming window is full (" + std::to_string(capacity_) +
        " rows); evict before appending");
  }
  if (row.size() != dims_.size()) {
    return InvalidArgumentError(
        "row has " + std::to_string(row.size()) + " values; window has " +
        std::to_string(dims_.size()) + " dimensions");
  }
  const std::uint64_t seq = next_seq_;
  const std::size_t slot = SlotOf(seq);
  for (std::size_t k = 0; k < dims_.size(); ++k) {
    ring_[Index(dims_[k])][slot] = row[k];
  }
  ++next_seq_;
  ++generation_;
  return seq;
}

Status StreamingTrace::PopFront() {
  if (empty()) {
    return FailedPreconditionError("streaming window is empty");
  }
  ++first_seq_;
  ++generation_;
  return OkStatus();
}

telemetry::PerfTrace StreamingTrace::Materialize() const {
  telemetry::PerfTrace trace(interval_seconds_);
  trace.set_id(id_);
  const std::size_t n = size();
  for (catalog::ResourceDim dim : dims_) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = ValueAt(dim, first_seq_ + i);
    }
    // All columns share one length; SetSeries cannot fail here.
    (void)trace.SetSeries(dim, std::move(values));
  }
  return trace;
}

}  // namespace doppler::stream
