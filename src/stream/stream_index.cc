#include "stream/stream_index.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "util/aligned.h"
#include "util/kernels/kernels.h"

namespace doppler::stream {

namespace {

void CountRowsPatched(std::size_t slots) {
  static obs::Counter* const kPatched =
      obs::DefaultMetrics().GetCounter("stream.rows_patched");
  kPatched->Increment(slots);
}

void CountIndexMiss() {
  static obs::Counter* const kMisses =
      obs::DefaultMetrics().GetCounter("stream.index_misses");
  kMisses->Increment();
}

void CountIndexHit() {
  static obs::Counter* const kHits =
      obs::DefaultMetrics().GetCounter("stream.index_hits");
  kHits->Increment();
}

}  // namespace

StreamIndex::StreamIndex(const StreamingTrace* trace, const StreamStats* stats)
    : trace_(trace), stats_(stats), num_words_((trace->capacity() + 63) / 64) {}

void StreamIndex::OnAppend(std::uint64_t seq) {
  const std::size_t slot = trace_->SlotOf(seq);
  std::size_t patched = 0;
  for (catalog::ResourceDim dim : trace_->dims()) {
    DimState& state = dims_[Index(dim)];
    if (state.memo.empty()) continue;
    const double value = trace_->ValueAt(dim, seq);
    for (auto& [capacity, set] : state.memo) {
      if (!ExceedsValue(dim, value, capacity)) continue;
      set.words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++set.count;
    }
    patched += state.memo.size();
  }
  if (patched != 0) CountRowsPatched(patched);
}

void StreamIndex::OnEvict(std::uint64_t seq) {
  const std::size_t slot = trace_->SlotOf(seq);
  std::size_t patched = 0;
  for (catalog::ResourceDim dim : trace_->dims()) {
    DimState& state = dims_[Index(dim)];
    if (state.memo.empty()) continue;
    const double value = trace_->ValueAt(dim, seq);
    for (auto& [capacity, set] : state.memo) {
      if (!ExceedsValue(dim, value, capacity)) continue;
      set.words[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      --set.count;
    }
    patched += state.memo.size();
  }
  if (patched != 0) CountRowsPatched(patched);
}

const core::ExceedanceSet& StreamIndex::SetFor(catalog::ResourceDim dim,
                                               double capacity) const {
  DimState& state = dims_[Index(dim)];
  const auto it = state.memo.find(capacity);
  if (it != state.memo.end()) {
    CountIndexHit();
    return it->second;
  }

  // First sight of this capacity: the exceeding rows are one contiguous
  // run of the stats sorted order (suffix for normal dims, prefix for
  // inverted), exactly as in the offline index — materialise their SLOTS.
  // Same sorted-scan hybrid as the offline boundary.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  const std::vector<double>& sorted = stats_->Sorted(dim);
  const std::vector<std::uint64_t>& seqs = stats_->SortedSeqs(dim);
  std::size_t begin = 0;
  std::size_t end = sorted.size();
  if (catalog::IsInvertedDim(dim)) {
    end = kernels::SortedCountBelow(ops, sorted.data(), sorted.size(),
                                    capacity);
  } else {
    begin = sorted.size() - kernels::SortedCountAbove(ops, sorted.data(),
                                                      sorted.size(), capacity);
  }

  core::ExceedanceSet set;
  std::uint64_t* const words = state.arena.Allocate(num_words_);
  set.words = words;
  set.num_words = num_words_;
  set.count = end - begin;
  for (std::size_t j = begin; j < end; ++j) {
    const std::size_t slot = trace_->SlotOf(seqs[j]);
    words[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  }
  assert(kernels::PaddingBitsAreZero(words, num_words_, trace_->capacity()));
  CountIndexMiss();
  CountRowsPatched(set.count);
  return state.memo.emplace(capacity, set).first->second;
}

std::size_t StreamIndex::CountExceedingUnion(
    const catalog::ResourceVector& capacities) const {
  std::array<const core::ExceedanceSet*, catalog::kNumResourceDims> sets;
  std::size_t num_sets = 0;
  for (catalog::ResourceDim dim : trace_->dims()) {
    if (!capacities.Has(dim)) continue;
    sets[num_sets++] = &SetFor(dim, capacities.Get(dim));
  }
  if (num_sets == 0) return 0;
  if (num_sets == 1) return sets[0]->count;

  // Same dispatched union kernel as the offline index — the loop used to
  // be a hand copy of core::ExceedanceIndex's and is now literally the
  // same code path.
  const kernels::KernelOps& ops = kernels::ActiveKernels();
  const std::size_t live = trace_->size();
  thread_local AlignedVector<std::uint64_t> union_words;
  union_words.assign(num_words_, 0);
  std::size_t count = 0;
  for (std::size_t k = 0; k < num_sets && count < live; ++k) {
    count += ops.union_count(union_words.data(), sets[k]->words, num_words_);
  }
  core::TrimScratch(union_words);
  return count;
}

}  // namespace doppler::stream
