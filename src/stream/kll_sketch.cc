#include "stream/kll_sketch.h"

#include <algorithm>
#include <cmath>

namespace doppler::stream {

KllSketch::KllSketch(std::size_t k, std::uint64_t seed)
    : k_(std::max<std::size_t>(8, k)), rng_(seed) {
  levels_.emplace_back();
  levels_.front().reserve(k_);
}

std::size_t KllSketch::retained() const {
  std::size_t total = 0;
  for (const std::vector<double>& level : levels_) total += level.size();
  return total;
}

void KllSketch::Add(double value) {
  levels_.front().push_back(value);
  ++count_;
  CompactCascade();
}

void KllSketch::CompactLevel(std::size_t h) {
  // Grow first: emplace_back can reallocate levels_, so references into it
  // must only be taken afterwards.
  if (h + 1 == levels_.size()) levels_.emplace_back();
  std::vector<double>& level = levels_[h];
  std::vector<double>& next = levels_[h + 1];
  std::sort(level.begin(), level.end());
  // Seeded coin: keep the items at offset, offset+2, ... — each survivor
  // stands for itself and a discarded neighbour, shifting any rank by at
  // most one item weight, hence the += 2^h on the tracked bound.
  const std::size_t offset =
      static_cast<std::size_t>(rng_.NextUint64() & 1u);
  for (std::size_t i = offset; i < level.size(); i += 2) {
    next.push_back(level[i]);
  }
  level.clear();
  rank_error_bound_ += std::uint64_t{1} << h;
}

void KllSketch::CompactCascade() {
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() >= k_) CompactLevel(h);
  }
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (std::size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  rank_error_bound_ += other.rank_error_bound_;
  CompactCascade();
}

double KllSketch::EstimateRank(double value) const {
  double rank = 0.0;
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    const double weight = std::ldexp(1.0, static_cast<int>(h));
    for (double item : levels_[h]) {
      if (item < value) rank += weight;
    }
  }
  return rank;
}

double KllSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);

  // Gather (value, weight), sort by value, walk the cumulative weight.
  std::vector<std::pair<double, double>> items;
  items.reserve(retained());
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    const double weight = std::ldexp(1.0, static_cast<int>(h));
    for (double item : levels_[h]) items.emplace_back(item, weight);
  }
  std::sort(items.begin(), items.end());
  double cumulative = 0.0;
  for (const auto& [value, weight] : items) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return items.back().first;
}

}  // namespace doppler::stream
