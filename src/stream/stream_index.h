#ifndef DOPPLER_STREAM_STREAM_INDEX_H_
#define DOPPLER_STREAM_STREAM_INDEX_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "catalog/resource.h"
#include "core/exceedance_index.h"
#include "stream/stream_stats.h"
#include "stream/streaming_trace.h"
#include "util/kernels/bitset_arena.h"

namespace doppler::stream {

/// Incrementally maintained exceedance index over a StreamingTrace window —
/// the streaming counterpart of core::ExceedanceIndex (DESIGN.md §13).
///
/// Per (dimension, distinct capacity) it memoizes an ExceedanceSet whose
/// bits are RING-SLOT-aligned (bit = seq % window capacity) rather than
/// row-aligned: slots are stable across evictions, so each append/evict
/// patches one bit per memoized set (set/clear + count ±1) instead of
/// rebuilding the bitset. Dead slots are zero in every set — an evict
/// clears its bit before the slot is reused — so the union of per-dim
/// sets ORs and popcounts exactly like the offline index, and
/// CountExceedingUnion / SetFor(...).count equal the counts a fresh
/// core::ExceedanceIndex over the materialised window produces (the
/// differential harness locks this; bit POSITIONS differ by the
/// slot-vs-row alignment, counts cannot).
///
/// Membership uses the same strict comparisons as
/// catalog::ResourceVector::Exceeds (demand > capacity; demand < capacity
/// for inverted dims), so rows tied at the capacity stay out.
///
/// A NEW capacity's first SetFor builds its set from the StreamStats
/// sorted run boundary (O(exceeding rows)), charging those rows to
/// `stream.rows_patched`; afterwards every mutation patches each memoized
/// set at one bit, charged likewise. Externally synchronized, like the
/// trace and stats it mirrors.
class StreamIndex {
 public:
  /// Borrows `trace` and `stats` (both over the same window, both must
  /// outlive the index and start empty alongside it).
  StreamIndex(const StreamingTrace* trace, const StreamStats* stats);

  StreamIndex(const StreamIndex&) = delete;
  StreamIndex& operator=(const StreamIndex&) = delete;

  /// Words per bitset: fixed by the ring capacity, not the live size.
  std::size_t num_words() const { return num_words_; }

  /// Patches every memoized (dim, capacity) set for the row just appended
  /// at `seq` (call after StreamingTrace::Append).
  void OnAppend(std::uint64_t seq);

  /// Patches every memoized set for the row about to be evicted at `seq`
  /// (call BEFORE StreamingTrace::PopFront).
  void OnEvict(std::uint64_t seq);

  /// The memoized slot-aligned exceedance set for one (dim, capacity);
  /// built from the stats sorted run on first use, patched incrementally
  /// afterwards. The dimension must be in the window.
  const core::ExceedanceSet& SetFor(catalog::ResourceDim dim,
                                    double capacity) const;

  /// Rows of the live window throttled by ANY window dimension priced in
  /// `capacities` — same contract as core::ExceedanceIndex, answered from
  /// the patched sets.
  std::size_t CountExceedingUnion(
      const catalog::ResourceVector& capacities) const;

  /// Distinct capacities currently memoized for a dimension.
  std::size_t MemoSize(catalog::ResourceDim dim) const {
    return dims_[Index(dim)].memo.size();
  }

 private:
  struct DimState {
    // std::map for node stability: SetFor hands out references that must
    // survive later memo insertions.
    std::map<double, core::ExceedanceSet> memo;
    // Backing store for the memoized bitsets — the same cache-line-aligned
    // arena the offline index uses. Stream memo entries live for the
    // index's lifetime (patched, never rebuilt), so the arena only grows
    // with distinct capacities and is never Reset().
    kernels::BitsetArena arena;
  };

  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  /// True when demand `value` exceeds `capacity` on `dim` —
  /// ResourceVector::Exceeds semantics.
  static bool ExceedsValue(catalog::ResourceDim dim, double value,
                           double capacity) {
    return catalog::IsInvertedDim(dim) ? value < capacity : value > capacity;
  }

  const StreamingTrace* trace_;
  const StreamStats* stats_;
  std::size_t num_words_;
  mutable std::array<DimState, catalog::kNumResourceDims> dims_;
};

}  // namespace doppler::stream

#endif  // DOPPLER_STREAM_STREAM_INDEX_H_
