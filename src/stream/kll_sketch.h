#ifndef DOPPLER_STREAM_KLL_SKETCH_H_
#define DOPPLER_STREAM_KLL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace doppler::stream {

/// Bounded-memory streaming quantile sketch in the KLL/MRL compactor style
/// (DESIGN.md §13): levels of buffers where a level-h item stands for 2^h
/// stream items. Appends land in level 0; a level that reaches the
/// per-level budget `k` is sorted and compacted — every other item (from a
/// seeded coin-flip offset) survives to level h+1 at doubled weight.
///
/// The sketch tracks its own DETERMINISTIC worst-case rank error: one
/// compaction at level h can shift any value's weighted rank by at most
/// 2^h, so `rank_error_bound()` accumulates exactly that per compaction.
/// EstimateRank is then guaranteed within the bound of the exact rank —
/// an assertable invariant, not a probabilistic one — which is what the
/// adversarial error-bound tests lock. With per-level budget k the bound
/// grows as O((n/k)·log(n/k)) while `retained()` stays O(k·log(n/k)).
///
/// Sketches are mergeable: Merge concatenates level-wise and re-compacts;
/// counts add, bounds add, so merge order changes which items survive but
/// never the guarantee (merge(a,b) and merge(b,a) both answer within the
/// summed bound — the associativity-within-bound property tests lock).
///
/// The sketch summarises the LIFETIME stream: unlike the windowed exact
/// caches it cannot evict, which is exactly its role — the fallback the
/// CustomerWindow switches to when the configured window exceeds the row
/// budget that keeps exact per-row state affordable.
class KllSketch {
 public:
  /// `k` is the per-level item budget (clamped to >= 8); `seed` drives the
  /// compaction coin so a given insertion order is fully deterministic.
  explicit KllSketch(std::size_t k = 200, std::uint64_t seed = 0);

  /// Stream items summarised so far.
  std::uint64_t count() const { return count_; }

  /// Deterministic worst-case absolute rank error of EstimateRank.
  std::uint64_t rank_error_bound() const { return rank_error_bound_; }

  /// Items currently held across all levels.
  std::size_t retained() const;

  /// Number of levels (max item weight is 2^(num_levels()-1)).
  std::size_t num_levels() const { return levels_.size(); }

  void Add(double value);

  /// Folds `other` into this sketch (same `k` expected; `other`'s items
  /// keep their weights). Counts and error bounds add.
  void Merge(const KllSketch& other);

  /// Estimated number of stream items strictly less than `value`; within
  /// rank_error_bound() of the exact count.
  double EstimateRank(double value) const;

  /// Value whose estimated rank first reaches q*count (clamped q). The
  /// exact rank of the result is within rank_error_bound() plus the
  /// returned item's own weight (≤ 2^(num_levels()-1)) of q*count.
  double Quantile(double q) const;

 private:
  /// Sorts level h and promotes every other item to level h+1.
  void CompactLevel(std::size_t h);
  /// Compacts any level at or over budget, cascading upward.
  void CompactCascade();

  std::size_t k_;
  Rng rng_;
  std::uint64_t count_ = 0;
  std::uint64_t rank_error_bound_ = 0;
  std::vector<std::vector<double>> levels_;
};

}  // namespace doppler::stream

#endif  // DOPPLER_STREAM_KLL_SKETCH_H_
