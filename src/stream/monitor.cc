#include "stream/monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace doppler::stream {

namespace {

using catalog::ResourceDim;

obs::Counter* CounterNamed(const char* name) {
  return obs::DefaultMetrics().GetCounter(name);
}

/// The seven pipeline stages in canonical order (for mask rendering and
/// per-stage counters).
constexpr dma::Stage kStageOrder[] = {
    dma::kStagePreprocess, dma::kStageQuality,    dma::kStageLayout,
    dma::kStageRecommend,  dma::kStageBaseline,   dma::kStageConfidence,
    dma::kStageRightsizing,
};

}  // namespace

CustomerWindow::CustomerWindow(std::string customer_id,
                               const std::vector<ResourceDim>& dims,
                               const MonitorOptions& options)
    : customer_id_(std::move(customer_id)),
      exact_mode_(options.window_rows <= options.sketch_row_budget),
      trace_(dims,
             exact_mode_ ? options.window_rows : options.sketch_row_budget),
      stats_(&trace_),
      index_(&trace_, &stats_) {
  trace_.set_id(customer_id_);
  for (ResourceDim dim : trace_.dims()) {
    // Per-dimension seed stream so equal-valued dims don't share coin
    // flips; the offset keeps it deterministic per (seed, dim).
    sketches_[Index(dim)] = std::make_unique<KllSketch>(
        options.kll_k, options.kll_seed + 0x9E37u * (Index(dim) + 1));
  }
}

StatusOr<CustomerWindow::BatchResult> CustomerWindow::Append(
    const telemetry::PerfTrace& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ResourceDim dim : trace_.dims()) {
    if (!batch.Has(dim)) {
      return InvalidArgumentError(
          "batch for '" + customer_id_ + "' lacks window dimension '" +
          std::string(catalog::ResourceDimName(dim)) + "'");
    }
  }
  BatchResult result;
  std::vector<double> row(trace_.dims().size());
  for (std::size_t r = 0; r < batch.num_samples(); ++r) {
    // Evict-before-append keeps every borrower in step: stats and index
    // observe the departing row while its ring slot is still live.
    if (trace_.full()) {
      const std::uint64_t oldest = trace_.first_seq();
      stats_.OnEvict(oldest);
      index_.OnEvict(oldest);
      (void)trace_.PopFront();
      ++result.evicted;
    }
    for (std::size_t k = 0; k < trace_.dims().size(); ++k) {
      row[k] = batch.Values(trace_.dims()[k])[r];
    }
    DOPPLER_ASSIGN_OR_RETURN(const std::uint64_t seq, trace_.Append(row));
    stats_.OnAppend(seq);
    index_.OnAppend(seq);
    for (std::size_t k = 0; k < trace_.dims().size(); ++k) {
      sketches_[Index(trace_.dims()[k])]->Add(row[k]);
    }
    ++total_rows_;
    ++result.appended;
  }
  return result;
}

std::size_t CustomerWindow::resident_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.size();
}

std::uint64_t CustomerWindow::total_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rows_;
}

telemetry::PerfTrace CustomerWindow::MaterializeTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_.Materialize();
}

double CustomerWindow::WindowMean(ResourceDim dim) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.Mean(dim);
}

double CustomerWindow::Quantile(ResourceDim dim, double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (exact_mode_) return stats_.Quantile(dim, q);
  return sketches_[Index(dim)]->Quantile(q);
}

std::size_t CustomerWindow::CountExceedingUnion(
    const catalog::ResourceVector& capacities) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.CountExceedingUnion(capacities);
}

bool CustomerWindow::assessed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assessed_;
}

void CustomerWindow::MarkAssessed() {
  std::lock_guard<std::mutex> lock(mu_);
  assessed_ = true;
  for (ResourceDim dim : trace_.dims()) {
    baseline_means_[Index(dim)] = stats_.Mean(dim);
  }
}

std::vector<ResourceDim> CustomerWindow::DriftedDims(double tolerance,
                                                     double floor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResourceDim> drifted;
  if (!assessed_) return drifted;
  for (ResourceDim dim : trace_.dims()) {
    const double baseline = baseline_means_[Index(dim)];
    const double current = stats_.Mean(dim);
    const double scale = std::max(std::fabs(baseline), floor);
    if (std::fabs(current - baseline) > tolerance * scale) {
      drifted.push_back(dim);
    }
  }
  return drifted;
}

StreamMonitor::StreamMonitor(const dma::SkuRecommendationPipeline* pipeline,
                             MonitorOptions options)
    : pipeline_(pipeline), options_(std::move(options)) {}

StatusOr<CustomerWindow*> StreamMonitor::WindowFor(
    const std::string& customer_id, const telemetry::PerfTrace& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(customer_id);
  if (it == windows_.end()) {
    const std::vector<ResourceDim> dims = batch.PresentDims();
    if (dims.empty()) {
      return InvalidArgumentError("first batch for '" + customer_id +
                                  "' carries no dimensions");
    }
    it = windows_
             .emplace(customer_id, std::make_unique<CustomerWindow>(
                                       customer_id, dims, options_))
             .first;
    obs::DefaultMetrics()
        .GetGauge("stream.customers")
        ->Set(static_cast<double>(windows_.size()));
  }
  return it->second.get();
}

StatusOr<MonitorEvent> StreamMonitor::Ingest(
    const std::string& customer_id, const telemetry::PerfTrace& batch) {
  static obs::Counter* const kBatches = CounterNamed("stream.batches");
  static obs::Counter* const kAppended = CounterNamed("stream.appended");
  static obs::Counter* const kEvicted = CounterNamed("stream.evicted");
  static obs::Counter* const kDriftTrips = CounterNamed("stream.drift_trips");
  static obs::Counter* const kReassessments =
      CounterNamed("stream.reassessments");
  static obs::Counter* const kInitial =
      CounterNamed("stream.initial_assessments");

  DOPPLER_ASSIGN_OR_RETURN(CustomerWindow * window,
                           WindowFor(customer_id, batch));
  DOPPLER_ASSIGN_OR_RETURN(const CustomerWindow::BatchResult appended,
                           window->Append(batch));
  kBatches->Increment();
  kAppended->Increment(appended.appended);
  kEvicted->Increment(appended.evicted);

  MonitorEvent event;
  event.customer_id = customer_id;
  event.appended = appended.appended;
  event.evicted = appended.evicted;
  event.resident = window->resident_rows();
  {
    std::lock_guard<std::mutex> lock(mu_);
    double resident = 0.0;
    for (const auto& [id, w] : windows_) {
      resident += static_cast<double>(w->resident_rows());
    }
    obs::DefaultMetrics().GetGauge("stream.resident_rows")->Set(resident);
  }

  // Assessment policy: one initial full-minus-confidence assessment once
  // the window is deep enough, then drift-gated re-assessment of only the
  // stages the shifted demand can change.
  const bool initial =
      !window->assessed() && event.resident >= options_.min_assess_rows;
  if (!initial) {
    event.drifted_dims =
        window->DriftedDims(options_.drift_tolerance, options_.drift_floor);
    if (event.drifted_dims.empty()) return event;
    kDriftTrips->Increment(event.drifted_dims.size());
  }

  dma::StageMask mask = dma::kStagePreprocess | dma::kStageQuality |
                        dma::kStageLayout | dma::kStageRecommend;
  if (initial) mask |= dma::kStageBaseline;
  if (!options_.current_sku_id.empty()) mask |= dma::kStageRightsizing;

  dma::AssessmentRequest request;
  request.customer_id = customer_id;
  request.target = options_.target;
  request.database_traces.push_back(window->MaterializeTrace());
  request.current_sku_id = options_.current_sku_id;
  request.compute_confidence = false;
  DOPPLER_ASSIGN_OR_RETURN(dma::AssessmentOutcome outcome,
                           pipeline_->AssessStages(request, mask));

  event.assessed = true;
  event.initial = initial;
  event.stage_mask = mask;
  event.completed_stages = outcome.completed_stages;
  event.elastic_sku_id = outcome.elastic.sku.id;
  event.elastic_monthly_cost = outcome.elastic.monthly_cost;
  event.elastic_throttling_probability =
      outcome.elastic.throttling_probability;
  (initial ? kInitial : kReassessments)->Increment();
  // Per-stage run counters are the observable proof that a drift tick ran
  // ONLY the affected stages (no baseline/confidence riding along).
  for (dma::Stage stage : kStageOrder) {
    if (!(outcome.completed_stages & stage)) continue;
    obs::DefaultMetrics()
        .GetCounter(std::string("stream.stage_runs.") +
                    dma::StageName(stage))
        ->Increment();
  }
  window->MarkAssessed();

  if (!initial && !options_.current_sku_id.empty()) {
    // Best effort: the detector needs enough rows to split windows; a
    // short trace is not a monitoring failure.
    StatusOr<core::DriftReport> report = core::DetectSkuDrift(
        request.database_traces.front(),
        pipeline_->compiled().ForDeployment(options_.target).view(), pricing_,
        estimator_, options_.current_sku_id, options_.sku_drift);
    if (report.ok()) event.sku_drift = std::move(*report);
  }
  return event;
}

std::size_t StreamMonitor::num_customers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.size();
}

const CustomerWindow* StreamMonitor::window(
    const std::string& customer_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = windows_.find(customer_id);
  return it == windows_.end() ? nullptr : it->second.get();
}

std::string RenderMonitorEventJson(const MonitorEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key("customer_id").String(event.customer_id);
  json.Key("appended").Int(static_cast<long long>(event.appended));
  json.Key("evicted").Int(static_cast<long long>(event.evicted));
  json.Key("resident").Int(static_cast<long long>(event.resident));
  json.Key("drifted_dims").BeginArray();
  for (ResourceDim dim : event.drifted_dims) {
    json.String(catalog::ResourceDimName(dim));
  }
  json.EndArray();
  json.Key("assessed").Bool(event.assessed);
  if (event.assessed) {
    json.Key("initial").Bool(event.initial);
    json.Key("stages").BeginArray();
    for (dma::Stage stage : kStageOrder) {
      if (event.completed_stages & stage) {
        json.String(dma::StageName(stage));
      }
    }
    json.EndArray();
    json.Key("sku").String(event.elastic_sku_id);
    json.Key("monthly_cost").Number(event.elastic_monthly_cost);
    json.Key("throttling_probability")
        .Number(event.elastic_throttling_probability);
  }
  if (event.sku_drift.has_value()) {
    json.Key("sku_drift").BeginObject();
    json.Key("baseline_probability")
        .Number(event.sku_drift->baseline_probability);
    json.Key("recent_probability")
        .Number(event.sku_drift->recent_probability);
    json.Key("needs_change").Bool(event.sku_drift->needs_change);
    if (!event.sku_drift->recommended_sku_id.empty()) {
      json.Key("recommended_sku").String(event.sku_drift->recommended_sku_id);
    }
    json.EndObject();
  }
  json.EndObject();
  return json.str();
}

std::string RenderMonitorEventText(const MonitorEvent& event) {
  std::ostringstream out;
  out << event.customer_id << ": +" << event.appended << " rows ("
      << event.resident << " resident, " << event.evicted << " evicted)";
  if (!event.drifted_dims.empty()) {
    out << " drift[";
    for (std::size_t i = 0; i < event.drifted_dims.size(); ++i) {
      if (i != 0) out << ",";
      out << catalog::ResourceDimName(event.drifted_dims[i]);
    }
    out << "]";
  }
  if (event.assessed) {
    out << (event.initial ? " assessed" : " re-assessed") << " -> "
        << event.elastic_sku_id;
  }
  if (event.sku_drift.has_value() && event.sku_drift->needs_change) {
    out << " (SKU change: " << event.sku_drift->recommended_sku_id << ")";
  }
  out << "\n";
  return out.str();
}

}  // namespace doppler::stream
