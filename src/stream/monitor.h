#ifndef DOPPLER_STREAM_MONITOR_H_
#define DOPPLER_STREAM_MONITOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/pricing.h"
#include "catalog/resource.h"
#include "core/drift.h"
#include "core/throttling.h"
#include "dma/pipeline.h"
#include "stream/kll_sketch.h"
#include "stream/stream_index.h"
#include "stream/stream_stats.h"
#include "stream/streaming_trace.h"
#include "util/statusor.h"

namespace doppler::stream {

/// Tuning for the streaming monitor (DESIGN.md §13).
struct MonitorOptions {
  /// Sliding-window length per customer, in rows (default: one week at
  /// the DMA cadence).
  std::size_t window_rows = 7 * telemetry::kSamplesPerDay;
  /// Exact-mode budget: a window configured LARGER than this runs in
  /// sketch mode — the resident ring is clamped to the budget (most
  /// recent rows) and full-stream quantiles come from the KLL sketches
  /// instead of exact per-row order statistics.
  std::size_t sketch_row_budget = 30 * telemetry::kSamplesPerDay;
  /// Per-level budget and seed of the KLL sketches.
  std::size_t kll_k = 200;
  std::uint64_t kll_seed = 41;
  /// Rows a new customer must accumulate before the initial assessment.
  std::size_t min_assess_rows = 2 * telemetry::kSamplesPerDay;
  /// A dimension drifts when its window mean moved by more than
  /// tolerance * max(|baseline mean|, floor) since the last assessment.
  double drift_tolerance = 0.25;
  double drift_floor = 1e-9;
  /// Migration target of monitor-triggered assessments.
  catalog::Deployment target = catalog::Deployment::kSqlDb;
  /// When set, drift re-assessments include the right-sizing stage
  /// against this SKU and additionally run core::DetectSkuDrift.
  std::string current_sku_id;
  /// Windowing of the SKU drift detector (used when current_sku_id set).
  core::DriftOptions sku_drift;
};

/// One customer's streaming state: the ring window plus every incremental
/// borrower patched in lock step — StreamStats (sorted order), StreamIndex
/// (exceedance bitsets) and one lifetime KLL sketch per dimension.
///
/// Mode is fixed at creation: EXACT when the configured window fits the
/// sketch_row_budget, SKETCH otherwise (ring clamped to the budget,
/// quantiles answered from the sketches). Thread-safe: a mutex serialises
/// appends against reads, so a reader may snapshot while an appender
/// streams — the TSan soak drives exactly that.
class CustomerWindow {
 public:
  /// `dims` (typically the first batch's present dims) fixes the window
  /// schema; later batches must carry at least these dimensions.
  CustomerWindow(std::string customer_id,
                 const std::vector<catalog::ResourceDim>& dims,
                 const MonitorOptions& options);

  struct BatchResult {
    std::size_t appended = 0;
    std::size_t evicted = 0;
  };

  /// Appends every row of `batch` (evicting from the front as the ring
  /// fills), patching stats, index and sketches per row. Fails without
  /// side effects when the batch lacks a window dimension.
  StatusOr<BatchResult> Append(const telemetry::PerfTrace& batch);

  const std::string& customer_id() const { return customer_id_; }
  bool exact_mode() const { return exact_mode_; }
  const std::vector<catalog::ResourceDim>& dims() const {
    return trace_.dims();
  }

  std::size_t resident_rows() const;
  /// Lifetime row count (resident + evicted).
  std::uint64_t total_rows() const;

  /// Snapshot of the resident window as a frozen PerfTrace (seq order).
  telemetry::PerfTrace MaterializeTrace() const;

  /// Mean of the resident window (drift detection's signal).
  double WindowMean(catalog::ResourceDim dim) const;

  /// Exact mode: bit-identical R-7 quantile over the resident window.
  /// Sketch mode: KLL estimate over the LIFETIME stream.
  double Quantile(catalog::ResourceDim dim, double q) const;

  /// Rows of the resident window exceeding `capacities` on any dimension
  /// (answered from the patched bitsets).
  std::size_t CountExceedingUnion(
      const catalog::ResourceVector& capacities) const;

  const KllSketch& sketch(catalog::ResourceDim dim) const {
    return *sketches_[static_cast<std::size_t>(static_cast<int>(dim))];
  }

  // --- Assessment bookkeeping (driven by StreamMonitor) ---------------

  bool assessed() const;
  /// Records that an assessment ran now: captures the current window
  /// means as the new drift baseline.
  void MarkAssessed();
  /// Dimensions whose window mean drifted past tolerance since the last
  /// MarkAssessed (empty before the first).
  std::vector<catalog::ResourceDim> DriftedDims(double tolerance,
                                                double floor) const;

 private:
  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  std::string customer_id_;
  bool exact_mode_;
  mutable std::mutex mu_;
  StreamingTrace trace_;
  StreamStats stats_;
  StreamIndex index_;
  std::array<std::unique_ptr<KllSketch>, catalog::kNumResourceDims> sketches_;
  std::uint64_t total_rows_ = 0;
  bool assessed_ = false;
  std::array<double, catalog::kNumResourceDims> baseline_means_{};
};

/// What one ingested batch did to the stream (rendered by `doppler
/// monitor`).
struct MonitorEvent {
  std::string customer_id;
  std::size_t appended = 0;
  std::size_t evicted = 0;
  std::size_t resident = 0;
  /// Dimensions that tripped the drift detector on this batch.
  std::vector<catalog::ResourceDim> drifted_dims;
  /// An assessment ran on this batch (initial or drift-triggered).
  bool assessed = false;
  /// True for a customer's first assessment (full pipeline minus
  /// confidence), false for the cheap drift re-assessment.
  bool initial = false;
  /// The stage mask the assessment requested / completed.
  dma::StageMask stage_mask = 0;
  dma::StageMask completed_stages = 0;
  /// Elastic pick of the latest assessment on this batch.
  std::string elastic_sku_id;
  double elastic_monthly_cost = 0.0;
  double elastic_throttling_probability = 0.0;
  /// SKU drift report (only when options.current_sku_id set and drift
  /// tripped, and the detector had enough data).
  std::optional<core::DriftReport> sku_drift;
};

/// The `doppler monitor` engine: per-customer sliding windows fed from
/// telemetry batches, incremental cache maintenance per row, and
/// drift-triggered re-assessment of ONLY the affected stages through the
/// shared pipeline (DESIGN.md §13).
///
/// Assessment policy: a customer's first min_assess_rows trigger one
/// initial assessment over {preprocess, quality, layout, recommend,
/// baseline} (+rightsizing when a current SKU is named) — everything but
/// the bootstrap confidence stage, which has no business on a monitoring
/// tick. Afterwards each batch compares window means against the baseline
/// captured at the last assessment; a tripped dimension re-runs only
/// {preprocess, quality, layout, recommend} (+rightsizing with a current
/// SKU). Stage executions are counted per stage under
/// `stream.stage_runs.<span-name>`, which is how the tests verify that
/// baseline/confidence never ride along on a drift tick.
class StreamMonitor {
 public:
  /// Borrows `pipeline` (must outlive the monitor).
  StreamMonitor(const dma::SkuRecommendationPipeline* pipeline,
                MonitorOptions options);

  /// Feeds one telemetry batch into `customer_id`'s window (created on
  /// first sight with the batch's dimensions) and runs the assessment
  /// policy. Thread-safe across customers.
  StatusOr<MonitorEvent> Ingest(const std::string& customer_id,
                                const telemetry::PerfTrace& batch);

  std::size_t num_customers() const;
  /// The customer's window, or nullptr when never seen.
  const CustomerWindow* window(const std::string& customer_id) const;

  const MonitorOptions& options() const { return options_; }

 private:
  StatusOr<CustomerWindow*> WindowFor(const std::string& customer_id,
                                      const telemetry::PerfTrace& batch);

  const dma::SkuRecommendationPipeline* pipeline_;
  MonitorOptions options_;
  /// Pricing/estimator for the SKU drift detector (the pipeline does not
  /// expose its own).
  catalog::DefaultPricing pricing_;
  core::NonParametricEstimator estimator_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CustomerWindow>> windows_;
};

/// One JSON object per event (machine-readable monitor output).
std::string RenderMonitorEventJson(const MonitorEvent& event);

/// One human-readable line per event.
std::string RenderMonitorEventText(const MonitorEvent& event);

}  // namespace doppler::stream

#endif  // DOPPLER_STREAM_MONITOR_H_
