#ifndef DOPPLER_STREAM_STREAM_STATS_H_
#define DOPPLER_STREAM_STREAM_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "catalog/resource.h"
#include "stream/streaming_trace.h"

namespace doppler::stream {

/// Incrementally maintained order statistics over a StreamingTrace window —
/// the streaming counterpart of telemetry::TraceStatsCache (DESIGN.md §13).
///
/// Per dimension it keeps the window's values in ascending (value, seq)
/// order as two parallel vectors. Because window-relative row index equals
/// seq - first_seq (monotone in seq), this order is exactly the
/// (value, row-index) order TraceStatsCache::Argsort produces on the
/// materialised window — so Sorted(), RowOf() and Quantile() are
/// bit-identical to rebuilding a TraceStatsCache from scratch, which the
/// differential harness (tests/stream_test.cc) locks at every step.
///
/// Each append/evict patches one slot per dimension (a binary-searched
/// insert/erase, O(log n) search + O(n) shift) instead of the O(n log n)
/// full re-argsort per tick; the patch count is charged to the
/// `stream.rows_patched` counter, which the bench gate locks so an
/// accidental rebuild-per-tick regression fails `check.sh --bench`.
///
/// Moments are NOT maintained as running sums — incremental accumulation
/// is not bit-identical to stats::Mean/StdDev summation order. Instead
/// Mean/StdDev are generation-memoized recomputes over the window in seq
/// order, using the same stats:: routines, refreshed only when queried
/// after a mutation.
///
/// Externally synchronized, like the trace it mirrors: the owning
/// CustomerWindow serialises OnAppend/OnEvict against reads.
class StreamStats {
 public:
  /// Borrows `trace`, which must outlive the stats and start empty (the
  /// caller replays any pre-existing rows through OnAppend).
  explicit StreamStats(const StreamingTrace* trace);

  StreamStats(const StreamStats&) = delete;
  StreamStats& operator=(const StreamStats&) = delete;

  const StreamingTrace& trace() const { return *trace_; }

  /// Patches every dimension for the row just appended at `seq` (call
  /// after StreamingTrace::Append).
  void OnAppend(std::uint64_t seq);

  /// Unpatches every dimension for the row about to be evicted at `seq`
  /// (call BEFORE StreamingTrace::PopFront, while the values are live).
  void OnEvict(std::uint64_t seq);

  /// Ascending-sorted window values; bit-identical to
  /// TraceStatsCache::Sorted on the materialised window.
  const std::vector<double>& Sorted(catalog::ResourceDim dim) const {
    return dims_[Index(dim)].sorted_values;
  }

  /// Sequence numbers behind Sorted(), same order.
  const std::vector<std::uint64_t>& SortedSeqs(catalog::ResourceDim dim) const {
    return dims_[Index(dim)].sorted_seqs;
  }

  /// Window-relative row index of sorted position i — equals
  /// TraceStatsCache::Argsort(dim)[i] on the materialised window.
  std::uint32_t RowOf(catalog::ResourceDim dim, std::size_t i) const {
    return static_cast<std::uint32_t>(dims_[Index(dim)].sorted_seqs[i] -
                                      trace_->first_seq());
  }

  /// R-7 quantile over the maintained sorted values (0 when absent/empty).
  double Quantile(catalog::ResourceDim dim, double q) const;

  double Mean(catalog::ResourceDim dim) const;
  double StdDev(catalog::ResourceDim dim) const;
  double Min(catalog::ResourceDim dim) const;
  double Max(catalog::ResourceDim dim) const;

 private:
  struct DimState {
    // Parallel vectors in ascending (value, seq) order.
    std::vector<double> sorted_values;
    std::vector<std::uint64_t> sorted_seqs;
    // Generation-memoized exact moments (recomputed via stats:: when the
    // trace has mutated since `moments_generation`).
    std::uint64_t moments_generation = 0;
    bool moments_built = false;
    double mean = 0.0;
    double stddev = 0.0;
  };

  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  /// Sorted position of (value, seq) — first index whose entry orders
  /// after it.
  std::size_t PositionOf(const DimState& state, double value,
                         std::uint64_t seq) const;

  const DimState& Moments(catalog::ResourceDim dim) const;

  const StreamingTrace* trace_;
  mutable std::array<DimState, catalog::kNumResourceDims> dims_;
  mutable std::vector<double> moments_scratch_;
};

}  // namespace doppler::stream

#endif  // DOPPLER_STREAM_STREAM_STATS_H_
