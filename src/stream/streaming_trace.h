#ifndef DOPPLER_STREAM_STREAMING_TRACE_H_
#define DOPPLER_STREAM_STREAMING_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "util/statusor.h"

namespace doppler::stream {

/// A sliding window over one customer's telemetry stream (DESIGN.md §13):
/// the newest `capacity` rows of an unbounded sequence, stored as a ring
/// of per-dimension columns. Rows are keyed by a monotone sequence number
/// assigned at append time; the live window is the half-open seq range
/// [first_seq, next_seq), and seq s lives in ring slot s % capacity.
///
/// The trace itself holds no derived state. The incremental caches
/// (StreamStats, StreamIndex) are patched explicitly by the orchestrating
/// window in a fixed order per mutation — evict observers fire BEFORE
/// PopFront() releases the row (they read the departing values), append
/// observers AFTER Append() lands it. `generation()` counts mutations, so
/// borrowers can assert they were kept in step.
///
/// Not internally synchronized: the owner (stream::CustomerWindow)
/// serialises mutation and concurrent reads behind its own lock.
class StreamingTrace {
 public:
  /// A window over `dims` (deduplicated, kept in enum order) holding at
  /// most `capacity` rows. `capacity` must be >= 1.
  StreamingTrace(const std::vector<catalog::ResourceDim>& dims,
                 std::size_t capacity,
                 std::int64_t interval_seconds = telemetry::kDmaIntervalSeconds);

  const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  /// Window dimensions, in enum order.
  const std::vector<catalog::ResourceDim>& dims() const { return dims_; }
  bool Has(catalog::ResourceDim dim) const { return present_[Index(dim)]; }

  std::size_t capacity() const { return capacity_; }
  /// Live rows: next_seq() - first_seq().
  std::size_t size() const {
    return static_cast<std::size_t>(next_seq_ - first_seq_);
  }
  bool empty() const { return next_seq_ == first_seq_; }
  bool full() const { return size() == capacity_; }

  /// Oldest live sequence number (== next_seq() when empty).
  std::uint64_t first_seq() const { return first_seq_; }
  /// Sequence number the next Append will assign.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Mutation counter: +1 per Append and per PopFront.
  std::uint64_t generation() const { return generation_; }

  std::int64_t interval_seconds() const { return interval_seconds_; }

  /// Ring slot of a sequence number.
  std::size_t SlotOf(std::uint64_t seq) const {
    return static_cast<std::size_t>(seq % capacity_);
  }

  /// Appends one row (values aligned with dims()) and returns its seq.
  /// Fails when the window is full — the caller evicts first, so its
  /// borrowers can observe the departing row before the slot is reused.
  StatusOr<std::uint64_t> Append(const std::vector<double>& row);

  /// Evicts the oldest row. Fails when empty.
  Status PopFront();

  /// Value of `dim` at live sequence number `seq` (unchecked: seq must be
  /// in [first_seq, next_seq) and dim present).
  double ValueAt(catalog::ResourceDim dim, std::uint64_t seq) const {
    return ring_[Index(dim)][SlotOf(seq)];
  }

  /// Materialises the live window as a PerfTrace in seq order — row i of
  /// the result is seq first_seq()+i — carrying the trace id and cadence.
  /// This is the frozen snapshot assessments and the differential harness
  /// consume; by construction its row order equals window order, so
  /// window-relative row index = seq - first_seq().
  telemetry::PerfTrace Materialize() const;

 private:
  static constexpr std::size_t Index(catalog::ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  std::string id_;
  std::vector<catalog::ResourceDim> dims_;
  std::array<bool, catalog::kNumResourceDims> present_{};
  std::size_t capacity_;
  std::int64_t interval_seconds_;
  std::uint64_t first_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t generation_ = 0;
  /// One capacity-sized column per present dimension.
  std::array<std::vector<double>, catalog::kNumResourceDims> ring_;
};

}  // namespace doppler::stream

#endif  // DOPPLER_STREAM_STREAMING_TRACE_H_
