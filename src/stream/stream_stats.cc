#include "stream/stream_stats.h"

#include <algorithm>

#include "obs/metrics.h"
#include "stats/descriptive.h"

namespace doppler::stream {

namespace {

// One sorted-vector slot patched (inserted or erased). The bench baseline
// locks this counter's per-tick rate: a regression that silently falls
// back to rebuild-per-tick charges the whole window instead of one slot
// per dimension and fails `check.sh --bench`.
void CountRowsPatched(std::size_t slots) {
  static obs::Counter* const kPatched =
      obs::DefaultMetrics().GetCounter("stream.rows_patched");
  kPatched->Increment(slots);
}

}  // namespace

StreamStats::StreamStats(const StreamingTrace* trace) : trace_(trace) {}

std::size_t StreamStats::PositionOf(const DimState& state, double value,
                                    std::uint64_t seq) const {
  // Two binary searches: the tie run of `value`, then the seq within it
  // (seqs ascend inside a tie run by the ordering invariant), so heavy-tie
  // streams stay O(log n) per patch.
  const auto vbegin = state.sorted_values.begin();
  const auto lo = std::lower_bound(vbegin, state.sorted_values.end(), value);
  const auto hi = std::upper_bound(lo, state.sorted_values.end(), value);
  const std::size_t tie_begin = static_cast<std::size_t>(lo - vbegin);
  const std::size_t tie_end = static_cast<std::size_t>(hi - vbegin);
  const auto sbegin = state.sorted_seqs.begin();
  return static_cast<std::size_t>(
      std::lower_bound(sbegin + tie_begin, sbegin + tie_end, seq) - sbegin);
}

void StreamStats::OnAppend(std::uint64_t seq) {
  for (catalog::ResourceDim dim : trace_->dims()) {
    DimState& state = dims_[Index(dim)];
    const double value = trace_->ValueAt(dim, seq);
    const std::size_t pos = PositionOf(state, value, seq);
    state.sorted_values.insert(state.sorted_values.begin() + pos, value);
    state.sorted_seqs.insert(state.sorted_seqs.begin() + pos, seq);
  }
  CountRowsPatched(trace_->dims().size());
}

void StreamStats::OnEvict(std::uint64_t seq) {
  for (catalog::ResourceDim dim : trace_->dims()) {
    DimState& state = dims_[Index(dim)];
    const double value = trace_->ValueAt(dim, seq);
    const std::size_t pos = PositionOf(state, value, seq);
    state.sorted_values.erase(state.sorted_values.begin() + pos);
    state.sorted_seqs.erase(state.sorted_seqs.begin() + pos);
  }
  CountRowsPatched(trace_->dims().size());
}

double StreamStats::Quantile(catalog::ResourceDim dim, double q) const {
  return stats::QuantileFromSorted(dims_[Index(dim)].sorted_values, q);
}

const StreamStats::DimState& StreamStats::Moments(
    catalog::ResourceDim dim) const {
  DimState& state = dims_[Index(dim)];
  if (state.moments_built &&
      state.moments_generation == trace_->generation()) {
    return state;
  }
  // Materialise in seq (== window) order and reuse the exact stats::
  // routines: running sums would drift from the rebuild path in the last
  // ulps, and the differential harness asserts bit-identity.
  moments_scratch_.clear();
  moments_scratch_.reserve(trace_->size());
  for (std::uint64_t seq = trace_->first_seq(); seq < trace_->next_seq();
       ++seq) {
    moments_scratch_.push_back(trace_->ValueAt(dim, seq));
  }
  state.mean = stats::Mean(moments_scratch_);
  state.stddev = stats::StdDev(moments_scratch_);
  state.moments_built = true;
  state.moments_generation = trace_->generation();
  return state;
}

double StreamStats::Mean(catalog::ResourceDim dim) const {
  return Moments(dim).mean;
}

double StreamStats::StdDev(catalog::ResourceDim dim) const {
  return Moments(dim).stddev;
}

double StreamStats::Min(catalog::ResourceDim dim) const {
  const DimState& state = dims_[Index(dim)];
  return state.sorted_values.empty() ? 0.0 : state.sorted_values.front();
}

double StreamStats::Max(catalog::ResourceDim dim) const {
  const DimState& state = dims_[Index(dim)];
  return state.sorted_values.empty() ? 0.0 : state.sorted_values.back();
}

}  // namespace doppler::stream
