#ifndef DOPPLER_CATALOG_SKU_H_
#define DOPPLER_CATALOG_SKU_H_

#include <string>

#include "catalog/resource.h"

namespace doppler::catalog {

/// PaaS deployment model (paper §2).
enum class Deployment {
  kSqlDb,  ///< Azure SQL Database: fully managed single databases.
  kSqlMi,  ///< Azure SQL Managed Instance: managed servers hosting many DBs.
  kSqlVm,  ///< SQL Server on Azure VM (IaaS) - the paper's §7 extension
           ///< target for lift-and-shift estates.
};

/// vCore service tier (paper §2): Business Critical offers higher
/// transaction rates and lower-latency IO than General Purpose.
enum class ServiceTier {
  kGeneralPurpose,
  kBusinessCritical,
  /// Hyperscale (paper §7): log-structured storage scaling to 100 TB with
  /// near-BC IO; SQL DB only in the generated catalog.
  kHyperscale,
};

/// Hardware generation of the offering. The generated catalog spans three
/// generations with different memory-per-vCore ratios, mirroring how the
/// real Azure catalog multiplies out to 200+ SKUs.
enum class HardwareGen {
  kGen5,
  kPremiumSeries,
  kPremiumSeriesMemoryOptimized,
};

const char* DeploymentName(Deployment deployment);
const char* ServiceTierName(ServiceTier tier);        ///< "GP" / "BC".
const char* ServiceTierLongName(ServiceTier tier);    ///< "General Purpose".
const char* HardwareGenName(HardwareGen gen);

/// One cloud target: a deployment/tier/hardware/vCore combination with its
/// resource capacities and pay-as-you-go price (paper Fig. 1).
struct Sku {
  std::string id;             ///< Stable identifier, e.g. "DB_GP_Gen5_4".
  Deployment deployment = Deployment::kSqlDb;
  ServiceTier tier = ServiceTier::kGeneralPurpose;
  HardwareGen hardware = HardwareGen::kGen5;
  int vcores = 2;
  double max_memory_gb = 10.4;
  double max_data_gb = 1024.0;
  double max_iops = 640.0;       ///< For MI GP this is the cap; the
                                 ///< effective limit comes from the file
                                 ///< layout (core/mi_filter.h).
  double max_log_rate_mbps = 7.5;
  double min_io_latency_ms = 5.0;
  double max_workers = 210.0;  ///< Concurrent worker cap (~105/vCore).
  double price_per_hour = 0.51;  ///< USD, pay-as-you-go.

  /// Serverless compute (paper §7): the SKU auto-scales between
  /// `min_vcores` and `vcores` and bills per vCore-hour actually used
  /// (price_per_vcore_hour) instead of the flat price_per_hour. The
  /// capacity vector still reports the max (throttling happens at the
  /// auto-scale ceiling).
  bool serverless = false;
  double min_vcores = 0.0;
  double price_per_vcore_hour = 0.0;

  /// Human-readable label, e.g. "SQL DB General Purpose 4 vCores (Gen5)".
  std::string DisplayName() const;

  /// Monthly cost at 730 hours/month (the price-performance x-axis).
  double MonthlyPrice() const { return price_per_hour * 730.0; }

  /// Capacity vector across all six dimensions. For kIoLatencyMs the
  /// capacity is the SKU's minimum achievable IO latency; the throttling
  /// test treats the dimension as inverted.
  ResourceVector Capacities() const;

  /// Capacity with a per-dimension override applied (used by the MI path,
  /// where the IOPS limit is derived from the chosen file layout).
  ResourceVector CapacitiesWithIopsLimit(double iops_limit) const;
};

/// Orders by monthly price, breaking ties by id so sorts are deterministic.
bool CheaperThan(const Sku& a, const Sku& b);

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_SKU_H_
