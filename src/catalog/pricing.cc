#include "catalog/pricing.h"

// PricingService is header-only; this file anchors the vtable.

namespace doppler::catalog {}  // namespace doppler::catalog
