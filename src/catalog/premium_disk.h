#ifndef DOPPLER_CATALOG_PREMIUM_DISK_H_
#define DOPPLER_CATALOG_PREMIUM_DISK_H_

#include <string>
#include <vector>

#include "util/statusor.h"

namespace doppler::catalog {

/// One Azure Premium Disk storage tier (paper Table 2). SQL MI General
/// Purpose places every database file on its own premium disk, so the
/// instance's effective IOPS/throughput limits derive from the file layout
/// rather than from the SKU record.
struct PremiumDiskTier {
  std::string name;          ///< "P10" ... "P60".
  double min_size_gib;       ///< Exclusive lower bound (0 for P10).
  double max_size_gib;       ///< Inclusive upper bound.
  double iops;               ///< Per-disk IOPS limit.
  double throughput_mibps;   ///< Per-disk throughput limit.
};

/// The tier ladder, smallest first (paper Table 2 plus the intermediate
/// tiers it elides: P10 through P60).
const std::vector<PremiumDiskTier>& PremiumDiskTiers();

/// Smallest tier whose size range can hold a file of `file_size_gib`.
/// Fails with OUT_OF_RANGE for non-positive sizes or sizes above the P60
/// bound (8 TiB).
StatusOr<PremiumDiskTier> TierForFileSize(double file_size_gib);

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_PREMIUM_DISK_H_
