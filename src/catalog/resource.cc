#include "catalog/resource.h"

namespace doppler::catalog {

const char* ResourceDimName(ResourceDim dim) {
  switch (dim) {
    case ResourceDim::kCpu:
      return "cpu";
    case ResourceDim::kMemoryGb:
      return "memory";
    case ResourceDim::kIops:
      return "iops";
    case ResourceDim::kLogRateMbps:
      return "log_rate";
    case ResourceDim::kIoLatencyMs:
      return "io_latency";
    case ResourceDim::kStorageGb:
      return "storage";
    case ResourceDim::kWorkers:
      return "workers";
  }
  return "?";
}

bool ParseResourceDim(const std::string& name, ResourceDim* dim) {
  for (ResourceDim candidate : kAllResourceDims) {
    if (name == ResourceDimName(candidate)) {
      *dim = candidate;
      return true;
    }
  }
  return false;
}

std::vector<ResourceDim> ResourceVector::PresentDims() const {
  std::vector<ResourceDim> dims;
  for (ResourceDim dim : kAllResourceDims) {
    if (Has(dim)) dims.push_back(dim);
  }
  return dims;
}

}  // namespace doppler::catalog
