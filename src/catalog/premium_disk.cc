#include "catalog/premium_disk.h"

namespace doppler::catalog {

const std::vector<PremiumDiskTier>& PremiumDiskTiers() {
  // Paper Table 2 lists P10, P20, P50 and P60 explicitly; P30/P40 are the
  // intermediate tiers from the Azure premium-disk ladder the table elides.
  static const auto* const kTiers = new std::vector<PremiumDiskTier>{
      {"P10", 0.0, 128.0, 500.0, 100.0},
      {"P20", 128.0, 512.0, 2300.0, 150.0},
      {"P30", 512.0, 1024.0, 5000.0, 200.0},
      {"P40", 1024.0, 2048.0, 7500.0, 250.0},
      {"P50", 2048.0, 4096.0, 7500.0, 250.0},
      {"P60", 4096.0, 8192.0, 12500.0, 480.0},
  };
  return *kTiers;
}

StatusOr<PremiumDiskTier> TierForFileSize(double file_size_gib) {
  if (file_size_gib <= 0.0) {
    return OutOfRangeError("file size must be positive");
  }
  for (const PremiumDiskTier& tier : PremiumDiskTiers()) {
    if (file_size_gib <= tier.max_size_gib) return tier;
  }
  return OutOfRangeError("file of " + std::to_string(file_size_gib) +
                         " GiB exceeds the largest premium disk (8 TiB)");
}

}  // namespace doppler::catalog
