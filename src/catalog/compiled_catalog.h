#ifndef DOPPLER_CATALOG_COMPILED_CATALOG_H_
#define DOPPLER_CATALOG_COMPILED_CATALOG_H_

#include <array>
#include <cstddef>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/file_layout.h"
#include "catalog/premium_disk.h"
#include "catalog/pricing.h"
#include "catalog/resource.h"
#include "catalog/sku.h"
#include "catalog/target.h"
#include "util/aligned.h"
#include "util/statusor.h"

namespace doppler::catalog {

/// One pre-scored candidate of a compiled deployment view: the SKU record
/// (borrowed from the snapshot's catalog copy), its monthly bill through
/// the snapshot's pricing service, and its capacity vector — everything
/// the curve builder used to re-derive per request, per bootstrap
/// resample.
struct CompiledEntry {
  const Sku* sku = nullptr;
  /// Memoized pricing.MonthlyCost(*sku). Usage-billed (serverless) SKUs
  /// still re-price per trace; every provisioned SKU reads this field.
  double monthly_price = 0.0;
  /// Memoized sku->Capacities().
  ResourceVector capacities;
};

/// A borrowed, zero-copy slice of one deployment's compiled candidates —
/// the std::span-style view the engine passes around instead of freshly
/// sorted `std::vector<Sku>` copies. Views stay valid for the lifetime of
/// the CompiledCatalog they came from.
class CompiledView {
 public:
  CompiledView() = default;
  CompiledView(const CompiledEntry* data, std::size_t size,
               const TargetSpec* target = nullptr)
      : data_(data), size_(size), target_(target) {}

  const CompiledEntry* begin() const { return data_; }
  const CompiledEntry* end() const { return data_ + size_; }
  const CompiledEntry& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The target spec the snapshot behind this view was compiled for
  /// (nullptr only for hand-built views); the curve builder reads its
  /// per-trace repricing hook.
  const TargetSpec* target() const { return target_; }

 private:
  const CompiledEntry* data_ = nullptr;
  std::size_t size_ = 0;
  const TargetSpec* target_ = nullptr;
};

/// One deployment's candidate set, pre-sorted cheapest-first (monthly
/// price, ties by id — the exact order the price-performance curve ends
/// in), with the capacities additionally laid out as a structure-of-arrays
/// matrix: one contiguous row per ResourceDim across all candidates, the
/// layout batch capacity kernels scan directly.
class CompiledDeployment {
 public:
  CompiledView view() const {
    return CompiledView(entries_.data(), entries_.size(), target_);
  }
  const std::vector<CompiledEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Contiguous capacity row for one dimension: element i is candidate i's
  /// capacity in `dim` (candidates in price order). All seven dimensions
  /// are materialised — Sku::Capacities() sets every one. Rows are
  /// cache-line aligned (util/aligned.h) so the batch kernels' vector
  /// loads never straddle a line.
  const AlignedVector<double>& CapacityRow(ResourceDim dim) const {
    return capacity_rows_[static_cast<std::size_t>(static_cast<int>(dim))];
  }

  /// The DISTINCT values of CapacityRow(dim), ascending. This is the
  /// capacity sharing the exceedance index (DESIGN.md §9) amortises over:
  /// a full-deployment curve build materialises at most this many bitsets
  /// per dimension, however many candidates price the dimension. Catalogs
  /// quantise capacities into service tiers, so the table is typically far
  /// smaller than the candidate count (the bench reports the ratio).
  const std::vector<double>& DistinctCapacities(ResourceDim dim) const {
    return distinct_capacities_[static_cast<std::size_t>(
        static_cast<int>(dim))];
  }

 private:
  friend class CompiledCatalog;

  std::vector<CompiledEntry> entries_;
  std::array<AlignedVector<double>, kNumResourceDims> capacity_rows_;
  std::array<std::vector<double>, kNumResourceDims> distinct_capacities_;
  /// Back-pointer to the owning snapshot's target spec, stamped into every
  /// view handed out.
  const TargetSpec* target_ = nullptr;
};

/// An immutable, serving-oriented snapshot of the SKU search space
/// (paper §4 treats it as static per assessment window): per-deployment
/// candidate sets pre-sorted cheapest-first with memoized monthly prices
/// and capacity vectors, plus the premium-disk limit ladder (paper
/// Table 2) precomputed for the MI file-layout filter. Built once at
/// pipeline creation; every per-request consumer reads borrowed views, so
/// the hot path performs no catalog copies and no sorts.
///
/// Thread-safety: the snapshot is immutable after Compile and safe to read
/// concurrently from any number of assessment workers.
class CompiledCatalog {
 public:
  /// Compiles `catalog` (copied into the snapshot, so the snapshot is
  /// self-contained) against `pricing`, which is BORROWED and must outlive
  /// the snapshot — usage-based (serverless) pricing is resolved per trace
  /// through it. `target` (BORROWED; built-in specs have static storage)
  /// selects the deployment target whose storage-tier table and per-trace
  /// repricing hook the snapshot carries; nullptr compiles for the Azure
  /// DB/MI spec, which reproduces the pre-registry behaviour exactly.
  static CompiledCatalog Compile(SkuCatalog catalog,
                                 const PricingService* pricing,
                                 const TargetSpec* target = nullptr);

  /// Convenience: compiles `target`'s own catalog (spec builder) against
  /// `pricing`.
  static CompiledCatalog CompileTarget(const TargetSpec& target,
                                       const PricingService* pricing);

  CompiledCatalog(CompiledCatalog&&) = default;
  CompiledCatalog& operator=(CompiledCatalog&&) = default;
  CompiledCatalog(const CompiledCatalog&) = delete;
  CompiledCatalog& operator=(const CompiledCatalog&) = delete;

  /// The deployment's compiled candidate set (empty when the catalog
  /// carries no SKU for it).
  const CompiledDeployment& ForDeployment(Deployment deployment) const {
    return deployments_[static_cast<std::size_t>(static_cast<int>(deployment))];
  }

  /// The snapshot's own copy of the source catalog (for id lookups and
  /// reporting paths that want raw SKUs).
  const SkuCatalog& catalog() const { return catalog_; }

  /// The borrowed billing interface the snapshot was compiled against.
  const PricingService& pricing() const { return *pricing_; }

  /// The target spec the snapshot was compiled for (never null; defaults
  /// to the Azure DB/MI spec).
  const TargetSpec& target() const { return *target_; }

  /// The target's storage tier ladder (Azure premium disks / AWS gp3-io2
  /// volumes), snapshotted at compile time.
  const std::vector<PremiumDiskTier>& disk_tiers() const { return disk_tiers_; }

  /// Smallest snapshotted tier holding `file_size_gib` — the compiled
  /// counterpart of catalog::TierForFileSize, same failure modes.
  StatusOr<PremiumDiskTier> DiskTierForFileSize(double file_size_gib) const;

  /// Per-file tier resolution + limit summation over the snapshot's disk
  /// table — the compiled counterpart of catalog::ComputeLayoutLimits.
  StatusOr<LayoutLimits> LayoutLimitsFor(const FileLayout& layout) const;

 private:
  CompiledCatalog() = default;

  static constexpr std::size_t kNumDeployments = 3;

  SkuCatalog catalog_;
  const PricingService* pricing_ = nullptr;
  const TargetSpec* target_ = nullptr;
  std::array<CompiledDeployment, kNumDeployments> deployments_;
  std::vector<PremiumDiskTier> disk_tiers_;
};

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_COMPILED_CATALOG_H_
