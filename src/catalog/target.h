#ifndef DOPPLER_CATALOG_TARGET_H_
#define DOPPLER_CATALOG_TARGET_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/premium_disk.h"
#include "catalog/pricing.h"
#include "catalog/resource.h"
#include "catalog/sku.h"

namespace doppler::catalog {

/// Deployment-target registry (ROADMAP item 5): the offering layer is no
/// longer hard-wired to the Azure SQL DB/MI shape. A TargetSpec bundles
/// everything the engine needs to reason about one cloud offering family —
/// its SKU ladder, its storage-tier table, its per-trace repricing rule and
/// the pricing models a recommendation should be costed under — and
/// CompiledCatalog snapshots one spec at a time. The Azure DB/MI target is
/// the first registered spec and reproduces the pre-registry behaviour
/// byte for byte; further specs (the built-in AWS-RDS/Aurora-shaped ladder,
/// or test-registered ones) reuse the whole curve/filter/recommender stack
/// unchanged through the CompiledView interface.

/// How a recommendation on a target can be billed. Every target carries
/// pay-as-you-go; reserved capacity and serverless autoscale are per-target
/// properties surfaced in the cross-target TCO comparison.
enum class PricingModel {
  kPayGo,       ///< List price, billed per provisioned hour.
  kReserved,    ///< Reserved-capacity commitment at a fractional discount.
  kServerless,  ///< Usage-billed autoscaling compute (simulated; see
                ///< core/autoscale.h and the moving-capacity probability).
};

const char* PricingModelName(PricingModel model);

/// Knobs of the deterministic serverless autoscale simulation: capacity
/// follows an exponentially-smoothed view of CPU demand with headroom,
/// clamped to the SKU's scale range. The lag is what makes serverless
/// throttling a MOVING-capacity question (paper Eq. 1 with R_cpu a
/// function of t) instead of a constant-capacity one.
struct ServerlessAutoscalePolicy {
  /// Scale floor as a fraction of the SKU's max vCores (used when the SKU
  /// record itself carries no serverless floor).
  double min_vcores_fraction = 0.125;
  /// Capacity provisioned per unit of smoothed demand (>1 keeps a burst
  /// buffer).
  double headroom = 1.2;
  /// EMA smoothing factor in (0, 1]: higher tracks demand faster, lower
  /// models a laggier autoscaler.
  double ema_alpha = 0.35;
  /// Per-vCore-hour premium over the provisioned rate, applied when the
  /// simulated SKU is not natively usage-billed.
  double price_premium = 1.4;
};

/// One pricing model a target offers, with its model-specific knobs.
struct TargetPricingModel {
  PricingModel model = PricingModel::kPayGo;
  /// Fractional discount in [0, 1) for kReserved.
  double reserved_discount = 0.0;
  /// Autoscale simulation knobs for kServerless.
  ServerlessAutoscalePolicy autoscale;
};

/// Per-trace repricing hook: given a SKU, the workload's mean CPU demand in
/// vCores, and the snapshot's billing interface, returns the monthly bill
/// that should REPLACE the compiled (usage-independent) price — or a
/// negative value to keep the compiled price. This generalises the old
/// hard-coded "serverless SKUs re-price by mean CPU" special case in the
/// curve builder into a target property: the curve build calls the hook per
/// candidate and re-sorts only when some hook call actually repriced.
using RepriceForTraceFn = double (*)(const Sku& sku, double mean_cpu_vcores,
                                     const PricingService& pricing);

/// One deployment target. Specs are value types: the registry owns its
/// specs, and CompiledCatalog borrows a spec pointer that must outlive the
/// snapshot (built-in specs have static storage duration).
struct TargetSpec {
  /// Stable registry key, e.g. "azure-db", "aws-rds".
  std::string id;
  /// Human-readable label for reports, e.g. "Azure SQL Database".
  std::string display_name;
  /// The deployment slot this target's recommendations are drawn from
  /// (its catalog may still carry SKUs for other slots).
  Deployment deployment = Deployment::kSqlDb;
  /// Builds the target's SKU ladder.
  std::function<SkuCatalog()> build_catalog;
  /// The target's storage-tier table (Azure premium disks, AWS gp3/io2
  /// volumes): drives the MI-style file-layout limits for snapshots of
  /// this target.
  std::function<std::vector<PremiumDiskTier>()> storage_tiers;
  /// Per-trace repricing rule; nullptr = no usage-based repricing.
  RepriceForTraceFn reprice_for_trace = nullptr;
  /// Pricing models to cost recommendations under, pay-go first.
  std::vector<TargetPricingModel> pricing_models;
  /// The resource dimensions this target's capacity model prices
  /// (informational; surfaced by `doppler targets`).
  std::vector<ResourceDim> capacity_dims;
};

/// The registered Azure SQL DB/MI spec — also the default target
/// CompiledCatalog::Compile snapshots when no spec is given, so every
/// pre-registry call site keeps its exact behaviour (same catalog builder
/// family, same premium-disk table, same serverless repricing rule).
const TargetSpec& AzureDbTargetSpec();

/// The built-in AWS-RDS/Aurora-shaped spec: a db.m/db.r-style vCore ladder
/// (plus an Aurora-Serverless-style usage-billed ladder) with gp3/io2-style
/// storage tiers.
const TargetSpec& AwsRdsTargetSpec();

/// The AWS-shaped catalog behind AwsRdsTargetSpec (exposed for tests and
/// benches). SKUs land in the kSqlDb deployment slot of their own catalog.
SkuCatalog BuildAwsRdsLikeCatalog();

/// gp3/io2-style volume ladder, smallest first, same contract as
/// PremiumDiskTiers().
const std::vector<PremiumDiskTier>& AwsStorageTiers();

/// An ordered collection of target specs keyed by id.
class TargetRegistry {
 public:
  /// The process-wide built-ins ("azure-db", "aws-rds"), in registration
  /// order. Constructed once; safe for concurrent reads.
  static const TargetRegistry& BuiltIns();

  /// Registers a spec (replacing any existing spec with the same id).
  void Register(TargetSpec spec);

  /// Spec by id; nullptr when unknown. Pointers stay valid while the
  /// registry is alive and no further Register call replaces the spec.
  const TargetSpec* Find(const std::string& id) const;

  const std::vector<TargetSpec>& specs() const { return specs_; }

 private:
  std::vector<TargetSpec> specs_;
};

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_TARGET_H_
