#ifndef DOPPLER_CATALOG_PRICING_H_
#define DOPPLER_CATALOG_PRICING_H_

#include "catalog/sku.h"

namespace doppler::catalog {

/// Billing interface (paper §4: "A billing interface exists to compute the
/// prices for each SKU"). The price-performance curve consumes monthly
/// bills through this abstraction so that region uplifts or reserved-
/// capacity discounts change the curve without touching the engine.
class PricingService {
 public:
  virtual ~PricingService() = default;

  /// Monthly bill for running `sku` for a full month, USD. For serverless
  /// SKUs this is the worst case (pegged at max vCores).
  virtual double MonthlyCost(const Sku& sku) const = 0;

  /// Monthly bill given the workload's mean CPU demand in vCores, which
  /// usage-billed (serverless) SKUs need; provisioned SKUs ignore it. The
  /// curve builder calls this so serverless offerings are priced by what
  /// the workload would actually consume (paper §7 extension).
  virtual double MonthlyCostForUsage(const Sku& sku,
                                     double mean_cpu_vcores) const {
    (void)mean_cpu_vcores;
    return MonthlyCost(sku);
  }
};

/// Pay-as-you-go pricing with an optional regional uplift and reserved-
/// capacity discount.
class DefaultPricing : public PricingService {
 public:
  /// `regional_multiplier` scales the list price (1.0 = the reference
  /// region); `reserved_discount` in [0, 1) is the fractional discount for
  /// reserved capacity (0 = pay-as-you-go).
  explicit DefaultPricing(double regional_multiplier = 1.0,
                          double reserved_discount = 0.0)
      : regional_multiplier_(regional_multiplier),
        reserved_discount_(reserved_discount) {}

  double MonthlyCost(const Sku& sku) const override {
    return sku.MonthlyPrice() * regional_multiplier_ *
           (1.0 - reserved_discount_);
  }

  double MonthlyCostForUsage(const Sku& sku,
                             double mean_cpu_vcores) const override {
    if (!sku.serverless) return MonthlyCost(sku);
    // Serverless bills the vCores actually provisioned each second: demand
    // clamped between the auto-scale floor and the max. A small burst
    // head-room factor models scale-up lag billing.
    double effective = mean_cpu_vcores * 1.1;
    if (effective < sku.min_vcores) effective = sku.min_vcores;
    if (effective > sku.vcores) effective = static_cast<double>(sku.vcores);
    return effective * sku.price_per_vcore_hour * 730.0 *
           regional_multiplier_ * (1.0 - reserved_discount_);
  }

 private:
  double regional_multiplier_;
  double reserved_discount_;
};

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_PRICING_H_
