#include "catalog/sku.h"

namespace doppler::catalog {

const char* DeploymentName(Deployment deployment) {
  switch (deployment) {
    case Deployment::kSqlDb:
      return "SQL DB";
    case Deployment::kSqlMi:
      return "SQL MI";
    case Deployment::kSqlVm:
      return "SQL VM";
  }
  return "?";
}

const char* ServiceTierName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kGeneralPurpose:
      return "GP";
    case ServiceTier::kBusinessCritical:
      return "BC";
    case ServiceTier::kHyperscale:
      return "HS";
  }
  return "?";
}

const char* ServiceTierLongName(ServiceTier tier) {
  switch (tier) {
    case ServiceTier::kGeneralPurpose:
      return "General Purpose";
    case ServiceTier::kBusinessCritical:
      return "Business Critical";
    case ServiceTier::kHyperscale:
      return "Hyperscale";
  }
  return "?";
}

const char* HardwareGenName(HardwareGen gen) {
  switch (gen) {
    case HardwareGen::kGen5:
      return "Gen5";
    case HardwareGen::kPremiumSeries:
      return "Premium";
    case HardwareGen::kPremiumSeriesMemoryOptimized:
      return "PremiumMemOpt";
  }
  return "?";
}

std::string Sku::DisplayName() const {
  return std::string(DeploymentName(deployment)) + " " +
         ServiceTierLongName(tier) + (serverless ? " Serverless" : "") +
         " " + std::to_string(vcores) + " vCores (" +
         HardwareGenName(hardware) + ")";
}

ResourceVector Sku::Capacities() const {
  ResourceVector capacities;
  capacities.Set(ResourceDim::kCpu, static_cast<double>(vcores));
  capacities.Set(ResourceDim::kMemoryGb, max_memory_gb);
  capacities.Set(ResourceDim::kIops, max_iops);
  capacities.Set(ResourceDim::kLogRateMbps, max_log_rate_mbps);
  capacities.Set(ResourceDim::kIoLatencyMs, min_io_latency_ms);
  capacities.Set(ResourceDim::kStorageGb, max_data_gb);
  capacities.Set(ResourceDim::kWorkers, max_workers);
  return capacities;
}

ResourceVector Sku::CapacitiesWithIopsLimit(double iops_limit) const {
  ResourceVector capacities = Capacities();
  capacities.Set(ResourceDim::kIops, iops_limit);
  return capacities;
}

bool CheaperThan(const Sku& a, const Sku& b) {
  if (a.price_per_hour != b.price_per_hour) {
    return a.price_per_hour < b.price_per_hour;
  }
  return a.id < b.id;
}

}  // namespace doppler::catalog
