#ifndef DOPPLER_CATALOG_FILE_LAYOUT_H_
#define DOPPLER_CATALOG_FILE_LAYOUT_H_

#include <string>
#include <vector>

#include "catalog/premium_disk.h"
#include "util/statusor.h"

namespace doppler::catalog {

/// One database file as discovered by the DMA collector.
struct DatabaseFile {
  std::string name;       ///< e.g. "sales.mdf".
  double size_gib = 1.0;  ///< Allocated size.
};

/// The file layout of an instance migrating to SQL MI: each file lands on
/// its own premium disk, and the instance IOPS/throughput limits are the
/// sums of the per-file disk limits (paper §3.2, "Determining file storage
/// tier for MI", Step 2).
struct FileLayout {
  std::vector<DatabaseFile> files;

  /// Total allocated size across files, GiB.
  double TotalSizeGib() const;
};

/// Aggregate limits implied by a layout.
struct LayoutLimits {
  double total_iops = 0.0;
  double total_throughput_mibps = 0.0;
  double total_size_gib = 0.0;
  /// Disk tier assigned to each file, in file order.
  std::vector<PremiumDiskTier> tiers;
};

/// Maps every file to its premium-disk tier and sums the limits. Fails when
/// a file cannot be placed (non-positive or above the 8 TiB bound).
StatusOr<LayoutLimits> ComputeLayoutLimits(const FileLayout& layout);

/// Builds a plausible layout for a database of `data_size_gib` split into
/// `num_files` equally sized files — the default the DMA tool assumes when
/// the customer has not customised their layout.
FileLayout UniformLayout(double data_size_gib, int num_files);

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_FILE_LAYOUT_H_
