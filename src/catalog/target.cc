#include "catalog/target.h"

#include <algorithm>
#include <utility>

namespace doppler::catalog {

const char* PricingModelName(PricingModel model) {
  switch (model) {
    case PricingModel::kPayGo:
      return "pay-go";
    case PricingModel::kReserved:
      return "reserved";
    case PricingModel::kServerless:
      return "serverless";
  }
  return "?";
}

namespace {

// The pre-registry repricing rule, now the Azure spec's hook: usage-billed
// (serverless) SKUs re-price by the workload's mean CPU through the billing
// interface; provisioned SKUs keep their compiled price (negative return).
// The AWS spec shares it — Aurora-Serverless-style SKUs carry the same
// `serverless` usage-billing shape.
double RepriceUsageBilled(const Sku& sku, double mean_cpu_vcores,
                          const PricingService& pricing) {
  if (!sku.serverless || mean_cpu_vcores <= 0.0) return -1.0;
  return pricing.MonthlyCostForUsage(sku, mean_cpu_vcores);
}

std::vector<ResourceDim> AllDims() {
  return std::vector<ResourceDim>(kAllResourceDims.begin(),
                                  kAllResourceDims.end());
}

// ---------------------------------------------------------------------------
// AWS-RDS/Aurora-shaped ladder. Shapes are calibrated the same way the
// Azure ladder is (public instance tables, rounded): db.m-style general
// purpose and db.r-style memory-optimized rows backed by EBS, plus an
// Aurora-Serverless-v2-style usage-billed ladder. All rows land in the
// kSqlDb slot of the target's own catalog — deployment slots are
// per-catalog, and a snapshot only ever serves one target.
// ---------------------------------------------------------------------------

Sku MakeRdsSku(ServiceTier tier, int vcores) {
  Sku sku;
  sku.deployment = Deployment::kSqlDb;
  sku.tier = tier;
  sku.hardware = HardwareGen::kGen5;
  sku.vcores = vcores;
  if (tier == ServiceTier::kBusinessCritical) {
    // db.r-style memory-optimized row on io2: 8 GB/vCore, provisioned
    // IOPS, low latency.
    sku.max_memory_gb = 8.0 * vcores;
    sku.max_iops = std::min(3000.0 * vcores, 256000.0);
    sku.max_log_rate_mbps = std::min(10.0 * vcores, 150.0);
    sku.min_io_latency_ms = 1.0;
    sku.price_per_hour = 0.60 * vcores;
    sku.id = "RDS_R6I_" + std::to_string(vcores);
  } else {
    // db.m-style general-purpose row on gp3: 4 GB/vCore, volume-limited
    // IOPS, gp3 latency.
    sku.max_memory_gb = 4.0 * vcores;
    sku.max_iops = std::min(500.0 * vcores, 16000.0);
    sku.max_log_rate_mbps = std::min(4.0 * vcores, 80.0);
    sku.min_io_latency_ms = 4.0;
    sku.price_per_hour = 0.226 * vcores;
    sku.id = "RDS_M6I_" + std::to_string(vcores);
  }
  sku.max_data_gb = std::min(2048.0 + 512.0 * vcores, 65536.0);
  sku.max_workers = 100.0 * vcores;
  return sku;
}

// Aurora-Serverless-v2-style row: usage-billed per ACU-hour (1 ACU ~ a
// 2 GB slice; rounded here to a vCore-equivalent rate), auto-scaling
// between max/8 and max capacity.
Sku MakeAuroraServerlessSku(int max_vcores) {
  Sku sku = MakeRdsSku(ServiceTier::kGeneralPurpose, max_vcores);
  sku.serverless = true;
  sku.min_vcores = std::max(0.5, max_vcores / 8.0);
  sku.price_per_vcore_hour = 0.24;
  sku.price_per_hour = sku.price_per_vcore_hour * max_vcores;
  sku.id = "AURORA_SLS_" + std::to_string(max_vcores);
  return sku;
}

}  // namespace

SkuCatalog BuildAwsRdsLikeCatalog() {
  static const int kRdsVcores[] = {2, 4, 8, 16, 32, 48, 64, 96, 128};
  static const int kServerlessMaxVcores[] = {1, 2, 4, 8, 16, 32};
  SkuCatalog catalog;
  for (ServiceTier tier :
       {ServiceTier::kGeneralPurpose, ServiceTier::kBusinessCritical}) {
    for (int vcores : kRdsVcores) catalog.Add(MakeRdsSku(tier, vcores));
  }
  for (int max_vcores : kServerlessMaxVcores) {
    catalog.Add(MakeAuroraServerlessSku(max_vcores));
  }
  return catalog;
}

const std::vector<PremiumDiskTier>& AwsStorageTiers() {
  // gp3 volumes scale baseline IOPS/throughput with size; io2 Block
  // Express takes over past the gp3 ceiling. Same ladder contract as the
  // Azure premium-disk table: smallest tier first, (min, max] size ranges.
  static const std::vector<PremiumDiskTier> kTiers = {
      {"gp3-small", 0.0, 256.0, 3000.0, 125.0},
      {"gp3-medium", 256.0, 1024.0, 6000.0, 250.0},
      {"gp3-large", 1024.0, 4096.0, 12000.0, 500.0},
      {"gp3-max", 4096.0, 16384.0, 16000.0, 1000.0},
      {"io2-1", 16384.0, 32768.0, 64000.0, 2000.0},
      {"io2-2", 32768.0, 65536.0, 256000.0, 4000.0},
  };
  return kTiers;
}

const TargetSpec& AzureDbTargetSpec() {
  static const TargetSpec* const kSpec = [] {
    auto* spec = new TargetSpec();
    spec->id = "azure-db";
    spec->display_name = "Azure SQL Database";
    spec->deployment = Deployment::kSqlDb;
    spec->build_catalog = [] { return BuildAzureLikeCatalog(); };
    spec->storage_tiers = [] { return PremiumDiskTiers(); };
    spec->reprice_for_trace = &RepriceUsageBilled;
    spec->pricing_models = {
        {PricingModel::kPayGo, 0.0, {}},
        {PricingModel::kReserved, 0.33, {}},
        {PricingModel::kServerless, 0.0, {}},
    };
    spec->capacity_dims = AllDims();
    return spec;
  }();
  return *kSpec;
}

const TargetSpec& AwsRdsTargetSpec() {
  static const TargetSpec* const kSpec = [] {
    auto* spec = new TargetSpec();
    spec->id = "aws-rds";
    spec->display_name = "AWS RDS/Aurora";
    spec->deployment = Deployment::kSqlDb;
    spec->build_catalog = [] { return BuildAwsRdsLikeCatalog(); };
    spec->storage_tiers = [] { return AwsStorageTiers(); };
    spec->reprice_for_trace = &RepriceUsageBilled;
    TargetPricingModel serverless;
    serverless.model = PricingModel::kServerless;
    serverless.autoscale.headroom = 1.25;
    serverless.autoscale.ema_alpha = 0.30;
    serverless.autoscale.price_premium = 1.3;
    spec->pricing_models = {
        {PricingModel::kPayGo, 0.0, {}},
        {PricingModel::kReserved, 0.40, {}},
        serverless,
    };
    spec->capacity_dims = AllDims();
    return spec;
  }();
  return *kSpec;
}

const TargetRegistry& TargetRegistry::BuiltIns() {
  static const TargetRegistry* const kRegistry = [] {
    auto* registry = new TargetRegistry();
    registry->Register(AzureDbTargetSpec());
    registry->Register(AwsRdsTargetSpec());
    return registry;
  }();
  return *kRegistry;
}

void TargetRegistry::Register(TargetSpec spec) {
  for (TargetSpec& existing : specs_) {
    if (existing.id == spec.id) {
      existing = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const TargetSpec* TargetRegistry::Find(const std::string& id) const {
  for (const TargetSpec& spec : specs_) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

}  // namespace doppler::catalog
