#include "catalog/compiled_catalog.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace doppler::catalog {

CompiledCatalog CompiledCatalog::Compile(SkuCatalog catalog,
                                         const PricingService* pricing,
                                         const TargetSpec* target) {
  static obs::Counter* const kTargetsCompiled =
      obs::DefaultMetrics().GetCounter("catalog.targets_compiled");
  kTargetsCompiled->Increment();

  if (target == nullptr) target = &AzureDbTargetSpec();
  CompiledCatalog compiled;
  compiled.catalog_ = std::move(catalog);
  compiled.pricing_ = pricing;
  compiled.target_ = target;
  compiled.disk_tiers_ = target->storage_tiers();

  for (const Sku& sku : compiled.catalog_.skus()) {
    const auto slot = static_cast<std::size_t>(static_cast<int>(sku.deployment));
    CompiledEntry entry;
    entry.sku = &sku;
    entry.monthly_price = pricing->MonthlyCost(sku);
    entry.capacities = sku.Capacities();
    compiled.deployments_[slot].entries_.push_back(entry);
  }

  for (CompiledDeployment& deployment : compiled.deployments_) {
    deployment.target_ = target;
    // Cheapest-first by the BILLED monthly price (ties by id): exactly the
    // order PricePerformanceCurve::Build used to re-establish per request,
    // so a curve built over a compiled view needs no re-sort.
    std::sort(deployment.entries_.begin(), deployment.entries_.end(),
              [](const CompiledEntry& a, const CompiledEntry& b) {
                if (a.monthly_price != b.monthly_price) {
                  return a.monthly_price < b.monthly_price;
                }
                return a.sku->id < b.sku->id;
              });
    for (ResourceDim dim : kAllResourceDims) {
      AlignedVector<double>& row =
          deployment.capacity_rows_[static_cast<std::size_t>(
              static_cast<int>(dim))];
      row.reserve(deployment.entries_.size());
      for (const CompiledEntry& entry : deployment.entries_) {
        row.push_back(entry.capacities.Get(dim));
      }
      // Sorted-unique view of the row: the per-dimension capacity
      // vocabulary the exceedance-index memo is keyed by.
      std::vector<double>& distinct =
          deployment.distinct_capacities_[static_cast<std::size_t>(
              static_cast<int>(dim))];
      distinct.assign(row.begin(), row.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
    }
  }
  return compiled;
}

CompiledCatalog CompiledCatalog::CompileTarget(const TargetSpec& target,
                                               const PricingService* pricing) {
  return Compile(target.build_catalog(), pricing, &target);
}

StatusOr<PremiumDiskTier> CompiledCatalog::DiskTierForFileSize(
    double file_size_gib) const {
  if (file_size_gib <= 0.0) {
    return OutOfRangeError("file size must be positive");
  }
  for (const PremiumDiskTier& tier : disk_tiers_) {
    if (file_size_gib <= tier.max_size_gib) return tier;
  }
  return OutOfRangeError("file of " + std::to_string(file_size_gib) +
                         " GiB exceeds the largest premium disk (8 TiB)");
}

StatusOr<LayoutLimits> CompiledCatalog::LayoutLimitsFor(
    const FileLayout& layout) const {
  if (layout.files.empty()) {
    return InvalidArgumentError("file layout has no files");
  }
  LayoutLimits limits;
  limits.tiers.reserve(layout.files.size());
  for (const DatabaseFile& file : layout.files) {
    StatusOr<PremiumDiskTier> tier = DiskTierForFileSize(file.size_gib);
    if (!tier.ok()) return tier.status();
    limits.total_iops += tier->iops;
    limits.total_throughput_mibps += tier->throughput_mibps;
    limits.total_size_gib += file.size_gib;
    limits.tiers.push_back(*std::move(tier));
  }
  return limits;
}

}  // namespace doppler::catalog
