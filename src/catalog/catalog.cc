#include "catalog/catalog.h"

#include <algorithm>
#include <cmath>

namespace doppler::catalog {

SkuCatalog::SkuCatalog(std::vector<Sku> skus) : skus_(std::move(skus)) {}

void SkuCatalog::Add(Sku sku) { skus_.push_back(std::move(sku)); }

StatusOr<Sku> SkuCatalog::FindById(const std::string& id) const {
  for (const Sku& sku : skus_) {
    if (sku.id == id) return sku;
  }
  return NotFoundError("no SKU with id '" + id + "'");
}

std::vector<Sku> SkuCatalog::ForDeployment(Deployment deployment) const {
  return Filter([deployment](const Sku& sku) {
    return sku.deployment == deployment;
  });
}

std::vector<Sku> SkuCatalog::ForDeploymentAndTier(Deployment deployment,
                                                  ServiceTier tier) const {
  return Filter([deployment, tier](const Sku& sku) {
    return sku.deployment == deployment && sku.tier == tier;
  });
}

std::vector<Sku> SkuCatalog::Filter(
    const std::function<bool(const Sku&)>& predicate) const {
  std::vector<Sku> matches;
  for (const Sku& sku : skus_) {
    if (predicate(sku)) matches.push_back(sku);
  }
  std::sort(matches.begin(), matches.end(), CheaperThan);
  return matches;
}

namespace {

// Max data size ladder for SQL DB (GB), keyed by vCores. Mirrors the shape
// of the public resource-limit tables (and Figure 1's 1024/1536 steps).
double DbMaxDataGb(int vcores) {
  if (vcores <= 4) return 1024.0;
  if (vcores <= 6) return 1536.0;
  if (vcores <= 10) return 2048.0;
  if (vcores <= 14) return 3072.0;
  return 4096.0;
}

// MI reserves storage per instance; GP up to 8 TB, BC up to 4 TB, smaller
// instances less.
double MiMaxDataGb(int vcores, ServiceTier tier) {
  const double cap = tier == ServiceTier::kBusinessCritical ? 4096.0 : 8192.0;
  return std::min(cap, 2048.0 + 256.0 * vcores);
}

// Memory per vCore by hardware generation (GB).
double MemoryPerVcore(HardwareGen gen) {
  switch (gen) {
    case HardwareGen::kGen5:
      return 5.2;
    case HardwareGen::kPremiumSeries:
      return 7.0;
    case HardwareGen::kPremiumSeriesMemoryOptimized:
      return 13.6;
  }
  return 5.2;
}

// Price uplift by hardware generation.
double PriceMultiplier(HardwareGen gen) {
  switch (gen) {
    case HardwareGen::kGen5:
      return 1.0;
    case HardwareGen::kPremiumSeries:
      return 1.15;
    case HardwareGen::kPremiumSeriesMemoryOptimized:
      return 1.45;
  }
  return 1.0;
}

Sku MakeDbSku(ServiceTier tier, HardwareGen gen, int vcores) {
  Sku sku;
  sku.deployment = Deployment::kSqlDb;
  sku.tier = tier;
  sku.hardware = gen;
  sku.vcores = vcores;
  sku.max_memory_gb = MemoryPerVcore(gen) * vcores;
  sku.max_data_gb = DbMaxDataGb(vcores);
  if (tier == ServiceTier::kBusinessCritical) {
    // Figure 1: BC 2 vCores -> 8000 IOPS, 24 MB/s log, 1 ms latency,
    // $1.36/h.
    sku.max_iops = 4000.0 * vcores;
    sku.max_log_rate_mbps = std::min(12.0 * vcores, 96.0);
    sku.min_io_latency_ms = 1.0;
    sku.price_per_hour = 0.68 * vcores * PriceMultiplier(gen);
  } else {
    // Figure 1: GP 2 vCores -> 640 IOPS, 7.5 MB/s log, 5 ms latency,
    // $0.51/h.
    sku.max_iops = 320.0 * vcores;
    sku.max_log_rate_mbps = std::min(3.75 * vcores, 50.0);
    sku.min_io_latency_ms = 5.0;
    sku.price_per_hour = 0.2525 * vcores * PriceMultiplier(gen);
  }
  sku.max_workers = 105.0 * vcores;
  sku.id = std::string("DB_") + ServiceTierName(tier) + "_" +
           HardwareGenName(gen) + "_" + std::to_string(vcores);
  return sku;
}

Sku MakeMiSku(ServiceTier tier, HardwareGen gen, int vcores) {
  Sku sku;
  sku.deployment = Deployment::kSqlMi;
  sku.tier = tier;
  sku.hardware = gen;
  sku.vcores = vcores;
  sku.max_memory_gb = MemoryPerVcore(gen) * vcores;
  sku.max_data_gb = MiMaxDataGb(vcores, tier);
  if (tier == ServiceTier::kBusinessCritical) {
    sku.max_iops = std::min(4000.0 * vcores, 200000.0);
    sku.max_log_rate_mbps = std::min(12.0 * vcores, 120.0);
    sku.min_io_latency_ms = 1.0;
    sku.price_per_hour = 0.66 * vcores * PriceMultiplier(gen);
  } else {
    // The GP IOPS limit here is the instance-level cap; the effective
    // limit is derived from the premium-disk file layout (core/mi_filter).
    sku.max_iops = std::min(1375.0 * vcores, 50000.0);
    sku.max_log_rate_mbps = std::min(3.0 * vcores, 120.0);
    sku.min_io_latency_ms = 5.0;
    sku.price_per_hour = 0.2475 * vcores * PriceMultiplier(gen);
  }
  sku.max_workers = 105.0 * vcores;
  sku.id = std::string("MI_") + ServiceTierName(tier) + "_" +
           HardwareGenName(gen) + "_" + std::to_string(vcores);
  return sku;
}

// Serverless compute (paper §7): SQL DB GP Gen5 ladder billed per
// vCore-hour used, auto-scaling between max/8 and max vCores.
Sku MakeServerlessSku(int max_vcores) {
  Sku sku = MakeDbSku(ServiceTier::kGeneralPurpose, HardwareGen::kGen5,
                      max_vcores);
  sku.serverless = true;
  sku.min_vcores = std::max(0.5, max_vcores / 8.0);
  // The usage rate carries a premium over the provisioned rate; an
  // always-busy serverless database costs ~1.4x its provisioned twin.
  sku.price_per_vcore_hour = 0.000145 * 2500.0;  // ~$0.3625/vCore-hour.
  // MonthlyPrice() (used when no usage information exists) assumes the
  // worst case: pegged at max vCores.
  sku.price_per_hour = sku.price_per_vcore_hour * max_vcores;
  sku.id = "DB_GP_Serverless_" + std::to_string(max_vcores);
  return sku;
}

// Hyperscale (paper §7): log-structured storage to 100 TB, near-BC IO.
Sku MakeHyperscaleSku(HardwareGen gen, int vcores) {
  Sku sku;
  sku.deployment = Deployment::kSqlDb;
  sku.tier = ServiceTier::kHyperscale;
  sku.hardware = gen;
  sku.vcores = vcores;
  sku.max_memory_gb = MemoryPerVcore(gen) * vcores;
  sku.max_data_gb = 102400.0;  // 100 TB.
  sku.max_iops = std::min(8000.0 * vcores, 204800.0);
  sku.max_log_rate_mbps = 100.0;  // Fixed service-level log throughput.
  sku.min_io_latency_ms = 3.0;    // Between GP (5) and BC (1).
  sku.price_per_hour = 0.46 * vcores * PriceMultiplier(gen);
  sku.max_workers = 105.0 * vcores;
  sku.id = std::string("DB_HS_") + HardwareGenName(gen) + "_" +
           std::to_string(vcores);
  return sku;
}

// SQL Server on Azure VM (paper §7, IaaS): Ebdsv5-like shapes with local
// NVMe cache (sub-millisecond IO), license included in the hourly rate.
Sku MakeVmSku(int vcores) {
  Sku sku;
  sku.deployment = Deployment::kSqlVm;
  sku.tier = ServiceTier::kGeneralPurpose;
  sku.hardware = HardwareGen::kGen5;
  sku.vcores = vcores;
  sku.max_memory_gb = 8.0 * vcores;
  sku.max_data_gb = std::min(4096.0 + 512.0 * vcores, 32768.0);
  sku.max_iops = std::min(9600.0 * vcores, 260000.0);
  sku.max_log_rate_mbps = std::min(8.0 * vcores, 160.0);
  sku.min_io_latency_ms = 0.5;
  // Compute + premium storage + SQL license.
  sku.price_per_hour = (0.24 + 0.55) * vcores * 0.85;
  sku.max_workers = 105.0 * vcores;
  sku.id = "VM_Ebdsv5_" + std::to_string(vcores);
  return sku;
}

}  // namespace

SkuCatalog BuildAzureLikeCatalog(const CatalogOptions& options) {
  static const int kDbVcores[] = {2,  4,  6,  8,  10, 12, 14, 16,
                                  18, 20, 24, 32, 40, 64, 80, 128};
  static const int kMiVcores[] = {4, 8, 16, 24, 32, 40, 48, 56, 64, 80};
  static const int kServerlessMaxVcores[] = {1, 2, 4, 6, 8, 10, 12, 16,
                                             20, 24, 32, 40};
  static const int kHyperscaleVcores[] = {2, 4, 6, 8, 12, 16, 24, 32, 48,
                                          64, 80};
  static const int kVmVcores[] = {2, 4, 8, 16, 32, 48, 64, 96};

  SkuCatalog catalog;
  for (HardwareGen gen : options.hardware) {
    for (ServiceTier tier :
         {ServiceTier::kGeneralPurpose, ServiceTier::kBusinessCritical}) {
      if (options.include_sql_db) {
        for (int vcores : kDbVcores) catalog.Add(MakeDbSku(tier, gen, vcores));
      }
      if (options.include_sql_mi) {
        for (int vcores : kMiVcores) catalog.Add(MakeMiSku(tier, gen, vcores));
      }
    }
    if (options.include_hyperscale) {
      for (int vcores : kHyperscaleVcores) {
        catalog.Add(MakeHyperscaleSku(gen, vcores));
      }
    }
  }
  if (options.include_serverless) {
    for (int max_vcores : kServerlessMaxVcores) {
      catalog.Add(MakeServerlessSku(max_vcores));
    }
  }
  if (options.include_sql_vm) {
    for (int vcores : kVmVcores) catalog.Add(MakeVmSku(vcores));
  }
  return catalog;
}

}  // namespace doppler::catalog
