#include "catalog/file_layout.h"

#include <algorithm>

namespace doppler::catalog {

double FileLayout::TotalSizeGib() const {
  double total = 0.0;
  for (const DatabaseFile& file : files) total += file.size_gib;
  return total;
}

StatusOr<LayoutLimits> ComputeLayoutLimits(const FileLayout& layout) {
  if (layout.files.empty()) {
    return InvalidArgumentError("file layout has no files");
  }
  LayoutLimits limits;
  limits.tiers.reserve(layout.files.size());
  for (const DatabaseFile& file : layout.files) {
    DOPPLER_ASSIGN_OR_RETURN(PremiumDiskTier tier,
                             TierForFileSize(file.size_gib));
    limits.total_iops += tier.iops;
    limits.total_throughput_mibps += tier.throughput_mibps;
    limits.total_size_gib += file.size_gib;
    limits.tiers.push_back(std::move(tier));
  }
  return limits;
}

FileLayout UniformLayout(double data_size_gib, int num_files) {
  num_files = std::max(1, num_files);
  data_size_gib = std::max(0.1, data_size_gib);
  FileLayout layout;
  layout.files.reserve(static_cast<std::size_t>(num_files));
  const double per_file = data_size_gib / num_files;
  for (int i = 0; i < num_files; ++i) {
    layout.files.push_back(
        {"data" + std::to_string(i) + ".mdf", per_file});
  }
  return layout;
}

}  // namespace doppler::catalog
