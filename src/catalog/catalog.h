#ifndef DOPPLER_CATALOG_CATALOG_H_
#define DOPPLER_CATALOG_CATALOG_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/resource.h"
#include "catalog/sku.h"
#include "util/statusor.h"

namespace doppler::catalog {

/// Container of candidate cloud targets plus the filter operations the
/// recommendation pipeline needs (paper §3.1: "all the possible cloud
/// target PaaS SKUs" are an input to the PPM).
class SkuCatalog {
 public:
  SkuCatalog() = default;
  explicit SkuCatalog(std::vector<Sku> skus);

  /// Adds one SKU.
  void Add(Sku sku);

  std::size_t size() const { return skus_.size(); }
  bool empty() const { return skus_.empty(); }
  const std::vector<Sku>& skus() const { return skus_; }

  /// Finds a SKU by id; NOT_FOUND when absent.
  StatusOr<Sku> FindById(const std::string& id) const;

  /// SKUs of the given deployment, ordered by monthly price (then id).
  std::vector<Sku> ForDeployment(Deployment deployment) const;

  /// SKUs matching deployment and tier, ordered by monthly price.
  std::vector<Sku> ForDeploymentAndTier(Deployment deployment,
                                        ServiceTier tier) const;

  /// SKUs matching an arbitrary predicate, ordered by monthly price.
  std::vector<Sku> Filter(
      const std::function<bool(const Sku&)>& predicate) const;

 private:
  std::vector<Sku> skus_;
};

/// Knobs of the generated catalog. Defaults reproduce an Azure-like ladder
/// whose Gen5 rows match the paper's Figure 1 (e.g. DB GP 4 vCores:
/// 20.8 GB memory, 1280 IOPS, 15 MB/s log, 5 ms latency, $1.01/h).
struct CatalogOptions {
  bool include_sql_db = true;
  bool include_sql_mi = true;
  /// Extended offerings (paper §7 future work). Off by default so the
  /// paper-reproduction experiments run against the paper's SKU universe;
  /// bench_ext_offerings and the serverless example enable them.
  bool include_serverless = false;   ///< SQL DB GP serverless compute.
  bool include_hyperscale = false;   ///< SQL DB Hyperscale tier.
  bool include_sql_vm = false;       ///< SQL Server on Azure VM (IaaS).
  /// Hardware generations to multiply the ladder by.
  std::vector<HardwareGen> hardware = {
      HardwareGen::kGen5, HardwareGen::kPremiumSeries,
      HardwareGen::kPremiumSeriesMemoryOptimized};
};

/// Builds the synthetic Azure SQL PaaS catalog: DB and MI, GP and BC, a
/// vCore ladder per deployment, one row per hardware generation — 150+
/// SKUs in total. This substitutes for the proprietary production catalog;
/// see DESIGN.md §2 for the calibration sources.
SkuCatalog BuildAzureLikeCatalog(const CatalogOptions& options = {});

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_CATALOG_H_
