#ifndef DOPPLER_CATALOG_RESOURCE_H_
#define DOPPLER_CATALOG_RESOURCE_H_

#include <array>
#include <string>
#include <vector>

namespace doppler::catalog {

/// The performance dimensions Doppler models (paper §3.2). CPU, memory,
/// IOPS and latency are used for every scenario; log rate and storage are
/// added for Azure SQL DB targets.
enum class ResourceDim : int {
  kCpu = 0,         ///< Compute demand, in vCores.
  kMemoryGb = 1,    ///< Working-set memory, in GB.
  kIops = 2,        ///< IO operations per second.
  kLogRateMbps = 3, ///< Transaction-log write rate, MB/s.
  kIoLatencyMs = 4, ///< IO latency, milliseconds (lower is better).
  kStorageGb = 5,   ///< Allocated data size, GB.
  /// Concurrent worker threads — the extension dimension demonstrating
  /// §3.2's claim that "the throttling probability definition can be
  /// extended" as more counters become available (Azure enforces
  /// per-SKU worker caps; exhausting them rejects new requests).
  kWorkers = 6,
};

/// Number of modelled dimensions.
inline constexpr int kNumResourceDims = 7;

/// All dimensions, in enum order, for iteration.
inline constexpr std::array<ResourceDim, kNumResourceDims> kAllResourceDims = {
    ResourceDim::kCpu,         ResourceDim::kMemoryGb,
    ResourceDim::kIops,        ResourceDim::kLogRateMbps,
    ResourceDim::kIoLatencyMs, ResourceDim::kStorageGb,
    ResourceDim::kWorkers,
};

/// Stable short name ("cpu", "memory", "iops", "log_rate", "io_latency",
/// "storage").
const char* ResourceDimName(ResourceDim dim);

/// Inverse of ResourceDimName; returns true and sets `dim` on success.
bool ParseResourceDim(const std::string& name, ResourceDim* dim);

/// True for dimensions where *smaller* observed values indicate a tighter
/// requirement (IO latency): the throttling test inverts the comparison for
/// these (paper §3.2: "IO latency is taken as the inverse ... relative to an
/// upper bound").
constexpr bool IsInvertedDim(ResourceDim dim) {
  return dim == ResourceDim::kIoLatencyMs;
}

/// A per-dimension vector of values with a presence mask. Used both for SKU
/// capacities and for point-in-time resource demand.
class ResourceVector {
 public:
  ResourceVector() { values_.fill(0.0); present_.fill(false); }

  /// Sets the value for a dimension (and marks it present).
  void Set(ResourceDim dim, double value) {
    values_[Index(dim)] = value;
    present_[Index(dim)] = true;
  }

  /// Clears a dimension.
  void Clear(ResourceDim dim) { present_[Index(dim)] = false; }

  /// True when the dimension carries a value.
  bool Has(ResourceDim dim) const { return present_[Index(dim)]; }

  /// Value for the dimension; 0 when absent.
  double Get(ResourceDim dim) const {
    return present_[Index(dim)] ? values_[Index(dim)] : 0.0;
  }

  /// Dimensions currently present, in enum order.
  std::vector<ResourceDim> PresentDims() const;

  /// True when a demand of `demand` in `dim` would exceed (be throttled by)
  /// a capacity of `capacity`, honouring inverted dimensions.
  static bool Exceeds(ResourceDim dim, double demand, double capacity) {
    return IsInvertedDim(dim) ? demand < capacity : demand > capacity;
  }

 private:
  static constexpr std::size_t Index(ResourceDim dim) {
    return static_cast<std::size_t>(static_cast<int>(dim));
  }

  std::array<double, kNumResourceDims> values_;
  std::array<bool, kNumResourceDims> present_;
};

}  // namespace doppler::catalog

#endif  // DOPPLER_CATALOG_RESOURCE_H_
