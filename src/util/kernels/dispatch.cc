// Runtime dispatch shim for the kernel table (util/kernels/kernels.h).
// The table is resolved exactly once per process: DOPPLER_KERNEL (if set)
// names the variant, cpuid-style feature detection gates what the CPU can
// actually run, and the result is published through a relaxed atomic that
// every hot call site reads. Tests and benchmarks swap the table with
// ScopedKernelOverride instead of mutating the environment.

#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/kernels/kernels_impl.h"
#include "util/logging.h"

namespace doppler::kernels {

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelOps* ResolveFromEnvironment() {
  const char* override_name = std::getenv("DOPPLER_KERNEL");
  const KernelOps& ops = SelectKernels(override_name);
  KernelIsa isa = KernelIsa::kScalar;
  if (&ops == internal::Avx2Ops()) isa = KernelIsa::kAvx2;
  if (&ops == internal::NeonOps()) isa = KernelIsa::kNeon;
  obs::DefaultMetrics()
      .GetGauge("kernel.dispatch_isa")
      ->Set(static_cast<double>(isa));
  DOPPLER_LOG(kInfo) << "kernel dispatch selected '" << ops.name << "' path"
                     << (override_name != nullptr ? " (DOPPLER_KERNEL set)"
                                                  : "");
  return &ops;
}

// nullptr until first use; ScopedKernelOverride saves/restores the raw
// value, so an override installed before first resolution leaves the
// "unresolved" state behind when it unwinds.
std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const KernelOps* KernelOpsFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &internal::ScalarOps();
    case KernelIsa::kAvx2:
      return CpuHasAvx2() ? internal::Avx2Ops() : nullptr;
    case KernelIsa::kNeon:
      return internal::NeonOps();
  }
  return nullptr;
}

bool ParseKernelIsa(const std::string& name, KernelIsa* isa) {
  if (name == "scalar") {
    *isa = KernelIsa::kScalar;
    return true;
  }
  if (name == "avx2") {
    *isa = KernelIsa::kAvx2;
    return true;
  }
  if (name == "neon") {
    *isa = KernelIsa::kNeon;
    return true;
  }
  return false;
}

const KernelOps& SelectKernels(const char* override_name) {
  // Best the hardware supports, used both for the default and as the
  // fallback target for unrecognised overrides.
  const KernelOps* best = KernelOpsFor(KernelIsa::kAvx2);
  if (best == nullptr) best = KernelOpsFor(KernelIsa::kNeon);
  if (best == nullptr) best = &internal::ScalarOps();

  if (override_name == nullptr || override_name[0] == '\0') return *best;

  KernelIsa isa;
  if (!ParseKernelIsa(override_name, &isa)) {
    DOPPLER_LOG(kWarning) << "DOPPLER_KERNEL='" << override_name
                          << "' is not a known variant "
                             "(scalar|avx2|neon); using '"
                          << best->name << "'";
    return *best;
  }
  const KernelOps* requested = KernelOpsFor(isa);
  if (requested == nullptr) {
    DOPPLER_LOG(kWarning) << "DOPPLER_KERNEL='" << override_name
                          << "' is unavailable on this CPU/build; "
                             "falling back to scalar";
    return internal::ScalarOps();
  }
  return *requested;
}

const KernelOps& ActiveKernels() {
  const KernelOps* ops = g_active.load(std::memory_order_relaxed);
  if (ops == nullptr) {
    // Several threads may race the first resolution; ResolveFromEnvironment
    // is idempotent and every racer computes the same table, so losing the
    // exchange only means a duplicate log line.
    ops = ResolveFromEnvironment();
    const KernelOps* expected = nullptr;
    if (!g_active.compare_exchange_strong(expected, ops,
                                          std::memory_order_relaxed)) {
      ops = expected;
    }
  }
  return *ops;
}

ScopedKernelOverride::ScopedKernelOverride(const KernelOps* ops)
    : previous_(g_active.load(std::memory_order_relaxed)) {
  g_active.store(ops != nullptr ? ops : &internal::ScalarOps(),
                 std::memory_order_relaxed);
}

ScopedKernelOverride::~ScopedKernelOverride() {
  g_active.store(previous_, std::memory_order_relaxed);
}

bool PaddingBitsAreZero(const std::uint64_t* words, std::size_t num_words,
                        std::size_t num_rows) {
  const std::size_t full_words = num_rows / 64;
  const std::size_t tail_bits = num_rows % 64;
  std::size_t w = full_words;
  if (tail_bits != 0) {
    if (w >= num_words) return true;  // no storage past the rows at all
    if ((words[w] >> tail_bits) != 0) return false;
    ++w;
  }
  for (; w < num_words; ++w) {
    if (words[w] != 0) return false;
  }
  return true;
}

}  // namespace doppler::kernels
