// AVX2 implementation of the kernel table. This translation unit — and
// only this one — is compiled with -mavx2 -mpopcnt (src/CMakeLists.txt
// attaches the flags per-file), so the rest of the binary stays runnable
// on baseline x86-64; the dispatcher only hands this table out after
// __builtin_cpu_supports("avx2") confirms the running CPU.
//
// Bit-identity notes (the contract in util/kernels/kernels.h):
//  - The counting kernels combine exact IEEE comparisons (VCMPPD with the
//    ordered-quiet predicates, so NaN compares false exactly like the
//    scalar `>`/`<`) with integer popcounts — lane width cannot change a
//    count.
//  - The KDE kernels vectorise only the per-sample subtract / divide /
//    multiply (VSUBPD/VDIVPD/VMULPD are per-lane identical to their
//    scalar counterparts); erf/exp and the accumulation stay scalar and
//    in sample order, so the sums match the scalar reference bit for bit.
//    No FMA is involved (the file is not built with -mfma), so the
//    compiler cannot contract the arithmetic into differently-rounded
//    forms.

#include "util/kernels/kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>
#include <cmath>

namespace doppler::kernels::internal {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865476;

// 4-bit comparison mask -> 4 bytes of 0/1, little-endian: byte b is 1 iff
// mask bit b is set. The masked scan's throttled-row scratch stores one
// 0/1 byte per row, so expanding the VMOVMSKPD bits to bytes lets eight
// marks merge with one 64-bit OR.
constexpr std::array<std::uint32_t, 16> MakeExpand4() {
  std::array<std::uint32_t, 16> table{};
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::uint32_t bytes = 0;
    for (unsigned b = 0; b < 4; ++b) {
      if ((mask >> b) & 1u) bytes |= std::uint32_t{1} << (8 * b);
    }
    table[mask] = bytes;
  }
  return table;
}
constexpr std::array<std::uint32_t, 16> kExpand4 = MakeExpand4();

std::size_t UnionCount(std::uint64_t* acc, const std::uint64_t* src,
                       std::size_t num_words) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    // Bits in src but not yet in acc; VPTEST skips the store and the four
    // popcounts whenever a block contributes nothing (the vector analogue
    // of the scalar saturated-word skip).
    const __m256i fresh = _mm256_andnot_si256(a, s);
    if (_mm256_testz_si256(fresh, fresh)) continue;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + w),
                        _mm256_or_si256(a, s));
    count += static_cast<std::size_t>(
        __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(fresh, 0))) +
        __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(fresh, 1))) +
        __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(fresh, 2))) +
        __builtin_popcountll(
            static_cast<unsigned long long>(_mm256_extract_epi64(fresh, 3))));
  }
  for (; w < num_words; ++w) {
    const std::uint64_t prev = acc[w];
    const std::uint64_t merged = prev | src[w];
    if (merged != prev) {
      count += static_cast<std::size_t>(
          __builtin_popcountll(merged ^ prev));
      acc[w] = merged;
    }
  }
  return count;
}

template <int Predicate>
std::size_t CountCmp(const double* values, std::size_t n, double limit) {
  const __m256d bound = _mm256_set1_pd(limit);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(values + i);
    const __m256d mask = _mm256_cmp_pd(x, bound, Predicate);
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(mask))));
  }
  for (; i < n; ++i) {
    count += Predicate == _CMP_GT_OQ ? values[i] > limit : values[i] < limit;
  }
  return count;
}

template <int Predicate>
std::size_t MarkCmp(const double* values, std::size_t n, double limit,
                    unsigned char* marks) {
  const __m256d bound = _mm256_set1_pd(limit);
  std::size_t newly = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d lo = _mm256_loadu_pd(values + i);
    const __m256d hi = _mm256_loadu_pd(values + i + 4);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_cmp_pd(lo, bound, Predicate))) |
        (static_cast<unsigned>(_mm256_movemask_pd(
             _mm256_cmp_pd(hi, bound, Predicate)))
         << 4);
    if (mask == 0) continue;
    std::uint64_t current;
    __builtin_memcpy(&current, marks + i, sizeof(current));
    const std::uint64_t wanted =
        static_cast<std::uint64_t>(kExpand4[mask & 15u]) |
        (static_cast<std::uint64_t>(kExpand4[mask >> 4]) << 32);
    // Marks are 0/1 bytes, so the raw word doubles as its own "already
    // marked" byte mask.
    const std::uint64_t fresh = wanted & ~current;
    if (fresh == 0) continue;
    current |= fresh;
    __builtin_memcpy(marks + i, &current, sizeof(current));
    newly += static_cast<std::size_t>(__builtin_popcountll(fresh));
  }
  for (; i < n; ++i) {
    const bool hit =
        Predicate == _CMP_GT_OQ ? values[i] > limit : values[i] < limit;
    if (hit && !marks[i]) {
      marks[i] = 1;
      ++newly;
    }
  }
  return newly;
}

template <int Predicate>
std::size_t BitsetCmp(const double* values, const double* limits,
                      std::size_t n, std::uint64_t* words) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    std::uint64_t word = 0;
    const std::size_t base = w * 64;
    for (std::size_t j = 0; j < 64; j += 4) {
      const __m256d v = _mm256_loadu_pd(values + base + j);
      const __m256d l = _mm256_loadu_pd(limits + base + j);
      const std::uint64_t mask = static_cast<std::uint64_t>(
          static_cast<unsigned>(_mm256_movemask_pd(
              _mm256_cmp_pd(v, l, Predicate))));
      word |= mask << j;
    }
    words[w] = word;
    count += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  if (w * 64 < n) {
    std::uint64_t word = 0;
    for (std::size_t r = w * 64; r < n; ++r) {
      const bool hit =
          Predicate == _CMP_GT_OQ ? values[r] > limits[r] : values[r] < limits[r];
      word |= static_cast<std::uint64_t>(hit) << (r & 63);
    }
    words[w] = word;
    count += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return count;
}

double KdeCdfSum(const double* sample, std::size_t n, double x,
                 double bandwidth) {
  const __m256d query = _mm256_set1_pd(x);
  const __m256d bw = _mm256_set1_pd(bandwidth);
  double sum = 0.0;
  std::size_t i = 0;
  alignas(32) double z[4];
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(
        z, _mm256_div_pd(_mm256_sub_pd(query, _mm256_loadu_pd(sample + i)),
                         bw));
    // erf and the accumulation stay scalar, in sample order — the lanes
    // above hold exactly the z each scalar iteration would have computed.
    sum += 0.5 * (1.0 + std::erf(z[0] * kInvSqrt2));
    sum += 0.5 * (1.0 + std::erf(z[1] * kInvSqrt2));
    sum += 0.5 * (1.0 + std::erf(z[2] * kInvSqrt2));
    sum += 0.5 * (1.0 + std::erf(z[3] * kInvSqrt2));
  }
  for (; i < n; ++i) {
    const double zi = (x - sample[i]) / bandwidth;
    sum += 0.5 * (1.0 + std::erf(zi * kInvSqrt2));
  }
  return sum;
}

double KdeDensitySum(const double* sample, std::size_t n, double x,
                     double bandwidth) {
  const __m256d query = _mm256_set1_pd(x);
  const __m256d bw = _mm256_set1_pd(bandwidth);
  const __m256d minus_half = _mm256_set1_pd(-0.5);
  double sum = 0.0;
  std::size_t i = 0;
  alignas(32) double t[4];
  for (; i + 4 <= n; i += 4) {
    const __m256d z =
        _mm256_div_pd(_mm256_sub_pd(query, _mm256_loadu_pd(sample + i)), bw);
    // Same association as the scalar reference's -0.5 * z * z:
    // (-0.5 * z) * z.
    _mm256_store_pd(t, _mm256_mul_pd(_mm256_mul_pd(minus_half, z), z));
    sum += std::exp(t[0]);
    sum += std::exp(t[1]);
    sum += std::exp(t[2]);
    sum += std::exp(t[3]);
  }
  for (; i < n; ++i) {
    const double zi = (x - sample[i]) / bandwidth;
    sum += std::exp(-0.5 * zi * zi);
  }
  return sum;
}

constexpr KernelOps kAvx2Ops = {
    "avx2",
    UnionCount,
    CountCmp<_CMP_GT_OQ>,
    CountCmp<_CMP_LT_OQ>,
    MarkCmp<_CMP_GT_OQ>,
    MarkCmp<_CMP_LT_OQ>,
    BitsetCmp<_CMP_GT_OQ>,
    BitsetCmp<_CMP_LT_OQ>,
    KdeCdfSum,
    KdeDensitySum,
};

}  // namespace

const KernelOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace doppler::kernels::internal

#else  // !defined(__AVX2__)

namespace doppler::kernels::internal {

const KernelOps* Avx2Ops() { return nullptr; }

}  // namespace doppler::kernels::internal

#endif  // defined(__AVX2__)
