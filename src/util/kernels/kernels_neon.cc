// NEON (AArch64) implementation of the kernel table. NEON is baseline on
// AArch64, so this file needs no special flags — it simply compiles to a
// stub elsewhere. The same bit-identity discipline as the AVX2 variant
// applies: comparisons are exact IEEE predicates (FCMGT/FCMLT, NaN
// compares false), counts are integers, and the KDE kernels vectorise
// only subtract/divide/multiply (per-lane identical to scalar) while
// erf/exp and the accumulation stay scalar and in sample order.

#include "util/kernels/kernels_impl.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <array>
#include <cmath>

namespace doppler::kernels::internal {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865476;

constexpr std::array<std::uint32_t, 16> MakeExpand4() {
  std::array<std::uint32_t, 16> table{};
  for (unsigned mask = 0; mask < 16; ++mask) {
    std::uint32_t bytes = 0;
    for (unsigned b = 0; b < 4; ++b) {
      if ((mask >> b) & 1u) bytes |= std::uint32_t{1} << (8 * b);
    }
    table[mask] = bytes;
  }
  return table;
}
constexpr std::array<std::uint32_t, 16> kExpand4 = MakeExpand4();

std::size_t UnionCount(std::uint64_t* acc, const std::uint64_t* src,
                       std::size_t num_words) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const uint64x2_t a = vld1q_u64(acc + w);
    const uint64x2_t s = vld1q_u64(src + w);
    const uint64x2_t fresh = vbicq_u64(s, a);  // src & ~acc
    const std::uint64_t lo = vgetq_lane_u64(fresh, 0);
    const std::uint64_t hi = vgetq_lane_u64(fresh, 1);
    if ((lo | hi) == 0) continue;
    vst1q_u64(acc + w, vorrq_u64(a, s));
    count += static_cast<std::size_t>(__builtin_popcountll(lo) +
                                      __builtin_popcountll(hi));
  }
  for (; w < num_words; ++w) {
    const std::uint64_t prev = acc[w];
    const std::uint64_t merged = prev | src[w];
    if (merged != prev) {
      count += static_cast<std::size_t>(__builtin_popcountll(merged ^ prev));
      acc[w] = merged;
    }
  }
  return count;
}

template <bool Above>
uint64x2_t Compare(float64x2_t v, float64x2_t limit) {
  return Above ? vcgtq_f64(v, limit) : vcltq_f64(v, limit);
}

template <bool Above>
std::size_t CountCmp(const double* values, std::size_t n, double limit) {
  const float64x2_t bound = vdupq_n_f64(limit);
  // Comparison lanes are all-ones (== -1) on a hit; subtracting them
  // accumulates the hit count per lane without a branch.
  uint64x2_t lanes = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    lanes = vsubq_u64(lanes, Compare<Above>(vld1q_f64(values + i), bound));
  }
  std::size_t count = static_cast<std::size_t>(vgetq_lane_u64(lanes, 0) +
                                               vgetq_lane_u64(lanes, 1));
  for (; i < n; ++i) {
    count += Above ? values[i] > limit : values[i] < limit;
  }
  return count;
}

template <bool Above>
std::size_t MarkCmp(const double* values, std::size_t n, double limit,
                    unsigned char* marks) {
  const float64x2_t bound = vdupq_n_f64(limit);
  std::size_t newly = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    unsigned mask = 0;
    for (unsigned j = 0; j < 8; j += 2) {
      const uint64x2_t cmp =
          Compare<Above>(vld1q_f64(values + i + j), bound);
      mask |= static_cast<unsigned>(vgetq_lane_u64(cmp, 0) & 1u) << j;
      mask |= static_cast<unsigned>(vgetq_lane_u64(cmp, 1) & 1u) << (j + 1);
    }
    if (mask == 0) continue;
    std::uint64_t current;
    __builtin_memcpy(&current, marks + i, sizeof(current));
    const std::uint64_t wanted =
        static_cast<std::uint64_t>(kExpand4[mask & 15u]) |
        (static_cast<std::uint64_t>(kExpand4[mask >> 4]) << 32);
    const std::uint64_t fresh = wanted & ~current;
    if (fresh == 0) continue;
    current |= fresh;
    __builtin_memcpy(marks + i, &current, sizeof(current));
    newly += static_cast<std::size_t>(__builtin_popcountll(fresh));
  }
  for (; i < n; ++i) {
    const bool hit = Above ? values[i] > limit : values[i] < limit;
    if (hit && !marks[i]) {
      marks[i] = 1;
      ++newly;
    }
  }
  return newly;
}

template <bool Above>
std::size_t BitsetCmp(const double* values, const double* limits,
                      std::size_t n, std::uint64_t* words) {
  std::size_t count = 0;
  std::size_t w = 0;
  for (; (w + 1) * 64 <= n; ++w) {
    std::uint64_t word = 0;
    const std::size_t base = w * 64;
    for (std::size_t j = 0; j < 64; j += 2) {
      const uint64x2_t cmp = Compare<Above>(vld1q_f64(values + base + j),
                                            vld1q_f64(limits + base + j));
      word |= (vgetq_lane_u64(cmp, 0) & 1u) << j;
      word |= (vgetq_lane_u64(cmp, 1) & 1u) << (j + 1);
    }
    words[w] = word;
    count += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  if (w * 64 < n) {
    std::uint64_t word = 0;
    for (std::size_t r = w * 64; r < n; ++r) {
      const bool hit = Above ? values[r] > limits[r] : values[r] < limits[r];
      word |= static_cast<std::uint64_t>(hit) << (r & 63);
    }
    words[w] = word;
    count += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return count;
}

double KdeCdfSum(const double* sample, std::size_t n, double x,
                 double bandwidth) {
  const float64x2_t query = vdupq_n_f64(x);
  const float64x2_t bw = vdupq_n_f64(bandwidth);
  double sum = 0.0;
  std::size_t i = 0;
  double z[2];
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(z, vdivq_f64(vsubq_f64(query, vld1q_f64(sample + i)), bw));
    sum += 0.5 * (1.0 + std::erf(z[0] * kInvSqrt2));
    sum += 0.5 * (1.0 + std::erf(z[1] * kInvSqrt2));
  }
  for (; i < n; ++i) {
    const double zi = (x - sample[i]) / bandwidth;
    sum += 0.5 * (1.0 + std::erf(zi * kInvSqrt2));
  }
  return sum;
}

double KdeDensitySum(const double* sample, std::size_t n, double x,
                     double bandwidth) {
  const float64x2_t query = vdupq_n_f64(x);
  const float64x2_t bw = vdupq_n_f64(bandwidth);
  const float64x2_t minus_half = vdupq_n_f64(-0.5);
  double sum = 0.0;
  std::size_t i = 0;
  double t[2];
  for (; i + 2 <= n; i += 2) {
    const float64x2_t z =
        vdivq_f64(vsubq_f64(query, vld1q_f64(sample + i)), bw);
    vst1q_f64(t, vmulq_f64(vmulq_f64(minus_half, z), z));
    sum += std::exp(t[0]);
    sum += std::exp(t[1]);
  }
  for (; i < n; ++i) {
    const double zi = (x - sample[i]) / bandwidth;
    sum += std::exp(-0.5 * zi * zi);
  }
  return sum;
}

constexpr KernelOps kNeonOps = {
    "neon",
    UnionCount,
    CountCmp<true>,
    CountCmp<false>,
    MarkCmp<true>,
    MarkCmp<false>,
    BitsetCmp<true>,
    BitsetCmp<false>,
    KdeCdfSum,
    KdeDensitySum,
};

}  // namespace

const KernelOps* NeonOps() { return &kNeonOps; }

}  // namespace doppler::kernels::internal

#else  // !defined(__aarch64__)

namespace doppler::kernels::internal {

const KernelOps* NeonOps() { return nullptr; }

}  // namespace doppler::kernels::internal

#endif  // defined(__aarch64__)
