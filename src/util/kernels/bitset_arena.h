#ifndef DOPPLER_UTIL_KERNELS_BITSET_ARENA_H_
#define DOPPLER_UTIL_KERNELS_BITSET_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace doppler::kernels {

/// Bump allocator for the word-packed exceedance bitsets shared by
/// core::ExceedanceIndex and stream::StreamIndex (DESIGN.md §15).
///
/// Memoised exceedance sets used to live in per-set std::vector<uint64_t>
/// buffers — one heap allocation per memo entry, no alignment guarantee,
/// and scattered across the heap so the union loop walked sets that were
/// cache-hostile to each other. The arena hands out 64-byte-aligned word
/// runs carved from large blocks instead: every bitset starts on its own
/// cache line (allocations round up to 8-word / one-line boundaries), sets
/// memoised together sit close together, and dropping a memo generation is
/// one Reset() instead of thousands of frees.
///
/// Padding-bit invariant: blocks are zero-filled when carved, so the
/// padding bits past a set's last row are zero from birth and stay zero —
/// set builders only OR row bits in, and the union kernels rely on this
/// instead of masking tails (kernels.h). Callers reusing a span (the
/// stream index patches bits in place) must keep the invariant when
/// clearing: they only ever clear row bits, so it holds structurally.
///
/// Thread safety: none — each index dimension owns one arena and guards it
/// with the same mutex that guards its memo map.
class BitsetArena {
 public:
  BitsetArena() = default;
  ~BitsetArena();

  BitsetArena(const BitsetArena&) = delete;
  BitsetArena& operator=(const BitsetArena&) = delete;

  /// A zeroed, 64-byte-aligned run of `num_words` words, valid until
  /// Reset() or destruction. num_words == 0 returns a non-null pointer
  /// (callers treat empty sets uniformly).
  std::uint64_t* Allocate(std::size_t num_words);

  /// Invalidates every span handed out and makes the memory reusable.
  /// Blocks are retained and re-zeroed lazily (on the next carve), so a
  /// steady-state generation bump allocates nothing.
  void Reset();

  /// Words currently reachable from live spans (diagnostics/tests).
  std::size_t allocated_words() const { return allocated_words_; }

  /// Words of block capacity owned by the arena (diagnostics/tests).
  std::size_t capacity_words() const { return capacity_words_; }

 private:
  struct Block {
    std::uint64_t* words = nullptr;
    std::size_t capacity = 0;  // in words
    std::size_t used = 0;      // in words, always a multiple of kLineWords
  };

  // One cache line of words; every allocation is rounded to this.
  static constexpr std::size_t kLineWords = 8;
  // First block carves 1024 words (8 KiB); blocks double up to a cap so
  // large catalogs don't thrash tiny blocks.
  static constexpr std::size_t kInitialBlockWords = 1024;
  static constexpr std::size_t kMaxBlockWords = 1u << 20;

  Block* BlockWithRoom(std::size_t num_words);

  std::vector<Block> blocks_;
  std::size_t allocated_words_ = 0;
  std::size_t capacity_words_ = 0;
};

}  // namespace doppler::kernels

#endif  // DOPPLER_UTIL_KERNELS_BITSET_ARENA_H_
