#ifndef DOPPLER_UTIL_KERNELS_KERNELS_IMPL_H_
#define DOPPLER_UTIL_KERNELS_KERNELS_IMPL_H_

#include "util/kernels/kernels.h"

// Internal wiring between the per-ISA translation units and the dispatch
// shim. Each variant lives in its own .cc so CMake can attach the ISA
// flags to exactly that file (never globally — the rest of the binary
// must run on the baseline architecture). A variant that was not compiled
// in returns nullptr; the dispatcher additionally gates compiled-in
// variants on runtime CPU feature detection.

namespace doppler::kernels::internal {

const KernelOps& ScalarOps();

/// nullptr unless the translation unit was built with AVX2 enabled.
const KernelOps* Avx2Ops();

/// nullptr unless the translation unit was built for AArch64 (NEON is
/// baseline there, so no extra flags are involved).
const KernelOps* NeonOps();

}  // namespace doppler::kernels::internal

#endif  // DOPPLER_UTIL_KERNELS_KERNELS_IMPL_H_
