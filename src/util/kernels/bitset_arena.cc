#include "util/kernels/bitset_arena.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace doppler::kernels {

namespace {

constexpr std::size_t kCacheLineBytes = 64;

std::uint64_t* NewAlignedWords(std::size_t num_words) {
  return static_cast<std::uint64_t*>(::operator new(
      num_words * sizeof(std::uint64_t), std::align_val_t{kCacheLineBytes}));
}

void DeleteAlignedWords(std::uint64_t* words) {
  ::operator delete(words, std::align_val_t{kCacheLineBytes});
}

}  // namespace

BitsetArena::~BitsetArena() {
  for (Block& block : blocks_) DeleteAlignedWords(block.words);
}

BitsetArena::Block* BitsetArena::BlockWithRoom(std::size_t num_words) {
  if (!blocks_.empty()) {
    Block& last = blocks_.back();
    if (last.capacity - last.used >= num_words) return &last;
  }
  std::size_t capacity =
      blocks_.empty() ? kInitialBlockWords
                      : std::min(blocks_.back().capacity * 2, kMaxBlockWords);
  if (capacity < num_words) capacity = num_words;
  Block block;
  block.words = NewAlignedWords(capacity);
  block.capacity = capacity;
  capacity_words_ += capacity;
  blocks_.push_back(block);
  return &blocks_.back();
}

std::uint64_t* BitsetArena::Allocate(std::size_t num_words) {
  // Round to a cache line so consecutive spans never share one and every
  // span starts 64-byte aligned within its (64-byte-aligned) block.
  const std::size_t rounded =
      (num_words + kLineWords - 1) / kLineWords * kLineWords;
  Block* block = BlockWithRoom(rounded == 0 ? kLineWords : rounded);
  std::uint64_t* span = block->words + block->used;
  const std::size_t take = rounded == 0 ? kLineWords : rounded;
  block->used += take;
  allocated_words_ += take;
  // Zero the span: operator new gives dirty memory, and after Reset() the
  // block may hold a previous generation's bits. This establishes the
  // padding-bit invariant the union kernels depend on.
  std::memset(span, 0, take * sizeof(std::uint64_t));
  return span;
}

void BitsetArena::Reset() {
  for (Block& block : blocks_) block.used = 0;
  allocated_words_ = 0;
}

}  // namespace doppler::kernels
