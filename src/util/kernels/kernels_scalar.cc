// Scalar reference implementation of the kernel table — the oracle every
// SIMD variant is held bit-identical to (tests/kernel_test.cc), and the
// fallback the dispatcher selects when no vector unit is available or
// DOPPLER_KERNEL=scalar forces it. The loops are written exactly like the
// hot paths they were hoisted out of (core/exceedance_index.cc,
// core/throttling.cc, stats/kde.cc), so routing a caller through the
// table on a scalar-only host changes nothing but the call.

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/kernels/kernels_impl.h"

namespace doppler::kernels::internal {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865476;

std::size_t UnionCount(std::uint64_t* acc, const std::uint64_t* src,
                       std::size_t num_words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::uint64_t prev = acc[w];
    // A saturated word cannot gain bits; skipping it saves the OR and the
    // store on the all-throttled prefixes dense unions converge to.
    if (prev == ~std::uint64_t{0}) continue;
    const std::uint64_t merged = prev | src[w];
    if (merged != prev) {
      count += static_cast<std::size_t>(std::popcount(merged ^ prev));
      acc[w] = merged;
    }
  }
  return count;
}

std::size_t CountAbove(const double* values, std::size_t n, double limit) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += values[i] > limit;
  return count;
}

std::size_t CountBelow(const double* values, std::size_t n, double limit) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += values[i] < limit;
  return count;
}

std::size_t MarkAbove(const double* values, std::size_t n, double limit,
                      unsigned char* marks) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!marks[i] && values[i] > limit) {
      marks[i] = 1;
      ++newly;
    }
  }
  return newly;
}

std::size_t MarkBelow(const double* values, std::size_t n, double limit,
                      unsigned char* marks) {
  std::size_t newly = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!marks[i] && values[i] < limit) {
      marks[i] = 1;
      ++newly;
    }
  }
  return newly;
}

std::size_t BitsetAbove(const double* values, const double* limits,
                        std::size_t n, std::uint64_t* words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w * 64 < n; ++w) {
    const std::size_t end = std::min(n - w * 64, std::size_t{64});
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < end; ++b) {
      const std::size_t r = w * 64 + b;
      word |= static_cast<std::uint64_t>(values[r] > limits[r]) << b;
    }
    words[w] = word;
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

std::size_t BitsetBelow(const double* values, const double* limits,
                        std::size_t n, std::uint64_t* words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w * 64 < n; ++w) {
    const std::size_t end = std::min(n - w * 64, std::size_t{64});
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < end; ++b) {
      const std::size_t r = w * 64 + b;
      word |= static_cast<std::uint64_t>(values[r] < limits[r]) << b;
    }
    words[w] = word;
    count += static_cast<std::size_t>(std::popcount(word));
  }
  return count;
}

double KdeCdfSum(const double* sample, std::size_t n, double x,
                 double bandwidth) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x - sample[i]) / bandwidth;
    sum += 0.5 * (1.0 + std::erf(z * kInvSqrt2));
  }
  return sum;
}

double KdeDensitySum(const double* sample, std::size_t n, double x,
                     double bandwidth) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (x - sample[i]) / bandwidth;
    sum += std::exp(-0.5 * z * z);
  }
  return sum;
}

constexpr KernelOps kScalarOps = {
    "scalar",     UnionCount, CountAbove,  CountBelow,    MarkAbove,
    MarkBelow,    BitsetAbove, BitsetBelow, KdeCdfSum,    KdeDensitySum,
};

}  // namespace

const KernelOps& ScalarOps() { return kScalarOps; }

}  // namespace doppler::kernels::internal
