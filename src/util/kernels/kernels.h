#ifndef DOPPLER_UTIL_KERNELS_KERNELS_H_
#define DOPPLER_UTIL_KERNELS_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>

namespace doppler::kernels {

/// SIMD kernel layer for the exceedance/union hot path (DESIGN.md §15).
///
/// The four inner loops the assessment engine spends its time in — bitset
/// union with popcount, exceedance counting over a demand column, the
/// masked early-exit union scan, and Gaussian-kernel evaluation — are
/// implemented once per instruction set behind this function-pointer
/// table. The implementation is selected once per process (cpuid-style
/// feature detection, overridable with DOPPLER_KERNEL=scalar|avx2|neon)
/// and every call site reads the table through ActiveKernels().
///
/// Correctness contract: every operation is BIT-IDENTICAL across
/// implementations. The counting kernels are exact integer arithmetic
/// over exact IEEE comparisons (a comparison is a predicate, not an
/// approximation, so lane width cannot change a count), and the KDE
/// kernels perform the same IEEE operations in the same order as the
/// scalar reference (vectorised subtract/divide/multiply are per-lane
/// identical to their scalar counterparts; the transcendental and the
/// accumulation stay scalar and in sample order). The property tests and
/// the differential harness in tests/kernel_test.cc hold every variant to
/// exact equality against the scalar reference.
///
/// Alignment contract: kernels use unaligned vector loads, so they accept
/// any pointer — but the hot callers allocate their operands cache-line
/// aligned (util/kernels/bitset_arena.h pools, util/aligned.h rows) so
/// the loads never straddle a line. Bitset operands must have their
/// padding bits (past the last row in the final word) zero; the arena
/// zeroes them at allocation and PaddingBitsAreZero verifies the
/// invariant in debug builds, so no kernel carries tail masking logic.
struct KernelOps {
  /// Implementation name ("scalar", "avx2", "neon") — surfaced by the
  /// dispatch log line and the kernel.dispatch_isa gauge.
  const char* name;

  /// (a) Bitset union step: ORs `src` into `acc` over `num_words` words
  /// and returns the number of bits newly set (popcount of src & ~acc).
  /// The exceedance-union callers accumulate this as the running union
  /// cardinality, so no final popcount pass is needed.
  std::size_t (*union_count)(std::uint64_t* acc, const std::uint64_t* src,
                             std::size_t num_words);

  /// (b) Branch-free exceedance counting: the number of values strictly
  /// above / below `limit`. Applied to a sorted column this is the
  /// suffix/prefix run length (== the binary-search boundary); applied to
  /// a raw column it is the single-dimension throttled-row count. NaNs
  /// compare false, exactly like the scalar `v > limit` / `v < limit`.
  std::size_t (*count_above)(const double* values, std::size_t n,
                             double limit);
  std::size_t (*count_below)(const double* values, std::size_t n,
                             double limit);

  /// (c) Masked early-exit union scan step: marks[i] <- 1 for every i with
  /// values[i] strictly above/below `limit`, returning how many marks were
  /// NEWLY set. `marks` bytes must be 0 or 1 (the columnar scan's
  /// throttled-row scratch); rows already marked are never re-counted, so
  /// summing the return values across columns yields the union cardinality.
  std::size_t (*mark_above)(const double* values, std::size_t n, double limit,
                            unsigned char* marks);
  std::size_t (*mark_below)(const double* values, std::size_t n, double limit,
                            unsigned char* marks);

  /// Row-vs-row exceedance to a word-packed bitset (the moving-capacity
  /// union seed): bit r of `words` <- values[r] strictly above/below
  /// limits[r]; returns the number of set bits. Writes every word of
  /// ceil(n/64), leaving padding bits zero — callers need not pre-zero.
  std::size_t (*bitset_above)(const double* values, const double* limits,
                              std::size_t n, std::uint64_t* words);
  std::size_t (*bitset_below)(const double* values, const double* limits,
                              std::size_t n, std::uint64_t* words);

  /// (d) Batched Gaussian-kernel evaluation over one sample array.
  /// kde_cdf_sum returns sum_i 0.5 * (1 + erf(((x - s_i) / bandwidth) *
  /// (1/sqrt 2))); kde_density_sum returns sum_i exp(-0.5 * z_i * z_i)
  /// with z_i = (x - s_i) / bandwidth. Callers apply the 1/n (and
  /// normal-constant) scaling. Accumulation is in sample order in every
  /// implementation, so results are bit-identical across them.
  double (*kde_cdf_sum)(const double* sample, std::size_t n, double x,
                        double bandwidth);
  double (*kde_density_sum)(const double* sample, std::size_t n, double x,
                            double bandwidth);
};

/// The instruction-set variants a build may carry. Values are stable: the
/// kernel.dispatch_isa gauge exports them numerically.
enum class KernelIsa { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The table for one variant, or nullptr when the variant was not compiled
/// into this binary or the running CPU lacks the feature (checked via
/// cpuid). kScalar never returns nullptr.
const KernelOps* KernelOpsFor(KernelIsa isa);

/// Parses a DOPPLER_KERNEL value ("scalar" | "avx2" | "neon"); returns
/// false on anything else.
bool ParseKernelIsa(const std::string& name, KernelIsa* isa);

/// Resolves the table an override string selects: nullptr/empty picks the
/// best variant the CPU supports; a recognised name picks that variant,
/// falling back to scalar (with a warning log) when it is unavailable; an
/// unrecognised name warns and picks the best. Pure apart from logging —
/// the differential harness sweeps it over every override value.
const KernelOps& SelectKernels(const char* override_name);

/// The process-wide table: resolved from DOPPLER_KERNEL + feature
/// detection on first use, then a relaxed atomic read. The first
/// resolution publishes the choice as the `kernel.dispatch_isa` gauge and
/// an info log line naming the selected path.
const KernelOps& ActiveKernels();

/// Swaps the process-wide table for a scope (tests and benchmarks that
/// compare variants end-to-end). Restores the previous table — including
/// the not-yet-resolved state — on destruction. Takes the same override
/// strings as DOPPLER_KERNEL.
class ScopedKernelOverride {
 public:
  explicit ScopedKernelOverride(const KernelOps* ops);
  explicit ScopedKernelOverride(KernelIsa isa)
      : ScopedKernelOverride(KernelOpsFor(isa)) {}
  ~ScopedKernelOverride();

  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const KernelOps* previous_;
};

/// True when every bit past `num_rows` in the final word (and every bit of
/// any wholly-padding word) is zero — the invariant the bitset arena
/// establishes at allocation and the union kernels rely on instead of
/// per-kernel tail masking. Debug asserts at the set-build sites verify it.
bool PaddingBitsAreZero(const std::uint64_t* words, std::size_t num_words,
                        std::size_t num_rows);

/// Columns at or below this length take the branch-free count kernel for
/// the sorted-run boundary; longer columns keep the O(log n) binary
/// search. Both produce the same integer on a sorted column, so the
/// cutoff is a pure performance knob.
inline constexpr std::size_t kSortedScanCutoff = 128;

/// Rows of a sorted-ascending column strictly above `limit` (the
/// exceedance suffix length): branch-free scan for short columns, binary
/// search otherwise. Identical to `n - upper_bound` by sortedness.
inline std::size_t SortedCountAbove(const KernelOps& ops,
                                    const double* sorted, std::size_t n,
                                    double limit) {
  if (n <= kSortedScanCutoff) return ops.count_above(sorted, n, limit);
  return static_cast<std::size_t>(
      (sorted + n) - std::upper_bound(sorted, sorted + n, limit));
}

/// Rows of a sorted-ascending column strictly below `limit` (the inverted
/// dimension's exceedance prefix length). Identical to `lower_bound`.
inline std::size_t SortedCountBelow(const KernelOps& ops,
                                    const double* sorted, std::size_t n,
                                    double limit) {
  if (n <= kSortedScanCutoff) return ops.count_below(sorted, n, limit);
  return static_cast<std::size_t>(
      std::lower_bound(sorted, sorted + n, limit) - sorted);
}

}  // namespace doppler::kernels

#endif  // DOPPLER_UTIL_KERNELS_KERNELS_H_
