#ifndef DOPPLER_UTIL_STATUSOR_H_
#define DOPPLER_UTIL_STATUSOR_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace doppler {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The usual access pattern is:
///
///   StatusOr<Curve> curve = BuildCurve(...);
///   if (!curve.ok()) return curve.status();
///   Use(*curve);
///
/// Accessing the value of a non-OK StatusOr aborts the process (the library
/// is exception-free), so callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and degrades to an INTERNAL error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OkStatus() when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; require ok().
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    CheckHasValue();
    return &*value_;
  }
  T* operator->() {
    CheckHasValue();
    return &*value_;
  }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      // Deliberate hard stop: dereferencing an error is a bug in the caller.
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace doppler

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define DOPPLER_ASSIGN_OR_RETURN(lhs, rexpr)          \
  DOPPLER_ASSIGN_OR_RETURN_IMPL_(                     \
      DOPPLER_STATUS_CONCAT_(_doppler_sor, __LINE__), lhs, rexpr)

#define DOPPLER_STATUS_CONCAT_INNER_(a, b) a##b
#define DOPPLER_STATUS_CONCAT_(a, b) DOPPLER_STATUS_CONCAT_INNER_(a, b)

#define DOPPLER_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // DOPPLER_UTIL_STATUSOR_H_
