#ifndef DOPPLER_UTIL_RANDOM_H_
#define DOPPLER_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace doppler {

/// Deterministic pseudo-random number generator (xoshiro256++) plus the
/// distribution samplers the workload generators and bootstrap need.
///
/// Every stochastic component in the library takes an explicit Rng (or a
/// seed) so that experiments are reproducible run-to-run; nothing reads
/// entropy from the environment.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Standard normal via Box-Muller (cached pair).
  double Normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential with the given rate (> 0).
  double Exponential(double rate);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Poisson counts with the given mean (>= 0); Knuth for small means,
  /// normal approximation above 64.
  int Poisson(double mean);

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed spikes).
  double Pareto(double xm, double alpha);

  /// Derives an independent child generator; stable for a given (parent
  /// seed, stream) pair. Used to give each simulated customer its own
  /// stream so that population order does not perturb individual traces.
  Rng Fork(std::uint64_t stream);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace doppler

#endif  // DOPPLER_UTIL_RANDOM_H_
