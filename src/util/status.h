#ifndef DOPPLER_UTIL_STATUS_H_
#define DOPPLER_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace doppler {

/// Canonical error space for the library. Mirrors the subset of the
/// absl/gRPC canonical codes that the engine actually needs; the library is
/// built without exceptions on its API boundaries, so every fallible
/// operation returns a Status (or StatusOr<T>, see statusor.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnavailable = 5,
  kInternal = 6,
  /// A bounded resource (the serving admission queue) is full; the request
  /// was rejected up front, not queued. Retryable after backing off.
  kResourceExhausted = 7,
  /// The request's deadline expired before the work finished. The serving
  /// layer returns whatever stages completed alongside this code.
  kDeadlineExceeded = 8,
};

/// Returns a stable human-readable name for a code ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-type result of a fallible operation: a code plus a diagnostic
/// message. An OK status carries no message. Statuses are cheap to copy and
/// compare; they are the only error-reporting channel in the public API.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A message on an
  /// OK status is dropped.
  Status(StatusCode code, std::string message)
      : code_(code),
        message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Factory helpers, one per canonical error code.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);

}  // namespace doppler

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DOPPLER_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::doppler::Status _doppler_status = (expr);       \
    if (!_doppler_status.ok()) return _doppler_status; \
  } while (false)

#endif  // DOPPLER_UTIL_STATUS_H_
