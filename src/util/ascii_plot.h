#ifndef DOPPLER_UTIL_ASCII_PLOT_H_
#define DOPPLER_UTIL_ASCII_PLOT_H_

#include <string>
#include <vector>

namespace doppler {

/// Options controlling the character-cell canvas used by the plotters.
struct PlotOptions {
  int width = 72;       ///< Canvas width in characters.
  int height = 16;      ///< Canvas height in characters.
  std::string title;    ///< Optional title line.
  std::string y_label;  ///< Optional axis label shown above the axis.
  char mark = '*';      ///< Glyph used for data points.
};

/// Renders `values` (one series, evenly spaced in x) as an ASCII line plot.
/// The Resource Use Module uses this to show customers their raw counter
/// time series (paper Figs. 4a, 6b, 13) in a terminal.
std::string LinePlot(const std::vector<double>& values,
                     const PlotOptions& options = {});

/// Renders two series on one canvas ('*' and 'o'), e.g. price-performance
/// curves before/after a SKU change (paper Fig. 11).
std::string DualLinePlot(const std::vector<double>& a,
                         const std::vector<double>& b,
                         const PlotOptions& options = {});

/// Renders (x, y) points as a step/scatter plot with x positions respected,
/// used for price-performance curves where prices are unevenly spaced.
std::string ScatterPlot(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const PlotOptions& options = {});

/// Renders a horizontal bar histogram: one labelled bar per bucket.
std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values,
                     const PlotOptions& options = {});

}  // namespace doppler

#endif  // DOPPLER_UTIL_ASCII_PLOT_H_
