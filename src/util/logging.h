#ifndef DOPPLER_UTIL_LOGGING_H_
#define DOPPLER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace doppler {

/// Severity levels in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel MinLogLevel();

namespace internal_logging {

/// Stream-style log sink: accumulates a message and writes it on
/// destruction. Use via the DOPPLER_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace doppler

/// Usage: DOPPLER_LOG(kInfo) << "assessed " << n << " databases";
#define DOPPLER_LOG(severity)                                       \
  ::doppler::internal_logging::LogMessage(                          \
      ::doppler::LogLevel::severity, __FILE__, __LINE__)

#endif  // DOPPLER_UTIL_LOGGING_H_
