#ifndef DOPPLER_UTIL_LOGGING_H_
#define DOPPLER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace doppler {

/// Severity levels in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);

/// Current minimum severity.
LogLevel MinLogLevel();

/// Stable lower-case level name ("debug", "info", "warning", "error").
const char* LogLevelName(LogLevel level);

/// Inverse of LogLevelName; returns true and sets `level` on success.
bool ParseLogLevel(const std::string& name, LogLevel* level);

/// How emitted lines are rendered: classic text, or one JSON object per
/// line ({"ts":...,"level":...,"file":...,"line":...,"message":...}) for
/// log shippers. Structured output keeps the same stderr sink.
enum class LogFormat { kText = 0, kJson = 1 };

void SetLogFormat(LogFormat format);
LogFormat CurrentLogFormat();

namespace internal_logging {

/// True when a message at `level` would be emitted; the DOPPLER_LOG macro
/// short-circuits on this so streamed arguments are never evaluated for
/// suppressed severities (debug logging in hot loops is free when off).
inline bool IsLogOn(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(MinLogLevel());
}

/// Stream-style log sink: accumulates a message and writes it on
/// destruction. Use via the DOPPLER_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;  ///< Basename; points into a __FILE__ literal.
  int line_;
  std::ostringstream stream_;
};

/// Lets the lazy DOPPLER_LOG ternary type-match its discarded branch:
/// `operator&` swallows the fully streamed LogMessage and yields void.
/// `&` binds looser than `<<`, so every streamed argument is evaluated
/// first — but only when the severity check chose this branch.
class Voidify {
 public:
  void operator&(const LogMessage&) {}
};

}  // namespace internal_logging
}  // namespace doppler

/// Usage: DOPPLER_LOG(kInfo) << "assessed " << n << " databases";
/// Streamed expressions are NOT evaluated when the severity is below
/// MinLogLevel() — the macro short-circuits before constructing the
/// message, so hot-path debug logging costs one relaxed atomic load when
/// disabled.
#define DOPPLER_LOG(severity)                                              \
  !::doppler::internal_logging::IsLogOn(::doppler::LogLevel::severity)     \
      ? (void)0                                                            \
      : ::doppler::internal_logging::Voidify() &                           \
            ::doppler::internal_logging::LogMessage(                       \
                ::doppler::LogLevel::severity, __FILE__, __LINE__)

#endif  // DOPPLER_UTIL_LOGGING_H_
