#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/json_writer.h"

namespace doppler {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

bool ParseLogLevel(const std::string& name, LogLevel* level) {
  if (name == "debug") {
    *level = LogLevel::kDebug;
  } else if (name == "info") {
    *level = LogLevel::kInfo;
  } else if (name == "warning") {
    *level = LogLevel::kWarning;
  } else if (name == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogFormat(LogFormat format) {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat CurrentLogFormat() {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {
  // Strip directories for compactness; file is a literal and outlives us.
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') file_ = p + 1;
  }
}

LogMessage::~LogMessage() {
  // The macro already filtered; this guards direct LogMessage users.
  if (!IsLogOn(level_)) return;
  const std::string message = stream_.str();
  if (CurrentLogFormat() == LogFormat::kJson) {
    const double epoch_seconds =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count()) /
        1000.0;
    std::fprintf(stderr,
                 "{\"ts\":%.3f,\"level\":\"%s\",\"file\":\"%s\",\"line\":%d,"
                 "\"message\":\"%s\"}\n",
                 epoch_seconds, LogLevelName(level_),
                 JsonWriter::Escape(file_).c_str(), line_,
                 JsonWriter::Escape(message).c_str());
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), file_, line_,
               message.c_str());
}

}  // namespace internal_logging
}  // namespace doppler
