#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace doppler {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

Status CsvTable::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    return InvalidArgumentError("row width " + std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
  return OkStatus();
}

StatusOr<std::size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return NotFoundError("no column named '" + name + "'");
}

std::string CsvTable::ToString() const {
  std::ostringstream out;
  out << Join(header_, ",") << "\n";
  for (const auto& row : rows_) out << Join(row, ",") << "\n";
  return out.str();
}

Status CsvTable::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return UnavailableError("cannot open '" + path + "' for writing");
  out << ToString();
  if (!out) return UnavailableError("failed writing '" + path + "'");
  return OkStatus();
}

StatusOr<CsvTable> CsvTable::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return InvalidArgumentError("empty CSV document");
  }
  CsvTable table(Split(line, ','));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    DOPPLER_RETURN_IF_ERROR(table.AddRow(Split(line, ',')));
  }
  return table;
}

StatusOr<CsvTable> CsvTable::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return UnavailableError("cannot open '" + path + "'");
  std::ostringstream contents;
  contents << in.rdbuf();
  return Parse(contents.str());
}

}  // namespace doppler
