#include "util/deadline.h"

#include <algorithm>
#include <limits>

namespace doppler {

Deadline Deadline::Cancellable() {
  Deadline deadline;
  deadline.cancelled_ = std::make_shared<std::atomic<bool>>(false);
  return deadline;
}

Deadline Deadline::After(double seconds) {
  Deadline deadline = Cancellable();
  deadline.has_time_ = true;
  deadline.at_ = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
  return deadline;
}

Deadline Deadline::Expired() {
  Deadline deadline = Cancellable();
  deadline.cancelled_->store(true, std::memory_order_relaxed);
  return deadline;
}

bool Deadline::IsExpired() const {
  if (cancelled_ != nullptr && cancelled_->load(std::memory_order_relaxed)) {
    return true;
  }
  return has_time_ && std::chrono::steady_clock::now() >= at_;
}

void Deadline::Cancel() const {
  if (cancelled_ != nullptr) {
    cancelled_->store(true, std::memory_order_relaxed);
  }
}

double Deadline::RemainingSeconds() const {
  if (cancelled_ != nullptr && cancelled_->load(std::memory_order_relaxed)) {
    return has_time_ ? std::min(
                           0.0,
                           std::chrono::duration_cast<
                               std::chrono::duration<double>>(
                               at_ - std::chrono::steady_clock::now())
                               .count())
                     : 0.0;
  }
  if (!has_time_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             at_ - std::chrono::steady_clock::now())
      .count();
}

}  // namespace doppler
