#ifndef DOPPLER_UTIL_DEADLINE_H_
#define DOPPLER_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace doppler {

/// A per-request time budget plus a cooperative cancellation flag, threaded
/// through the assessment pipeline and checked at stage boundaries. Two
/// expiry sources combine:
///  - a wall-clock deadline (steady_clock, so NTP steps cannot revive an
///    expired request), and
///  - an explicit Cancel() on any copy of the deadline — the handle shares
///    its flag across copies, which is what makes expiry DETERMINISTIC in
///    tests: a stage hook cancels at a chosen boundary instead of racing a
///    timer.
/// A default-constructed Deadline never expires and carries no shared
/// state, so the common no-deadline request stays allocation-free.
class Deadline {
 public:
  /// Never expires (unless a cancellable copy is cancelled — a default
  /// deadline has no cancel flag and can never expire).
  Deadline() = default;

  /// Never expires on its own but CAN be cancelled: the returned handle
  /// (and every copy of it) shares one cancellation flag.
  static Deadline Cancellable();

  /// Expires `seconds` from now (steady clock); also cancellable.
  static Deadline After(double seconds);

  /// Already expired — requests carrying it fail at the first boundary.
  static Deadline Expired();

  /// True when the time budget ran out or any copy was cancelled.
  bool IsExpired() const;

  /// True when this deadline can expire at all (it has a time bound or a
  /// cancel flag). A plain Deadline() returns false.
  bool IsBounded() const { return has_time_ || cancelled_ != nullptr; }

  /// Trips the shared cancellation flag; a no-op on a default (flagless)
  /// deadline. Safe from any thread.
  void Cancel() const;

  /// Seconds until the time bound; +infinity when unbounded, <= 0 when
  /// expired (0 exactly when only the cancel flag tripped).
  double RemainingSeconds() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool has_time_ = false;
  /// Shared across copies so Cancel() on one handle expires them all.
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

}  // namespace doppler

#endif  // DOPPLER_UTIL_DEADLINE_H_
