#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace doppler {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream line;
    line << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line << " " << cells[c]
           << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    line << "\n";
    return line.str();
  };

  std::ostringstream out;
  out << render_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) out << render_row(row);
  return out.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace doppler
