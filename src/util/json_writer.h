#ifndef DOPPLER_UTIL_JSON_WRITER_H_
#define DOPPLER_UTIL_JSON_WRITER_H_

#include <string>

namespace doppler {

/// Minimal streaming JSON writer for machine-readable CLI output and
/// report export. Write-only by design: the library never parses JSON, it
/// only emits it for downstream tooling, so a serializer with correct
/// escaping and structural checks is all that is needed.
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("sku").String("DB_GP_Gen5_4");
///   json.Key("monthly_cost").Number(737.3);
///   json.Key("dims").BeginArray().String("cpu").String("iops").EndArray();
///   json.EndObject();
///   std::string text = json.str();
///
/// Structural misuse (e.g. a value with no pending key inside an object)
/// aborts in debug builds via assert and emits best-effort output
/// otherwise; the write methods return *this for chaining.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.
  const std::string& str() const { return out_; }

  /// Escapes a string per RFC 8259 (quotes, backslashes, control chars).
  static std::string Escape(const std::string& text);

 private:
  void Comma();

  std::string out_;
  /// Stack of container states: 'o' = object, 'a' = array; parallel flag
  /// for "first element written".
  std::string containers_;
  std::string has_elements_;
  bool pending_key_ = false;
};

}  // namespace doppler

#endif  // DOPPLER_UTIL_JSON_WRITER_H_
