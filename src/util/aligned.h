#ifndef DOPPLER_UTIL_ALIGNED_H_
#define DOPPLER_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace doppler {

/// Minimal over-aligned allocator for hot-path containers. The SIMD kernel
/// layer (util/kernels/) reads its operands with vector loads; starting
/// every column on its own cache line keeps those loads from straddling
/// lines and lets the hardware prefetcher stream one row without pulling
/// its neighbours. Alignment must be a power of two and at least
/// alignof(T).
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// A std::vector whose storage starts on a cache-line boundary. Iterates,
/// indexes, and resizes exactly like std::vector<T>; only the allocator
/// (and therefore the type) differs, so consumers that held
/// `const std::vector<T>&` must hold `const AlignedVector<T>&` (or auto&)
/// instead.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace doppler

#endif  // DOPPLER_UTIL_ALIGNED_H_
