#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/string_util.h"

namespace doppler {

namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range FindRange(const std::vector<const std::vector<double>*>& series) {
  Range r{std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (const auto* s : series) {
    for (double v : *s) {
      if (!std::isfinite(v)) continue;
      r.lo = std::min(r.lo, v);
      r.hi = std::max(r.hi, v);
    }
  }
  if (!std::isfinite(r.lo) || !std::isfinite(r.hi)) return {0.0, 1.0};
  if (r.hi - r.lo < 1e-12) {
    r.lo -= 0.5;
    r.hi += 0.5;
  }
  return r;
}

class Canvas {
 public:
  Canvas(int width, int height)
      : width_(std::max(8, width)),
        height_(std::max(4, height)),
        cells_(static_cast<std::size_t>(width_) * height_, ' ') {}

  void Set(int col, int row, char mark) {
    if (col < 0 || col >= width_ || row < 0 || row >= height_) return;
    cells_[static_cast<std::size_t>(row) * width_ + col] = mark;
  }

  int width() const { return width_; }
  int height() const { return height_; }

  std::string Render(const Range& range, const PlotOptions& options) const {
    std::ostringstream out;
    if (!options.title.empty()) out << options.title << "\n";
    if (!options.y_label.empty()) out << options.y_label << "\n";
    for (int row = 0; row < height_; ++row) {
      // Row 0 is the top of the canvas (max value).
      const double frac = 1.0 - static_cast<double>(row) / (height_ - 1);
      const double value = range.lo + frac * (range.hi - range.lo);
      std::string label = FormatDouble(value, 2);
      if (label.size() < 10) label = std::string(10 - label.size(), ' ') + label;
      out << label << " |";
      out.write(&cells_[static_cast<std::size_t>(row) * width_], width_);
      out << "\n";
    }
    out << std::string(11, ' ') << "+" << std::string(width_, '-') << "\n";
    return out.str();
  }

 private:
  int width_;
  int height_;
  std::string cells_;
};

void DrawSeries(Canvas& canvas, const std::vector<double>& values,
                const Range& range, char mark) {
  if (values.empty()) return;
  const int w = canvas.width();
  const int h = canvas.height();
  for (int col = 0; col < w; ++col) {
    // Down-sample: each column shows the max of its value bucket so spikes
    // stay visible at any terminal width.
    const std::size_t begin =
        values.size() * static_cast<std::size_t>(col) / w;
    std::size_t end = values.size() * static_cast<std::size_t>(col + 1) / w;
    end = std::max(end, begin + 1);
    double bucket = -std::numeric_limits<double>::infinity();
    for (std::size_t i = begin; i < end && i < values.size(); ++i) {
      if (std::isfinite(values[i])) bucket = std::max(bucket, values[i]);
    }
    if (!std::isfinite(bucket)) continue;
    const double frac = (bucket - range.lo) / (range.hi - range.lo);
    const int row = static_cast<int>(std::lround((1.0 - frac) * (h - 1)));
    canvas.Set(col, row, mark);
  }
}

}  // namespace

std::string LinePlot(const std::vector<double>& values,
                     const PlotOptions& options) {
  Canvas canvas(options.width, options.height);
  const Range range = FindRange({&values});
  DrawSeries(canvas, values, range, options.mark);
  return canvas.Render(range, options);
}

std::string DualLinePlot(const std::vector<double>& a,
                         const std::vector<double>& b,
                         const PlotOptions& options) {
  Canvas canvas(options.width, options.height);
  const Range range = FindRange({&a, &b});
  DrawSeries(canvas, a, range, '*');
  DrawSeries(canvas, b, range, 'o');
  std::string plot = canvas.Render(range, options);
  plot += "            (*: first series, o: second series)\n";
  return plot;
}

std::string ScatterPlot(const std::vector<double>& x,
                        const std::vector<double>& y,
                        const PlotOptions& options) {
  Canvas canvas(options.width, options.height);
  const Range yr = FindRange({&y});
  Range xr = FindRange({&x});
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) continue;
    const double fx = (x[i] - xr.lo) / (xr.hi - xr.lo);
    const double fy = (y[i] - yr.lo) / (yr.hi - yr.lo);
    const int col = static_cast<int>(std::lround(fx * (canvas.width() - 1)));
    const int row =
        static_cast<int>(std::lround((1.0 - fy) * (canvas.height() - 1)));
    canvas.Set(col, row, options.mark);
  }
  std::string plot = canvas.Render(yr, options);
  plot += "            x: [" + FormatDouble(xr.lo, 2) + ", " +
          FormatDouble(xr.hi, 2) + "]\n";
  return plot;
}

std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values,
                     const PlotOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  const std::size_t n = std::min(labels.size(), values.size());
  double max_value = 1e-12;
  std::size_t label_width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_value = std::max(max_value, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  for (std::size_t i = 0; i < n; ++i) {
    const int bar = static_cast<int>(
        std::lround(values[i] / max_value * std::max(8, options.width - 24)));
    out << labels[i] << std::string(label_width - labels[i].size(), ' ')
        << " |" << std::string(std::max(0, bar), '#') << " "
        << FormatDouble(values[i], 3) << "\n";
  }
  return out.str();
}

}  // namespace doppler
