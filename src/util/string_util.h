#ifndef DOPPLER_UTIL_STRING_UTIL_H_
#define DOPPLER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace doppler {

/// Splits `text` on `delimiter`, keeping empty fields. Splitting an empty
/// string yields a single empty field (CSV semantics).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// printf-style double formatting with a fixed number of decimals.
std::string FormatDouble(double value, int decimals);

/// Formats a fraction in [0,1] as a percentage string, e.g. "89.4%".
std::string FormatPercent(double fraction, int decimals = 1);

/// Formats a dollar amount, e.g. "$1.36" or "$1,036.50".
std::string FormatDollars(double amount, int decimals = 2);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace doppler

#endif  // DOPPLER_UTIL_STRING_UTIL_H_
