#ifndef DOPPLER_UTIL_CSV_H_
#define DOPPLER_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace doppler {

/// In-memory CSV document: a header row plus data rows of equal width.
/// Used for persisting perf traces, assessment results and experiment
/// outputs; the format is plain RFC-4180 minus quoting (fields in this
/// library never contain commas or newlines).
class CsvTable {
 public:
  CsvTable() = default;

  /// Creates a table with the given column names.
  explicit CsvTable(std::vector<std::string> header);

  /// Column names.
  const std::vector<std::string>& header() const { return header_; }

  /// Appends a row; returns INVALID_ARGUMENT when the width differs from
  /// the header width.
  Status AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return header_.size(); }

  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Index of the named column, or NOT_FOUND.
  StatusOr<std::size_t> ColumnIndex(const std::string& name) const;

  /// Serializes the whole table (header first) to CSV text.
  std::string ToString() const;

  /// Writes the table to `path`; fails with UNAVAILABLE on IO errors.
  Status WriteFile(const std::string& path) const;

  /// Parses CSV text (first line is the header).
  static StatusOr<CsvTable> Parse(const std::string& text);

  /// Reads and parses the file at `path`.
  static StatusOr<CsvTable> ReadFile(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace doppler

#endif  // DOPPLER_UTIL_CSV_H_
