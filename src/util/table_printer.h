#ifndef DOPPLER_UTIL_TABLE_PRINTER_H_
#define DOPPLER_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace doppler {

/// Renders aligned ASCII tables for the experiment harnesses, matching the
/// "paper table" look of the bench output:
///
///   | Group | vCores | Memory | IOPS | Average (Std) Score |
///   |-------|--------|--------|------|---------------------|
///   | 1     | 0      | 0      | 0    | 0.8500 (0.057)      |
class TablePrinter {
 public:
  /// Creates a printer with the given column headings.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells, long rows are
  /// truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table as markdown-flavoured ASCII.
  std::string ToString() const;

  /// Writes ToString() to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace doppler

#endif  // DOPPLER_UTIL_TABLE_PRINTER_H_
