#include "util/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace doppler {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Value follows its key; the key already placed the comma.
  }
  if (containers_.empty()) return;
  if (has_elements_.back() == '1') {
    out_ += ',';
  } else {
    has_elements_.back() = '1';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  containers_ += 'o';
  has_elements_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!containers_.empty() && containers_.back() == 'o');
  if (!containers_.empty()) {
    containers_.pop_back();
    has_elements_.pop_back();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  containers_ += 'a';
  has_elements_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!containers_.empty() && containers_.back() == 'a');
  if (!containers_.empty()) {
    containers_.pop_back();
    has_elements_.pop_back();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  assert(!containers_.empty() && containers_.back() == 'o' && !pending_key_);
  Comma();
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Comma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf.
    return *this;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  Comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

}  // namespace doppler
