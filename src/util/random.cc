#include "util/random.h"

#include <algorithm>
#include <cmath>

namespace doppler {

namespace {

// splitmix64: expands a single seed into well-distributed state words.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is invalid for xoshiro; splitmix cannot produce four
  // zero words from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double sigma) { return mean + sigma * Normal(); }

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  return Uniform() < std::clamp(p, 0.0, 1.0);
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double value = Normal(mean, std::sqrt(mean));
    return std::max(0, static_cast<int>(std::lround(value)));
  }
  const double limit = std::exp(-mean);
  double product = Uniform();
  int count = 0;
  while (product > limit) {
    product *= Uniform();
    ++count;
  }
  return count;
}

double Rng::Pareto(double xm, double alpha) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::Fork(std::uint64_t stream) {
  // Mix the current state with the stream id through splitmix so that forks
  // are independent of how much the parent has already been consumed.
  std::uint64_t mix = state_[0] ^ Rotl(state_[2], 31) ^ (stream * 0x9e3779b97f4a7c15ULL + 0x85ebca6bULL);
  return Rng(SplitMix64(mix));
}

}  // namespace doppler
