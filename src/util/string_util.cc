#include "util/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace doppler {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

std::string FormatDollars(double amount, int decimals) {
  std::string digits = FormatDouble(std::fabs(amount), decimals);
  // Insert thousands separators into the integer part.
  std::size_t dot = digits.find('.');
  std::size_t integer_end = dot == std::string::npos ? digits.size() : dot;
  std::string with_commas;
  for (std::size_t i = 0; i < integer_end; ++i) {
    if (i > 0 && (integer_end - i) % 3 == 0) with_commas.push_back(',');
    with_commas.push_back(digits[i]);
  }
  with_commas.append(digits.substr(integer_end));
  std::string result = amount < 0 ? "-$" : "$";
  result += with_commas;
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace doppler
