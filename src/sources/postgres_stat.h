#ifndef DOPPLER_SOURCES_POSTGRES_STAT_H_
#define DOPPLER_SOURCES_POSTGRES_STAT_H_

#include "sources/counter_mapping.h"

namespace doppler::sources {

/// Counter dialect of a PostgreSQL statistics export (paper §2 names
/// PostgreSQL as a generalisation target). Expected columns, derived from
/// pg_stat_* views sampled on an interval:
///
///   t_seconds           sample offset
///   cpu_cores           backend CPU usage, cores
///   blks_read_per_s     shared blocks read from disk per second (8 KiB
///                       blocks -> IOPS 1:1)
///   temp_blks_per_s     temp-file blocks written per second (also IO)
///   wal_mb_per_s        WAL generation, MB/s (-> log rate)
///   mem_resident_gb     resident set of the cluster, GB (-> memory)
///   blk_read_time_ms    mean block read latency, ms (-> io latency)
///   db_size_gb          database size, GB (-> storage)
CounterMapping PostgresStatMapping();

/// Parses a pg-stat-style CSV straight into a PerfTrace.
StatusOr<telemetry::PerfTrace> TraceFromPostgresCsv(const CsvTable& table);

}  // namespace doppler::sources

#endif  // DOPPLER_SOURCES_POSTGRES_STAT_H_
