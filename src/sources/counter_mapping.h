#ifndef DOPPLER_SOURCES_COUNTER_MAPPING_H_
#define DOPPLER_SOURCES_COUNTER_MAPPING_H_

#include <string>
#include <vector>

#include "catalog/resource.h"
#include "telemetry/perf_trace.h"
#include "util/csv.h"
#include "util/statusor.h"

namespace doppler::sources {

/// One foreign counter column feeding a Doppler dimension: the column is
/// multiplied by `unit_scale` and ADDED into the dimension (several
/// columns may fold into one dimension, e.g. physical reads + writes into
/// IOPS). Doppler itself only ever sees PerfTrace — this is the §2
/// extension point for "other database systems like Oracle and
/// PostgreSQL".
struct CounterRule {
  std::string column;
  catalog::ResourceDim dim;
  double unit_scale = 1.0;
};

/// A source system's counter dialect.
struct CounterMapping {
  std::string source_name;
  /// Name of the timestamp column (seconds since collection start).
  std::string time_column = "t_seconds";
  std::vector<CounterRule> rules;
};

/// Translates a foreign counter CSV into a PerfTrace: the cadence comes
/// from the first two timestamp rows; every rule's column is scaled and
/// accumulated into its dimension. Fails when the time column or any rule
/// column is missing, a number is malformed, or no rule matched.
StatusOr<telemetry::PerfTrace> TraceFromForeignCsv(
    const CsvTable& table, const CounterMapping& mapping);

}  // namespace doppler::sources

#endif  // DOPPLER_SOURCES_COUNTER_MAPPING_H_
