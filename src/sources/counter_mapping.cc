#include "sources/counter_mapping.h"

#include <cmath>
#include <cstdlib>
#include <map>

#include "util/string_util.h"

namespace doppler::sources {

namespace {

// Foreign exports carry physical counters, so a cell must be a finite
// number; "nan"/"inf" parse under strtod and are rejected here.
StatusOr<double> ParseNumber(const std::string& text, const std::string& where) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return InvalidArgumentError("not a number at " + where + ": '" + text +
                                "'");
  }
  if (!std::isfinite(value)) {
    return InvalidArgumentError("non-finite value at " + where + ": '" + text +
                                "'");
  }
  return value;
}

std::string CellContext(const std::string& source, std::size_t row,
                        const std::string& column) {
  return source + " data row " + std::to_string(row + 1) + ", column '" +
         column + "'";
}

}  // namespace

StatusOr<telemetry::PerfTrace> TraceFromForeignCsv(
    const CsvTable& table, const CounterMapping& mapping) {
  if (mapping.rules.empty()) {
    return InvalidArgumentError("counter mapping has no rules");
  }
  DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col,
                           table.ColumnIndex(mapping.time_column));
  if (table.num_rows() == 0) {
    return InvalidArgumentError(mapping.source_name + " export is empty");
  }

  // Every timestamp must increase (DMA default cadence for single-row
  // exports; otherwise the first delta).
  std::int64_t interval = telemetry::kDmaIntervalSeconds;
  double previous_t = 0.0;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    DOPPLER_ASSIGN_OR_RETURN(
        double t,
        ParseNumber(table.row(r)[time_col],
                    CellContext(mapping.source_name, r, mapping.time_column)));
    if (r > 0 && t <= previous_t) {
      return InvalidArgumentError(
          mapping.source_name + ": timestamps must increase (violated at " +
          CellContext(mapping.source_name, r, mapping.time_column) + ")");
    }
    if (r == 1) interval = static_cast<std::int64_t>(t - previous_t);
    previous_t = t;
  }

  // Accumulate rule columns into per-dimension series.
  std::map<catalog::ResourceDim, std::vector<double>> series;
  for (const CounterRule& rule : mapping.rules) {
    DOPPLER_ASSIGN_OR_RETURN(std::size_t column,
                             table.ColumnIndex(rule.column));
    auto& values = series[rule.dim];
    if (values.empty()) values.assign(table.num_rows(), 0.0);
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      DOPPLER_ASSIGN_OR_RETURN(
          double v, ParseNumber(table.row(r)[column],
                                CellContext(mapping.source_name, r,
                                            rule.column)));
      if (v < 0.0) {
        return InvalidArgumentError(
            "negative counter at " +
            CellContext(mapping.source_name, r, rule.column));
      }
      values[r] += v * rule.unit_scale;
    }
  }

  telemetry::PerfTrace trace(interval);
  trace.set_id(mapping.source_name);
  for (auto& [dim, values] : series) {
    DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dim, std::move(values)));
  }
  return trace;
}

}  // namespace doppler::sources
