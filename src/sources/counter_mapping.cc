#include "sources/counter_mapping.h"

#include <cstdlib>
#include <map>

#include "util/string_util.h"

namespace doppler::sources {

namespace {

StatusOr<double> ParseNumber(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || !Trim(end).empty()) {
    return InvalidArgumentError("not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

StatusOr<telemetry::PerfTrace> TraceFromForeignCsv(
    const CsvTable& table, const CounterMapping& mapping) {
  if (mapping.rules.empty()) {
    return InvalidArgumentError("counter mapping has no rules");
  }
  DOPPLER_ASSIGN_OR_RETURN(std::size_t time_col,
                           table.ColumnIndex(mapping.time_column));
  if (table.num_rows() == 0) {
    return InvalidArgumentError(mapping.source_name + " export is empty");
  }

  // Cadence from the first two rows (DMA default for single-row exports).
  std::int64_t interval = telemetry::kDmaIntervalSeconds;
  if (table.num_rows() >= 2) {
    DOPPLER_ASSIGN_OR_RETURN(double t0, ParseNumber(table.row(0)[time_col]));
    DOPPLER_ASSIGN_OR_RETURN(double t1, ParseNumber(table.row(1)[time_col]));
    const auto delta = static_cast<std::int64_t>(t1 - t0);
    if (delta <= 0) {
      return InvalidArgumentError(mapping.source_name +
                                  ": timestamps must increase");
    }
    interval = delta;
  }

  // Accumulate rule columns into per-dimension series.
  std::map<catalog::ResourceDim, std::vector<double>> series;
  for (const CounterRule& rule : mapping.rules) {
    DOPPLER_ASSIGN_OR_RETURN(std::size_t column,
                             table.ColumnIndex(rule.column));
    auto& values = series[rule.dim];
    if (values.empty()) values.assign(table.num_rows(), 0.0);
    for (std::size_t r = 0; r < table.num_rows(); ++r) {
      DOPPLER_ASSIGN_OR_RETURN(double v, ParseNumber(table.row(r)[column]));
      values[r] += v * rule.unit_scale;
    }
  }

  telemetry::PerfTrace trace(interval);
  trace.set_id(mapping.source_name);
  for (auto& [dim, values] : series) {
    DOPPLER_RETURN_IF_ERROR(trace.SetSeries(dim, std::move(values)));
  }
  return trace;
}

}  // namespace doppler::sources
