#ifndef DOPPLER_SOURCES_ORACLE_AWR_H_
#define DOPPLER_SOURCES_ORACLE_AWR_H_

#include "sources/counter_mapping.h"

namespace doppler::sources {

/// Counter dialect of an Oracle AWR-style export (paper §2: "Work is
/// ongoing to generalize the Doppler framework ... across other database
/// systems like Oracle"). Expected columns:
///
///   t_seconds            sample offset
///   cpu_per_s            DB CPU, CPU-seconds per second (-> vCores)
///   physical_reads_per_s physical read IO requests per second
///   physical_writes_per_s physical write IO requests per second
///   redo_mb_per_s        redo generation, MB/s (-> log rate)
///   sga_pga_gb           SGA + PGA allocated, GB (-> memory)
///   db_file_seq_read_ms  single-block read latency, ms (-> io latency)
///   db_size_gb           database size, GB (-> storage)
CounterMapping OracleAwrMapping();

/// Parses an AWR-style CSV straight into a PerfTrace.
StatusOr<telemetry::PerfTrace> TraceFromAwrCsv(const CsvTable& table);

}  // namespace doppler::sources

#endif  // DOPPLER_SOURCES_ORACLE_AWR_H_
