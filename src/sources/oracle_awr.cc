#include "sources/oracle_awr.h"

namespace doppler::sources {

namespace {
using catalog::ResourceDim;
}  // namespace

CounterMapping OracleAwrMapping() {
  CounterMapping mapping;
  mapping.source_name = "oracle-awr";
  mapping.rules = {
      {"cpu_per_s", ResourceDim::kCpu, 1.0},
      {"physical_reads_per_s", ResourceDim::kIops, 1.0},
      {"physical_writes_per_s", ResourceDim::kIops, 1.0},
      {"redo_mb_per_s", ResourceDim::kLogRateMbps, 1.0},
      {"sga_pga_gb", ResourceDim::kMemoryGb, 1.0},
      {"db_file_seq_read_ms", ResourceDim::kIoLatencyMs, 1.0},
      {"db_size_gb", ResourceDim::kStorageGb, 1.0},
  };
  return mapping;
}

StatusOr<telemetry::PerfTrace> TraceFromAwrCsv(const CsvTable& table) {
  return TraceFromForeignCsv(table, OracleAwrMapping());
}

}  // namespace doppler::sources
