#include "sources/postgres_stat.h"

namespace doppler::sources {

namespace {
using catalog::ResourceDim;
}  // namespace

CounterMapping PostgresStatMapping() {
  CounterMapping mapping;
  mapping.source_name = "postgres-stat";
  mapping.rules = {
      {"cpu_cores", ResourceDim::kCpu, 1.0},
      {"blks_read_per_s", ResourceDim::kIops, 1.0},
      {"temp_blks_per_s", ResourceDim::kIops, 1.0},
      {"wal_mb_per_s", ResourceDim::kLogRateMbps, 1.0},
      {"mem_resident_gb", ResourceDim::kMemoryGb, 1.0},
      {"blk_read_time_ms", ResourceDim::kIoLatencyMs, 1.0},
      {"db_size_gb", ResourceDim::kStorageGb, 1.0},
  };
  return mapping;
}

StatusOr<telemetry::PerfTrace> TraceFromPostgresCsv(const CsvTable& table) {
  return TraceFromForeignCsv(table, PostgresStatMapping());
}

}  // namespace doppler::sources
