#ifndef DOPPLER_EXEC_THREAD_POOL_H_
#define DOPPLER_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace doppler::exec {

/// Fixed-size worker pool with one shared bounded FIFO queue — deliberately
/// work-stealing-free so scheduling stays easy to reason about (and so the
/// determinism contract in DESIGN.md §7 is trivially upheld: tasks never
/// migrate, results are written to caller-owned slots by index).
///
/// Overflow policy: when the queue is full the submitting thread runs the
/// task inline ("caller runs"), and a thread blocked in ParallelFor keeps
/// draining queued tasks while it waits. Together these make nested use
/// safe: a worker that fans out sub-tasks can never deadlock — overflow
/// work runs on the submitter, queued work runs on whichever blocked
/// thread picks it up first.
///
/// Instrumentation: `exec.queue_depth` (gauge, current queued tasks) and
/// `exec.task_latency` (histogram, submit-to-completion seconds) in
/// obs::DefaultMetrics(); `exec.tasks_executed` counts completions and
/// `exec.tasks_inline` the caller-runs overflows.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). `queue_capacity`
  /// bounds the backlog; submissions beyond it run on the caller.
  explicit ThreadPool(int num_threads, std::size_t queue_capacity = 256);

  /// Drains the queue and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` and returns a future that becomes ready when it has
  /// run. When the queue is full, the task runs synchronously on the
  /// calling thread (the future is ready on return).
  std::future<void> Submit(std::function<void()> task);

  /// Admission-control variant: enqueues `task` only if the queue has
  /// room, and returns false — WITHOUT running or retaining the task —
  /// when it is full or the pool is shutting down. Never blocks and never
  /// runs the task on the caller, which is what a load-shedding server
  /// needs (the caller-runs overflow of Submit would turn overload into
  /// unbounded admission latency instead of a fast reject).
  bool TrySubmit(std::function<void()> task);

  /// Applies `fn(begin, end)` over [0, n) split into roughly
  /// 2x-threads chunks, the calling thread working alongside the pool
  /// (running its own chunk first, then draining queued tasks while it
  /// waits), and blocks until every chunk completed. Chunk boundaries
  /// depend only on `n` and the pool size — never on scheduling — so
  /// callers that write results by index get identical output at any
  /// thread count. The batch curve evaluator
  /// (ThrottlingEstimator::EstimateCurveProbabilities) fans its candidate
  /// set out through here; any state the workers share (e.g. the
  /// exceedance-index memo) must keep both results AND counter charges
  /// schedule-independent to uphold the DESIGN.md §7 determinism contract.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Tasks currently waiting in the queue (diagnostic; racy by nature).
  std::size_t QueueDepth() const;

  /// std::thread::hardware_concurrency with a >= 1 floor.
  static int HardwareConcurrency();

 private:
  struct QueuedTask {
    std::packaged_task<void()> work;
    std::int64_t enqueue_ns = 0;
  };

  void WorkerLoop();
  bool RunOneQueuedTask();
  static void RunTask(QueuedTask task, bool inline_run);

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::deque<QueuedTask> queue_;
  std::size_t queue_capacity_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace doppler::exec

#endif  // DOPPLER_EXEC_THREAD_POOL_H_
