#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace doppler::exec {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* const kGauge =
      obs::DefaultMetrics().GetGauge("exec.queue_depth");
  return kGauge;
}

obs::Histogram* TaskLatencyHistogram() {
  static obs::Histogram* const kHistogram =
      obs::DefaultMetrics().GetHistogram("exec.task_latency");
  return kHistogram;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTask(QueuedTask task, bool inline_run) {
  static obs::Counter* const kExecuted =
      obs::DefaultMetrics().GetCounter("exec.tasks_executed");
  static obs::Counter* const kInline =
      obs::DefaultMetrics().GetCounter("exec.tasks_inline");
  // Queue wait (enqueue to pickup) before the task runs; exec.task_latency
  // below is the full submit-to-completion span, so wait = latency - work.
  static obs::Histogram* const kQueueWait =
      obs::DefaultMetrics().GetHistogram("exec.queue_wait");
  kQueueWait->Observe(static_cast<double>(NowNs() - task.enqueue_ns) * 1e-9);
  task.work();
  kExecuted->Increment();
  if (inline_run) kInline->Increment();
  TaskLatencyHistogram()->Observe(
      static_cast<double>(NowNs() - task.enqueue_ns) * 1e-9);
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued;
  queued.work = std::packaged_task<void()>(std::move(task));
  queued.enqueue_ns = NowNs();
  std::future<void> future = queued.work.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!shutting_down_ && queue_.size() < queue_capacity_) {
      queue_.push_back(std::move(queued));
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
      lock.unlock();
      task_ready_.notify_one();
      return future;
    }
  }
  // Queue full (or pool tearing down): caller runs. This is the overflow
  // policy that makes nested fan-out deadlock-free.
  RunTask(std::move(queued), /*inline_run=*/true);
  return future;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  QueuedTask queued;
  queued.work = std::packaged_task<void()>(std::move(task));
  queued.enqueue_ns = NowNs();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutting_down_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(std::move(queued));
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down with nothing left.
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    RunTask(std::move(task), /*inline_run=*/false);
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk count depends only on n and the pool size, never on scheduling:
  // 2x threads balances load without hurting determinism (chunks are
  // identified by their [begin, end) range, not by which worker ran them).
  const std::size_t max_chunks =
      static_cast<std::size_t>(num_threads()) * 2;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, max_chunks));
  const std::size_t stride = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += stride) {
    const std::size_t end = std::min(n, begin + stride);
    if (end == n) {
      // The calling thread takes the final chunk instead of idling on the
      // futures; with a single chunk this degenerates to a plain loop.
      fn(begin, end);
      break;
    }
    pending.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Help-drain while waiting: a blocked waiter keeps executing queued tasks
  // (its own chunks or anyone else's). Without this, nested ParallelFor can
  // park every worker on futures of tasks still sitting in a non-full queue.
  for (std::future<void>& future : pending) {
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!RunOneQueuedTask()) {
        future.wait_for(std::chrono::milliseconds(1));
      }
    }
    future.get();
  }
}

bool ThreadPool::RunOneQueuedTask() {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  }
  RunTask(std::move(task), /*inline_run=*/false);
  return true;
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int ThreadPool::HardwareConcurrency() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

}  // namespace doppler::exec
