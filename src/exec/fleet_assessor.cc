#include "exec/fleet_assessor.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace doppler::exec {

FleetAssessor::FleetAssessor(const dma::SkuRecommendationPipeline* pipeline,
                             int jobs)
    : pipeline_(pipeline), jobs_(jobs < 1 ? 1 : jobs) {
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
}

std::vector<StatusOr<dma::AssessmentOutcome>> FleetAssessor::AssessAll(
    const std::vector<dma::AssessmentRequest>& requests) const {
  return AssessAll(requests, dma::kAllStages);
}

std::vector<StatusOr<dma::AssessmentOutcome>> FleetAssessor::AssessAll(
    const std::vector<dma::AssessmentRequest>& requests,
    dma::StageMask stages) const {
  DOPPLER_TRACE_SPAN("exec.fleet_assess");
  static obs::Counter* const kFleetRequests =
      obs::DefaultMetrics().GetCounter("exec.fleet_requests");
  kFleetRequests->Increment(requests.size());

  // Pre-sized error slots: each worker overwrites exactly its own index,
  // so the batch result is request-ordered regardless of completion order.
  std::vector<StatusOr<dma::AssessmentOutcome>> results;
  results.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results.emplace_back(InternalError("request not assessed"));
  }
  const auto assess_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = pipeline_->AssessStages(requests[i], stages);
    }
  };
  if (pool_ != nullptr && requests.size() > 1) {
    pool_->ParallelFor(requests.size(), assess_range);
  } else {
    assess_range(0, requests.size());
  }
  return results;
}

}  // namespace doppler::exec
