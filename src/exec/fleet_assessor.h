#ifndef DOPPLER_EXEC_FLEET_ASSESSOR_H_
#define DOPPLER_EXEC_FLEET_ASSESSOR_H_

#include <memory>
#include <vector>

#include "dma/pipeline.h"
#include "exec/thread_pool.h"
#include "util/statusor.h"

namespace doppler::exec {

/// Fans a batch of assessment requests across a request-level worker pool
/// (paper §4: DMA assesses whole estates, one SKU recommendation per
/// database server). Each request lands in its own pre-sized result slot,
/// so the output vector is in request order and byte-identical to running
/// the requests serially — `jobs` changes wall-clock only.
///
/// The request-level pool is separate from the pipeline's SKU-scoring pool
/// (SkuRecommendationPipeline::executor()), so a worker blocked inside
/// Assess never waits on its own pool; combined with the pools'
/// caller-runs overflow policy this makes the two-level fan-out
/// deadlock-free.
class FleetAssessor {
 public:
  /// Borrows `pipeline` (must outlive the assessor). `jobs <= 1` assesses
  /// inline on the calling thread; otherwise a dedicated pool of `jobs`
  /// workers is spun up for the assessor's lifetime.
  FleetAssessor(const dma::SkuRecommendationPipeline* pipeline, int jobs);

  /// Assesses every request; result i corresponds to requests[i]. Per-
  /// request failures are carried as error slots, never thrown across the
  /// batch: one bad trace does not sink the fleet.
  std::vector<StatusOr<dma::AssessmentOutcome>> AssessAll(
      const std::vector<dma::AssessmentRequest>& requests) const;

  /// Same fan-out, but runs only the masked pipeline stages per request
  /// (dma::StageMask): a backtest sweep can stop after the recommend
  /// stage, a quality audit after the quality stage, without paying for
  /// the rest of the monolith.
  std::vector<StatusOr<dma::AssessmentOutcome>> AssessAll(
      const std::vector<dma::AssessmentRequest>& requests,
      dma::StageMask stages) const;

  int jobs() const { return jobs_; }

 private:
  const dma::SkuRecommendationPipeline* pipeline_;
  int jobs_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace doppler::exec

#endif  // DOPPLER_EXEC_FLEET_ASSESSOR_H_
