// Figure 6: "The ECDF and time series associated with various performance
// dimensions."
//
// The paper uses this figure to motivate the AUC profiling strategies:
// counters with transient spiky usage have early-rising ECDFs (high AUC),
// steadily-used counters rise late (low AUC). We generate one dimension of
// each character, plot both views, and report the separation every
// summarisation strategy achieves.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/negotiability.h"
#include "stats/auc.h"
#include "stats/ecdf.h"
#include "util/ascii_plot.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::ResourceDim;

int main() {
  bench::Banner(
      "Figure 6 - ECDF and raw time series per usage character",
      "higher AUC values describe workloads with transient spiky usage");

  Rng rng(606);
  workload::WorkloadSpec spec;
  spec.name = "fig6";
  workload::DimensionSpec spiky =
      workload::DimensionSpec::Spiky(10.0, 70.0, 1.2, 30.0);
  spiky.base_amplitude = 8.0;
  spec.dims[ResourceDim::kCpu] = spiky;  // Spiky character.
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(55.0, 30.0);  // Sustained.
  const telemetry::PerfTrace trace = bench::Unwrap(
      workload::GenerateTrace(spec, 14.0, &rng), "trace generation");

  struct View {
    const char* label;
    ResourceDim dim;
  };
  const View views[] = {{"transient/spiky counter", ResourceDim::kCpu},
                        {"sustained periodic counter",
                         ResourceDim::kMemoryGb}};

  for (const View& view : views) {
    const std::vector<double>& series = trace.Values(view.dim);
    PlotOptions raw;
    raw.title = std::string("(b) raw time series - ") + view.label;
    raw.height = 9;
    std::cout << LinePlot(series, raw);

    // ECDF: evaluate on a grid for plotting.
    stats::Ecdf ecdf(series);
    const double lo = ecdf.sorted_sample().front();
    const double hi = ecdf.sorted_sample().back();
    std::vector<double> xs, ys;
    for (int i = 0; i <= 60; ++i) {
      const double x = lo + (hi - lo) * i / 60.0;
      xs.push_back(x);
      ys.push_back(ecdf.Evaluate(x));
    }
    PlotOptions cdf;
    cdf.title = std::string("(a) ECDF - ") + view.label;
    cdf.height = 9;
    std::cout << ScatterPlot(xs, ys, cdf) << "\n";
  }

  TablePrinter table({"Summary statistic", "Spiky counter",
                      "Sustained counter", "Spiky > sustained?"});
  auto row = [&](const char* name, double spiky_score, double steady_score) {
    table.AddRow({name, FormatDouble(spiky_score, 3),
                  FormatDouble(steady_score, 3),
                  spiky_score > steady_score ? "yes" : "NO"});
  };
  const std::vector<double>& s = trace.Values(ResourceDim::kCpu);
  const std::vector<double>& m = trace.Values(ResourceDim::kMemoryGb);
  row("MinMax Scaler AUC", stats::MinMaxScalerAuc(s), stats::MinMaxScalerAuc(m));
  row("Max Scaler AUC", stats::MaxScalerAuc(s), stats::MaxScalerAuc(m));
  row("1 - spike-duration fraction (thresholding)",
      1.0 - core::ThresholdingStrategy::SpikeDurationFraction(s),
      1.0 - core::ThresholdingStrategy::SpikeDurationFraction(m));
  table.Print(std::cout);
  return 0;
}
