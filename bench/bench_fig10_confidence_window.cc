// Figure 10: "Confidence score distribution for the SKU recommended based
// on 30-day data."
//
// The paper varies the bootstrap window size over customers with >= 30
// days of telemetry and finds that confidence shifts up once windows pass
// one week — the basis for DMA's "run the tool for at least seven days"
// guidance. We reproduce the sweep over a synthetic fleet.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/confidence.h"
#include "stats/descriptive.h"
#include "util/ascii_plot.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Figure 10 - confidence vs bootstrap window size",
      "scores shift up past the 1-week window; 1 week is the minimum "
      "collection period for a reasonable recommendation");

  auto engine = bench::MakeEngine(catalog::Deployment::kSqlDb);
  core::RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return engine->recommender->RecommendDb(t);
  };

  // A fleet with 30 days of telemetry (the paper's filter).
  workload::PopulationOptions population;
  population.num_customers = 40;
  population.duration_days = 30.0;
  population.seed = 1010;
  const std::vector<workload::SyntheticCustomer> fleet = bench::Unwrap(
      workload::GeneratePopulation(population), "population generation");

  const double windows_days[] = {1.0, 3.0, 7.0, 14.0, 21.0};
  TablePrinter table({"Bootstrap window", "Mean confidence", "P25", "Median",
                      "Share >= 90%"});
  std::vector<double> means;
  for (double window : windows_days) {
    std::vector<double> scores;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      core::ConfidenceOptions options;
      options.runs = 15;
      options.window_days = window;
      Rng rng(2000 + i);
      StatusOr<core::ConfidenceResult> result =
          core::ScoreConfidence(fleet[i].trace, recommend, options, &rng);
      if (result.ok()) scores.push_back(result->score);
    }
    double high = 0.0;
    for (double s : scores) high += s >= 0.9;
    high /= static_cast<double>(scores.size());
    means.push_back(stats::Mean(scores));
    table.AddRow({FormatDouble(window, 0) + " day(s)",
                  FormatPercent(stats::Mean(scores), 1),
                  FormatPercent(stats::Quantile(scores, 0.25), 1),
                  FormatPercent(stats::Median(scores), 1),
                  FormatPercent(high, 1)});
  }
  table.Print(std::cout);

  PlotOptions plot;
  plot.title = "\nmean confidence by bootstrap window (1, 3, 7, 14, 21 days)";
  plot.height = 10;
  plot.width = 50;
  std::cout << LinePlot(means, plot);

  std::printf(
      "\nShape check: confidence at the 7-day window exceeds the 1-day "
      "window by %.1f points (paper: scores 'shift up as the time window "
      "... increases past the 1-week interval').\n",
      (means[2] - means[0]) * 100.0);
  return 0;
}
