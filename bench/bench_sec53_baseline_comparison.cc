// Section 5.3: "Data from On-Prem Workloads: Comparison with Baseline
// Strategy."
//
// The paper examined 10 on-prem instances where Doppler out-recommends the
// legacy baseline: in 80% of them Doppler's SKU actually meets the
// workload's latency requirement while the baseline specifies a lower-end
// SKU (the deployed baseline collapses the classic counters — CPU, memory,
// IOPS — and does not reason about latency); in the remaining cases the
// baseline returns NO recommendation because no SKU meets 100% of every
// scalar. We reproduce both failure modes and validate the picks by
// replaying each workload on both recommended SKUs.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/replayer.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::Deployment;
using catalog::ResourceDim;

namespace {

// An on-prem instance whose storage serves IO at low latency (the app is
// tuned for it), plus ordinary CPU/memory/IO demand.
telemetry::PerfTrace LatencyBoundInstance(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "latency-bound-" + std::to_string(seed);
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(rng.Uniform(1.5, 3.0), 1.5);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(rng.Uniform(8.0, 16.0), 0.03);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(rng.Uniform(800.0, 1500.0), 600.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(rng.Uniform(1.5, 2.8), 0.05);
  return bench::Unwrap(workload::GenerateTrace(spec, 7.0, &rng), "trace");
}

// An instance with sustained bursts above every SKU's log-rate cap: the
// baseline's 95th-percentile scalar is unsatisfiable.
telemetry::PerfTrace UnsatisfiableInstance(std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "bursty-log-" + std::to_string(seed);
  spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(2.0, 1.0);
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(10.0, 0.03);
  // Bursts reach ~200 MB/s for hours at a time; the largest DB cap is 96.
  spec.dims[ResourceDim::kLogRateMbps] =
      workload::DimensionSpec::Bursty(20.0, 190.0, 4.0, 180.0, 0.05);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  return bench::Unwrap(workload::GenerateTrace(spec, 7.0, &rng), "trace");
}

// The deployed baseline's view: the classic counters only.
telemetry::PerfTrace BaselineView(const telemetry::PerfTrace& trace) {
  telemetry::PerfTrace view(trace.interval_seconds());
  view.set_id(trace.id());
  for (ResourceDim dim : trace.PresentDims()) {
    if (dim == ResourceDim::kIoLatencyMs) continue;
    bench::Unwrap(view.SetSeries(dim, trace.Values(dim)), "view");
  }
  return view;
}

}  // namespace

int main() {
  bench::Banner(
      "Section 5.3 - Doppler vs baseline on on-prem workloads",
      "10 instances: 80% Doppler meets the latency requirement where the "
      "baseline picks a lower-end SKU; for the rest the baseline returns "
      "no SKU at all");

  auto engine = bench::MakeEngine(Deployment::kSqlDb);
  const core::BaselineRecommender baseline(engine->compiled.get(), 0.95);

  TablePrinter table({"Instance", "Doppler SKU", "Doppler meets latency?",
                      "Baseline SKU", "Baseline meets latency?"});
  int doppler_meets = 0;
  int baseline_meets = 0;
  int baseline_none = 0;
  int total = 0;

  std::vector<telemetry::PerfTrace> instances;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    instances.push_back(LatencyBoundInstance(5300 + seed));
  }
  instances.push_back(UnsatisfiableInstance(5391));
  instances.push_back(UnsatisfiableInstance(5392));

  for (const telemetry::PerfTrace& trace : instances) {
    ++total;
    const core::Recommendation doppler = bench::Unwrap(
        engine->recommender->RecommendDb(trace), "doppler recommendation");
    // Validate by replaying the workload's own demand on each SKU and
    // checking the latency dimension.
    const sim::ReplayResult doppler_replay =
        bench::Unwrap(sim::ReplayOnSku(trace, doppler.sku), "replay");
    const bool doppler_latency_ok =
        doppler_replay.report.FractionFor(ResourceDim::kIoLatencyMs) < 0.05;
    doppler_meets += doppler_latency_ok;

    StatusOr<core::Recommendation> base =
        baseline.Recommend(BaselineView(trace), Deployment::kSqlDb);
    std::string baseline_sku = "(no SKU fits)";
    std::string baseline_ok = "-";
    if (base.ok()) {
      const sim::ReplayResult base_replay =
          bench::Unwrap(sim::ReplayOnSku(trace, base->sku), "replay");
      const bool ok =
          base_replay.report.FractionFor(ResourceDim::kIoLatencyMs) < 0.05;
      baseline_meets += ok;
      baseline_sku = base->sku.DisplayName();
      baseline_ok = ok ? "yes" : "NO";
    } else {
      ++baseline_none;
    }
    table.AddRow({trace.id(), doppler.sku.DisplayName(),
                  doppler_latency_ok ? "yes" : "NO", baseline_sku,
                  baseline_ok});
  }
  table.Print(std::cout);

  std::printf(
      "\nDoppler meets the latency requirement on %d/%d instances "
      "(paper: 80%%).\n"
      "Baseline meets it on %d/%d, and returns NO recommendation for %d "
      "instances (paper: 'the baseline strategy actually fails to provide "
      "any SKU recommendation').\n",
      doppler_meets, total, baseline_meets, total - baseline_none,
      baseline_none);
  return 0;
}
