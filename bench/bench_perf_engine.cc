// Engine micro-benchmarks (google-benchmark), backing the paper's
// scalability claims:
//
//  - §3.2: the non-parametric joint-frequency estimator is what makes
//    curve generation over a full catalog practical; the Gaussian-KDE
//    alternative "can do a sufficient job ... but the time it takes to do
//    so is impractical".
//  - §3.1: "Make sure the solution can scale" — end-to-end assessment
//    latency must support hundreds of requests per day on commodity
//    hardware.

#include <array>
#include <cstdint>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "catalog/compiled_catalog.h"
#include "catalog/target.h"
#include "core/negotiability.h"
#include "core/price_performance.h"
#include "core/recommender.h"
#include "core/throttling.h"
#include "dma/pipeline.h"
#include "dma/preprocess.h"
#include "exec/fleet_assessor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/assessment_service.h"
#include "serve/snapshot_registry.h"
#include "stats/stl.h"
#include "stream/stream_index.h"
#include "stream/stream_stats.h"
#include "stream/streaming_trace.h"
#include "util/aligned.h"
#include "util/deadline.h"
#include "util/kernels/kernels.h"
#include "util/random.h"
#include "workload/generator.h"
#include "workload/population.h"

namespace {

using namespace doppler;
using catalog::ResourceDim;

// The evaluation-cost counters the bench-regression gate compares
// (tools/check.sh --bench vs the committed BENCH_pipeline.json). Counts
// are exact functions of (trace, catalog) — unlike wall time they are
// stable on the 1-CPU container, so regressions in the throttling-kernel
// work done per curve fail deterministically.
constexpr const char* kCostCounters[] = {
    "ppm.samples_scanned",
    "ppm.index_hits",
    "ppm.index_misses",
    "ppm.index_union_words",
    "stream.rows_patched",
    "stream.index_hits",
    "stream.index_misses",
};
constexpr std::size_t kNumCostCounters = std::size(kCostCounters);

std::array<std::uint64_t, kNumCostCounters> SnapshotCostCounters() {
  std::array<std::uint64_t, kNumCostCounters> snapshot;
  for (std::size_t i = 0; i < kNumCostCounters; ++i) {
    snapshot[i] = obs::DefaultMetrics().GetCounter(kCostCounters[i])->Value();
  }
  return snapshot;
}

// Attaches the per-iteration counter deltas to the benchmark result, so
// the JSON export carries e.g. "ppm.samples_scanned" per assessment.
void ReportCostCounters(
    benchmark::State& state,
    const std::array<std::uint64_t, kNumCostCounters>& before) {
  const std::array<std::uint64_t, kNumCostCounters> after =
      SnapshotCostCounters();
  for (std::size_t i = 0; i < kNumCostCounters; ++i) {
    state.counters[kCostCounters[i]] = benchmark::Counter(
        static_cast<double>(after[i] - before[i]) /
        static_cast<double>(state.iterations()));
  }
}

telemetry::PerfTrace MakeTrace(int days, std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = "bench";
  workload::DimensionSpec cpu =
      workload::DimensionSpec::Spiky(3.0, 8.0, 1.0, 30.0);
  cpu.base_amplitude = 3.0;
  spec.dims[ResourceDim::kCpu] = cpu;
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::DailyPeriodic(18.0, 10.0);
  spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(1800.0, 1200.0);
  spec.dims[ResourceDim::kLogRateMbps] =
      workload::DimensionSpec::DailyPeriodic(5.0, 3.0);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(6.5, 0.03);
  StatusOr<telemetry::PerfTrace> trace =
      workload::GenerateTrace(spec, days, &rng);
  if (!trace.ok()) std::abort();
  return *std::move(trace);
}

const catalog::SkuCatalog& Catalog() {
  static const auto* const kCatalog =
      new catalog::SkuCatalog(catalog::BuildAzureLikeCatalog());
  return *kCatalog;
}

const catalog::DefaultPricing& Pricing() {
  static const auto* const kPricing = new catalog::DefaultPricing();
  return *kPricing;
}

// The shared compiled snapshot the curve/recommender benches read — one
// compile per process, like the pipeline does.
const catalog::CompiledCatalog& Compiled() {
  static const auto* const kCompiled = new catalog::CompiledCatalog(
      catalog::CompiledCatalog::Compile(Catalog(), &Pricing()));
  return *kCompiled;
}

const core::GroupModel& OfflineModel() {
  static const core::GroupModel* const kModel = [] {
    StatusOr<core::GroupModel> model = dma::FitGroupModelOffline(
        Catalog(), catalog::DefaultPricing(), core::NonParametricEstimator(),
        catalog::Deployment::kSqlDb, 60, 5);
    if (!model.ok()) std::abort();
    return new core::GroupModel(*std::move(model));
  }();
  return *kModel;
}

// One pipeline per thread-count arg; benchmarks register serially so a
// plain map needs no locking.
const dma::SkuRecommendationPipeline& PipelineWithThreads(int num_threads) {
  static auto* const kPipelines =
      new std::map<int, std::unique_ptr<dma::SkuRecommendationPipeline>>();
  auto it = kPipelines->find(num_threads);
  if (it == kPipelines->end()) {
    dma::SkuRecommendationPipeline::Config config;
    config.num_threads = num_threads;
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(
            {catalog::SkuCatalog(Catalog()), core::GroupModel(OfflineModel())},
            config);
    if (!pipeline.ok()) std::abort();
    it = kPipelines
             ->emplace(num_threads,
                       std::make_unique<dma::SkuRecommendationPipeline>(
                           *std::move(pipeline)))
             .first;
  }
  return *it->second;
}

// ---- Throttling probability: non-parametric vs KDE, per SKU.

void BM_ThrottlingNonParametric(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 1);
  const catalog::Sku sku = Catalog().skus()[40];
  const core::NonParametricEstimator estimator;
  const catalog::ResourceVector caps = sku.Capacities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Probability(trace, caps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.num_samples()));
}
BENCHMARK(BM_ThrottlingNonParametric)->Arg(7)->Arg(14)->Arg(30);

void BM_ThrottlingKde(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 1);
  const catalog::Sku sku = Catalog().skus()[40];
  const core::KdeEstimator estimator;
  const catalog::ResourceVector caps = sku.Capacities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Probability(trace, caps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.num_samples()));
}
BENCHMARK(BM_ThrottlingKde)->Arg(7)->Arg(14)->Arg(30);

void BM_ThrottlingCopula(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 1);
  const catalog::Sku sku = Catalog().skus()[40];
  const core::GaussianCopulaEstimator estimator;
  const catalog::ResourceVector caps = sku.Capacities();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.Probability(trace, caps));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.num_samples()));
}
BENCHMARK(BM_ThrottlingCopula)->Arg(7)->Arg(14)->Arg(30);

// ---- Full price-performance curve over the whole catalog.

template <typename Estimator>
void CurveOverCatalog(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 2);
  const Estimator estimator;
  const catalog::CompiledView candidates =
      Compiled().ForDeployment(catalog::Deployment::kSqlDb).view();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::PricePerformanceCurve::Build(
        trace, candidates, Compiled().pricing(), estimator));
  }
  state.SetLabel(std::to_string(candidates.size()) + " SKUs");
}

void BM_CurveNonParametric(benchmark::State& state) {
  CurveOverCatalog<core::NonParametricEstimator>(state);
}
BENCHMARK(BM_CurveNonParametric)->Arg(7)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_CurveKde(benchmark::State& state) {
  CurveOverCatalog<core::KdeEstimator>(state);
}
BENCHMARK(BM_CurveKde)->Arg(7)->Arg(30)->Unit(benchmark::kMillisecond);

// ---- Amortized exceedance index (DESIGN.md §9): the batch curve
// evaluator vs the per-SKU columnar scan it replaced, over the full DB
// catalog. Same probabilities bit for bit; the counters quantify the work
// collapse — the scan charges ppm.samples_scanned per column visited per
// candidate, the index only per distinct (dimension, capacity) bitset it
// materialises, then answers every candidate by word-OR + popcount
// (ppm.index_union_words).

std::vector<catalog::ResourceVector> CatalogCapacities() {
  std::vector<catalog::ResourceVector> capacities;
  for (const catalog::Sku& sku :
       Catalog().ForDeployment(catalog::Deployment::kSqlDb)) {
    capacities.push_back(sku.Capacities());
  }
  return capacities;
}

void BM_ExceedanceIndexBatch(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 2);
  const core::NonParametricEstimator estimator;
  const std::vector<catalog::ResourceVector> capacities = CatalogCapacities();
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    StatusOr<std::vector<double>> probabilities =
        estimator.EstimateCurveProbabilities(trace, capacities);
    if (!probabilities.ok()) std::abort();
    benchmark::DoNotOptimize(probabilities);
  }
  ReportCostCounters(state, before);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(capacities.size()));
  state.SetLabel(std::to_string(capacities.size()) + " SKUs, memoized bitsets");
}
BENCHMARK(BM_ExceedanceIndexBatch)->Arg(7)->Arg(30)->Unit(benchmark::kMicrosecond);

void BM_ExceedanceIndexScalarScan(benchmark::State& state) {
  const telemetry::PerfTrace trace =
      MakeTrace(static_cast<int>(state.range(0)), 2);
  const core::NonParametricEstimator estimator;
  const std::vector<catalog::ResourceVector> capacities = CatalogCapacities();
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    for (const catalog::ResourceVector& candidate : capacities) {
      StatusOr<double> probability = estimator.Probability(trace, candidate);
      if (!probability.ok()) std::abort();
      benchmark::DoNotOptimize(probability);
    }
  }
  ReportCostCounters(state, before);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(capacities.size()));
  state.SetLabel(std::to_string(capacities.size()) +
                 " SKUs, per-candidate column scan");
}
BENCHMARK(BM_ExceedanceIndexScalarScan)
    ->Arg(7)
    ->Arg(30)
    ->Unit(benchmark::kMicrosecond);

// ---- Kernel-layer microbenches (DESIGN.md §15): the dispatched SIMD
// variant against its forced-scalar twin, same data, same process. The
// bench gate (tools/check.sh --bench) locks the union pair's wall-time
// ratio via bench_check.py --speedup — a within-run ratio, so it holds on
// machines where absolute times do not.

// The best non-scalar table, or nullptr on hosts without one.
const kernels::KernelOps* SimdKernels() {
  const kernels::KernelOps& best = kernels::SelectKernels(nullptr);
  return std::string(best.name) == "scalar" ? nullptr : &best;
}

void RunUnionKernelBench(benchmark::State& state,
                         const kernels::KernelOps& ops) {
  const std::size_t num_words = static_cast<std::size_t>(state.range(0));
  // Several sparse sets (3-AND thins bits to ~12%) so the union grows
  // without saturating: the kernel sees fresh bits on every pass, like a
  // dense multi-dimension curve evaluation.
  constexpr std::size_t kNumSets = 6;
  Rng rng(11);
  std::vector<AlignedVector<std::uint64_t>> sets(
      kNumSets, AlignedVector<std::uint64_t>(num_words));
  for (auto& set : sets) {
    for (auto& word : set) {
      word = rng.NextUint64() & rng.NextUint64() & rng.NextUint64();
    }
  }
  AlignedVector<std::uint64_t> acc(num_words);
  for (auto _ : state) {
    std::fill(acc.begin(), acc.end(), 0);
    std::size_t count = 0;
    for (const auto& set : sets) {
      count += ops.union_count(acc.data(), set.data(), num_words);
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(kNumSets * num_words * sizeof(std::uint64_t)));
  state.SetLabel(ops.name);
}

void BM_UnionKernelScalar(benchmark::State& state) {
  RunUnionKernelBench(state,
                      *kernels::KernelOpsFor(kernels::KernelIsa::kScalar));
}
BENCHMARK(BM_UnionKernelScalar)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_UnionKernelSimd(benchmark::State& state) {
  const kernels::KernelOps* ops = SimdKernels();
  if (ops == nullptr) {
    state.SkipWithError("no SIMD kernel variant on this host");
    return;
  }
  RunUnionKernelBench(state, *ops);
}
BENCHMARK(BM_UnionKernelSimd)->Arg(4096)->Unit(benchmark::kMicrosecond);

void RunKdeBatchBench(benchmark::State& state,
                      const kernels::KernelOps& ops) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  AlignedVector<double> sample(n);
  for (auto& v : sample) v = rng.Normal(50.0, 12.0);
  double x = 30.0;
  for (auto _ : state) {
    // Sweep the query point so the transcendental inputs vary.
    x = x < 70.0 ? x + 0.25 : 30.0;
    const double cdf = ops.kde_cdf_sum(sample.data(), n, x, 3.5);
    const double density = ops.kde_density_sum(sample.data(), n, x, 3.5);
    benchmark::DoNotOptimize(cdf);
    benchmark::DoNotOptimize(density);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(ops.name);
}

void BM_KdeBatchScalar(benchmark::State& state) {
  RunKdeBatchBench(state,
                   *kernels::KernelOpsFor(kernels::KernelIsa::kScalar));
}
BENCHMARK(BM_KdeBatchScalar)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_KdeBatchSimd(benchmark::State& state) {
  const kernels::KernelOps* ops = SimdKernels();
  if (ops == nullptr) {
    state.SkipWithError("no SIMD kernel variant on this host");
    return;
  }
  RunKdeBatchBench(state, *ops);
}
BENCHMARK(BM_KdeBatchSimd)->Arg(4096)->Unit(benchmark::kMicrosecond);

// ---- Negotiability strategies (the Table 4 cost axis).

void BM_StrategyThresholding(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(14, 3);
  const core::ThresholdingStrategy strategy;
  const std::vector<ResourceDim> dims =
      workload::ProfilingDims(catalog::Deployment::kSqlDb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Evaluate(trace, dims));
  }
}
BENCHMARK(BM_StrategyThresholding);

void BM_StrategyMinMaxAuc(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(14, 3);
  const core::MinMaxAucStrategy strategy;
  const std::vector<ResourceDim> dims =
      workload::ProfilingDims(catalog::Deployment::kSqlDb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Evaluate(trace, dims));
  }
}
BENCHMARK(BM_StrategyMinMaxAuc);

void BM_StrategyStl(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(14, 3);
  const core::StlVarianceStrategy strategy;
  const std::vector<ResourceDim> dims =
      workload::ProfilingDims(catalog::Deployment::kSqlDb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Evaluate(trace, dims));
  }
}
BENCHMARK(BM_StrategyStl)->Unit(benchmark::kMillisecond);

// ---- End-to-end elastic recommendation (pipeline-equivalent path).

void BM_EndToEndRecommendation(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(14, 4);
  const core::NonParametricEstimator estimator;
  const core::CustomerProfiler profiler(
      std::make_shared<core::ThresholdingStrategy>(),
      workload::ProfilingDims(catalog::Deployment::kSqlDb));
  const core::ElasticRecommender recommender(&Compiled(), &estimator,
                                             &profiler, &OfflineModel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(recommender.RecommendDb(trace));
  }
  state.SetLabel("14-day trace, full DB catalog");
}
BENCHMARK(BM_EndToEndRecommendation)->Unit(benchmark::kMillisecond);

// ---- Full pipeline assessment with observability on/off and the SKU
// curve fan-out at 1/2/8 threads.
//
// Args are {tracing, threads}. tracing=0 runs with trace buffering
// disabled (the production default: spans still feed latency histograms,
// counters still tick), tracing=1 with the trace buffer enabled;
// comparing the two quantifies the instrumentation overhead (acceptance
// bar <2% with export disabled). The threads axis exercises the exec
// layer's per-SKU parallel curve build — the report is byte-identical at
// every setting, only the wall time may move.

void BM_PipelineAssess(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  const dma::SkuRecommendationPipeline& pipeline = PipelineWithThreads(threads);
  obs::SetTracingEnabled(tracing);
  obs::ClearTraceBuffer();
  dma::AssessmentRequest request;
  request.customer_id = "bench";
  request.target = catalog::Deployment::kSqlDb;
  request.database_traces = {MakeTrace(7, 5)};
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    StatusOr<dma::AssessmentOutcome> outcome = pipeline.Assess(request);
    benchmark::DoNotOptimize(outcome);
    if (!outcome.ok()) std::abort();
  }
  ReportCostCounters(state, before);
  obs::SetTracingEnabled(false);
  // Surface the span-derived per-stage breakdown next to the timing.
  for (const char* stage :
       {"pipeline.preprocess", "pipeline.quality", "pipeline.recommend",
        "pipeline.baseline"}) {
    const obs::Histogram* latency =
        obs::DefaultMetrics().FindHistogram(std::string("latency.") + stage);
    if (latency != nullptr && latency->Count() > 0) {
      state.counters[stage] = benchmark::Counter(
          latency->Sum() / static_cast<double>(latency->Count()));
    }
  }
  obs::ClearTraceBuffer();
  state.SetLabel(std::string(tracing ? "trace buffer on" : "trace buffer off") +
                 ", " + std::to_string(threads) + " threads");
}
BENCHMARK(BM_PipelineAssess)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 2})
    ->Args({0, 8})
    ->Unit(benchmark::kMillisecond);

// ---- Repeated assessments over the one compiled catalog snapshot. The
// pipeline compiles the SKU search space (price-sorted candidate sets,
// capacity matrix, disk-tier table) exactly once at Create; every
// assessment afterwards reads borrowed views. Items = assessments, so
// items_per_second is the steady-state single-pipeline assessment
// throughput the fleet layer multiplies.

void BM_CompiledAssess(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const dma::SkuRecommendationPipeline& pipeline = PipelineWithThreads(threads);
  dma::AssessmentRequest request;
  request.customer_id = "compiled";
  request.target = catalog::Deployment::kSqlDb;
  request.database_traces = {MakeTrace(7, 6)};
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    StatusOr<dma::AssessmentOutcome> outcome = pipeline.Assess(request);
    benchmark::DoNotOptimize(outcome);
    if (!outcome.ok()) std::abort();
  }
  ReportCostCounters(state, before);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("shared compiled snapshot, " + std::to_string(threads) +
                 " threads");
}
BENCHMARK(BM_CompiledAssess)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// ---- Fleet assessment: an 8-customer batch through FleetAssessor at
// jobs = 1/2/8, pipeline SKU fan-out matched to the job count the way
// `doppler assess-batch --jobs N` wires it.

void BM_FleetAssess(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const dma::SkuRecommendationPipeline& pipeline = PipelineWithThreads(jobs);
  std::vector<dma::AssessmentRequest> requests;
  for (int i = 0; i < 8; ++i) {
    dma::AssessmentRequest request;
    request.customer_id = "fleet-" + std::to_string(i);
    request.target = catalog::Deployment::kSqlDb;
    request.database_traces = {MakeTrace(7, 10 + static_cast<std::uint64_t>(i))};
    requests.push_back(std::move(request));
  }
  const exec::FleetAssessor assessor(&pipeline, jobs);
  for (auto _ : state) {
    std::vector<StatusOr<dma::AssessmentOutcome>> outcomes =
        assessor.AssessAll(requests);
    benchmark::DoNotOptimize(outcomes);
    for (const StatusOr<dma::AssessmentOutcome>& outcome : outcomes) {
      if (!outcome.ok()) std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
  state.SetLabel(std::to_string(jobs) + " jobs, 8-customer fleet");
}
BENCHMARK(BM_FleetAssess)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// ---- Cross-target curve build: one snapshot + curve per registered
// deployment target (the `doppler assess --targets ...` shape). The gate
// locks `catalog.targets_compiled` exactly (snapshots per iteration is a
// pure function of the registry) and the per-target throttling-kernel
// work as `ppm.samples_scanned.<target-id>` tolerance counters, so a
// ladder or kernel change that silently inflates ONE target's evaluation
// cost fails even when the blended total stays flat.

void BM_CrossTargetCurve(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(7, 21);
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const std::vector<catalog::TargetSpec>& specs =
      catalog::TargetRegistry::BuiltIns().specs();
  const auto* compiled_counter =
      obs::DefaultMetrics().GetCounter("catalog.targets_compiled");
  const auto* scanned_counter =
      obs::DefaultMetrics().GetCounter("ppm.samples_scanned");
  const std::uint64_t compiled_before = compiled_counter->Value();
  std::vector<std::uint64_t> scanned_per_target(specs.size(), 0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const std::uint64_t scanned_before = scanned_counter->Value();
      const catalog::CompiledCatalog compiled =
          catalog::CompiledCatalog::CompileTarget(specs[i], &pricing);
      StatusOr<core::PricePerformanceCurve> curve =
          core::PricePerformanceCurve::Build(
              trace, compiled.ForDeployment(specs[i].deployment).view(),
              pricing, estimator);
      benchmark::DoNotOptimize(curve);
      if (!curve.ok()) std::abort();
      scanned_per_target[i] += scanned_counter->Value() - scanned_before;
    }
  }
  state.counters["catalog.targets_compiled"] = benchmark::Counter(
      static_cast<double>(compiled_counter->Value() - compiled_before) /
      static_cast<double>(state.iterations()));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    state.counters["ppm.samples_scanned." + specs[i].id] =
        benchmark::Counter(static_cast<double>(scanned_per_target[i]) /
                           static_cast<double>(state.iterations()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()));
  state.SetLabel(std::to_string(specs.size()) +
                 " targets, snapshot + curve per target");
}
BENCHMARK(BM_CrossTargetCurve)->Unit(benchmark::kMillisecond);

// ---- Serving-path overload: a deterministic admission-control scenario
// whose serve.* counters the bench gate locks down next to the engine's
// evaluation-cost counters. Per iteration, with the single worker wedged:
// 4 requests fill the queue, 8 more are shed at admission, then (after
// the queue drains) 3 pre-expired requests die at the first stage
// boundary. admitted/shed/expired are exact functions of the scenario —
// a drift means the admission or deadline semantics changed, not that
// the machine was busy.

std::shared_ptr<const dma::SkuRecommendationPipeline> ServePipeline() {
  static auto* const kPipeline = [] {
    dma::SkuRecommendationPipeline::Config config;
    config.num_threads = 1;
    StatusOr<dma::SkuRecommendationPipeline> pipeline =
        dma::SkuRecommendationPipeline::Create(
            {catalog::SkuCatalog(Catalog()), core::GroupModel(OfflineModel())},
            config);
    if (!pipeline.ok()) std::abort();
    return new std::shared_ptr<const dma::SkuRecommendationPipeline>(
        std::make_shared<const dma::SkuRecommendationPipeline>(
            *std::move(pipeline)));
  }();
  return *kPipeline;
}

void BM_ServeOverload(benchmark::State& state) {
  const telemetry::PerfTrace trace = MakeTrace(2, 42);
  const auto request_for = [&trace](const std::string& id) {
    dma::AssessmentRequest request;
    request.customer_id = id;
    request.target = catalog::Deployment::kSqlDb;
    request.database_traces = {trace};
    return request;
  };

  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  for (auto _ : state) {
    serve::SnapshotRegistry registry(ServePipeline());
    serve::ServiceOptions options;
    options.workers = 1;
    options.queue_depth = 4;
    serve::AssessmentService service(&registry, options);

    // Wedge the worker at the first stage boundary so the queue state
    // behind it is exact.
    std::promise<void> started;
    std::promise<void> release_promise;
    std::shared_future<void> release(release_promise.get_future());
    dma::AssessmentRequest blocker = request_for("blocker");
    bool first = true;
    blocker.stage_boundary_hook = [&started, release, first](
                                      const char*) mutable {
      if (first) {
        first = false;
        started.set_value();
        release.wait();
      }
    };
    std::vector<std::future<serve::ServeResponse>> futures;
    StatusOr<std::future<serve::ServeResponse>> wedged =
        service.Submit(std::move(blocker));
    if (!wedged.ok()) std::abort();
    futures.push_back(std::move(*wedged));
    started.get_future().wait();

    // 4 fill the queue, 8 shed against the full queue.
    for (int i = 0; i < 12; ++i) {
      StatusOr<std::future<serve::ServeResponse>> submitted =
          service.Submit(request_for("load-" + std::to_string(i)));
      if (submitted.ok()) futures.push_back(std::move(*submitted));
    }
    release_promise.set_value();
    for (auto& future : futures) (void)future.get();

    // Queue drained: 3 pre-expired requests are admitted and die at the
    // first boundary with kDeadlineExceeded.
    std::vector<std::future<serve::ServeResponse>> doomed;
    for (int i = 0; i < 3; ++i) {
      dma::AssessmentRequest request = request_for("late-" + std::to_string(i));
      request.deadline = Deadline::Expired();
      StatusOr<std::future<serve::ServeResponse>> submitted =
          service.Submit(std::move(request));
      if (submitted.ok()) doomed.push_back(std::move(*submitted));
    }
    for (auto& future : doomed) (void)future.get();

    const serve::AssessmentService::Stats stats = service.stats();
    admitted += stats.admitted;
    shed += stats.shed;
    expired += stats.expired;
    benchmark::DoNotOptimize(stats);
  }
  const double iterations = static_cast<double>(state.iterations());
  state.counters["serve.admitted"] =
      benchmark::Counter(static_cast<double>(admitted) / iterations);
  state.counters["serve.shed"] =
      benchmark::Counter(static_cast<double>(shed) / iterations);
  state.counters["serve.expired"] =
      benchmark::Counter(static_cast<double>(expired) / iterations);
  state.SetLabel("1 worker, queue 4, 16 requests/iteration");
}
BENCHMARK(BM_ServeOverload)->Unit(benchmark::kMillisecond);

// ---- Flight-recorder overhead: the same single-threaded pipeline assess
// with and without a terminal FlightRecord per request, mirroring exactly
// what the serving layer records (queue wait, total latency, per-stage
// timings). Arg is recorder on/off; comparing the two wall times bounds
// the recorder's cost per assessment, and the exact obs.flight.recorded
// counter (1 with the recorder attached, 0 without) locks the
// record-per-request contract in the bench gate — a drift means requests
// started being recorded zero or multiple times.

void BM_FlightRecorderOverhead(benchmark::State& state) {
  const bool recording = state.range(0) != 0;
  const dma::SkuRecommendationPipeline& pipeline = PipelineWithThreads(1);
  obs::FlightRecorder recorder;
  dma::AssessmentRequest request;
  request.customer_id = "flight";
  request.target = catalog::Deployment::kSqlDb;
  request.database_traces = {MakeTrace(7, 5)};
  obs::Counter* const recorded =
      obs::DefaultMetrics().GetCounter("obs.flight.recorded");
  const std::uint64_t recorded_before = recorded->Value();
  const auto before = SnapshotCostCounters();
  std::uint64_t sequence = 0;
  for (auto _ : state) {
    StatusOr<dma::AssessmentOutcome> outcome = pipeline.Assess(request);
    benchmark::DoNotOptimize(outcome);
    if (!outcome.ok()) std::abort();
    if (recording) {
      obs::FlightRecord record;
      record.request_id = "flight-" + std::to_string(++sequence);
      record.snapshot_epoch = 1;
      record.status = StatusCode::kOk;
      record.cause = obs::FlightCause::kCompleted;
      record.queue_wait_seconds = 0.0;
      for (const dma::StageTiming& timing : outcome->stage_timings) {
        record.total_seconds += timing.seconds;
        record.stage_timings.push_back({timing.stage, timing.seconds});
      }
      recorder.Record(std::move(record));
    }
  }
  ReportCostCounters(state, before);
  state.counters["obs.flight.recorded"] = benchmark::Counter(
      static_cast<double>(recorded->Value() - recorded_before) /
      static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(recording ? "recorder on, 1 record/assess" : "recorder off");
}
BENCHMARK(BM_FlightRecorderOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---- Streaming window: one telemetry tick (evict + append + exceedance
// query) against the incrementally patched stream structures, vs tearing
// the window down and rebuilding sorted stats and exceedance sets from
// scratch each tick. Both variants charge the same stream.rows_patched
// counter — the incremental path pays one sorted-slot patch per dimension
// plus one bit per memoized capacity set, the rebuild path pays the whole
// window — so the locked baseline proves rows-patched per tick stays far
// below the window size. The capacities are chosen so every live row
// exceeds (values are strictly positive against zero capacities, finite
// against the huge inverted-latency capacity), which makes every counter
// an exact per-tick constant independent of the sampled values.

constexpr std::size_t kStreamWindowRows = 1024;

const std::vector<ResourceDim>& StreamBenchDims() {
  static const auto* const kDims = new std::vector<ResourceDim>{
      ResourceDim::kCpu, ResourceDim::kMemoryGb, ResourceDim::kIops,
      ResourceDim::kIoLatencyMs};
  return *kDims;
}

std::vector<double> StreamBenchRow(Rng& rng) {
  return {rng.Uniform(0.1, 1.0), rng.Uniform(2.0, 6.0),
          rng.Uniform(100.0, 2000.0), rng.Uniform(1.0, 10.0)};
}

// Capacities every row exceeds: zero floors for the normal dimensions, an
// unreachable ceiling for the inverted latency dimension.
catalog::ResourceVector StreamBenchQueryCapacities() {
  catalog::ResourceVector caps;
  caps.Set(ResourceDim::kCpu, 0.0);
  caps.Set(ResourceDim::kMemoryGb, 0.0);
  caps.Set(ResourceDim::kIops, 0.0);
  caps.Set(ResourceDim::kIoLatencyMs, 1.0e9);
  return caps;
}

void BM_StreamAppendAssess(benchmark::State& state) {
  stream::StreamingTrace trace(StreamBenchDims(), kStreamWindowRows, 600);
  stream::StreamStats stats(&trace);
  stream::StreamIndex index(&trace, &stats);
  Rng rng(7);
  while (!trace.full()) {
    StatusOr<std::uint64_t> seq = trace.Append(StreamBenchRow(rng));
    if (!seq.ok()) std::abort();
    stats.OnAppend(*seq);
    index.OnAppend(*seq);
  }
  const catalog::ResourceVector query = StreamBenchQueryCapacities();
  // Memoize four capacity sets per dimension up front (the query set plus
  // three mid-range ones), as a monitor serving a warm SKU shortlist
  // would; per-tick index patching then touches 16 sets per side.
  for (ResourceDim dim : StreamBenchDims()) index.SetFor(dim, query.Get(dim));
  for (double scale : {0.35, 0.55, 0.8}) {
    index.SetFor(ResourceDim::kCpu, scale);
    index.SetFor(ResourceDim::kMemoryGb, 2.0 + 4.0 * scale);
    index.SetFor(ResourceDim::kIops, 2000.0 * scale);
    index.SetFor(ResourceDim::kIoLatencyMs, 10.0 * scale);
  }
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    const std::uint64_t departing = trace.first_seq();
    stats.OnEvict(departing);
    index.OnEvict(departing);
    if (!trace.PopFront().ok()) std::abort();
    StatusOr<std::uint64_t> seq = trace.Append(StreamBenchRow(rng));
    if (!seq.ok()) std::abort();
    stats.OnAppend(*seq);
    index.OnAppend(*seq);
    const std::size_t exceeding = index.CountExceedingUnion(query);
    benchmark::DoNotOptimize(exceeding);
    if (exceeding != trace.size()) std::abort();
  }
  ReportCostCounters(state, before);
  state.counters["stream.window_rows"] =
      benchmark::Counter(static_cast<double>(kStreamWindowRows));
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("incremental patch, window " +
                 std::to_string(kStreamWindowRows));
}
BENCHMARK(BM_StreamAppendAssess)->Unit(benchmark::kMicrosecond);

void BM_RebuildAssess(benchmark::State& state) {
  stream::StreamingTrace trace(StreamBenchDims(), kStreamWindowRows, 600);
  Rng rng(7);
  while (!trace.full()) {
    if (!trace.Append(StreamBenchRow(rng)).ok()) std::abort();
  }
  const catalog::ResourceVector query = StreamBenchQueryCapacities();
  const auto before = SnapshotCostCounters();
  for (auto _ : state) {
    if (!trace.PopFront().ok()) std::abort();
    if (!trace.Append(StreamBenchRow(rng)).ok()) std::abort();
    // Rebuild-per-tick strawman: re-sort every dimension and rebuild the
    // queried exceedance sets from scratch, charging the whole window to
    // stream.rows_patched instead of one slot per side.
    stream::StreamStats stats(&trace);
    for (std::uint64_t seq = trace.first_seq(); seq < trace.next_seq(); ++seq) {
      stats.OnAppend(seq);
    }
    stream::StreamIndex index(&trace, &stats);
    const std::size_t exceeding = index.CountExceedingUnion(query);
    benchmark::DoNotOptimize(exceeding);
    if (exceeding != trace.size()) std::abort();
  }
  ReportCostCounters(state, before);
  state.counters["stream.window_rows"] =
      benchmark::Counter(static_cast<double>(kStreamWindowRows));
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("rebuild per tick, window " +
                 std::to_string(kStreamWindowRows));
}
BENCHMARK(BM_RebuildAssess)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
