// Table 6 / Figures 12 & 13: the synthesized-workload validation (§5.4).
//
// Table 6 lists the four SKUs the paper replayed on (4/8/16/32 cores,
// doubling memory/cache/IOPS). Fig. 12 shows the price-performance curve
// for the synthesized workload over those SKUs, with SKU2 optimal.
// Fig. 13 shows the replayed perf counters: SKU1 is severely throttled
// (latency blows up), SKU2 is right-sized, SKU3/4 buy nothing extra.
//
// We synthesise a workload from a customer history (benchmark pieces at
// fitted scale/rate/concurrency, no queries touched), build the curve over
// a four-SKU ladder shaped like Table 6, pick the optimum, and replay on
// all four.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/price_performance.h"
#include "dma/resource_report.h"
#include "sim/replayer.h"
#include "stats/descriptive.h"
#include "util/ascii_plot.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/benchmark_mix.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::ResourceDim;

namespace {

// The Table 6 ladder: 4/8/16/32 cores with doubling memory and IOPS.
std::vector<catalog::Sku> Table6Skus() {
  std::vector<catalog::Sku> skus;
  const struct {
    const char* id;
    int vcores;
    double memory_gb;
    double iops;
  } rows[] = {
      {"SKU1", 4, 16.0, 6000.0},
      {"SKU2", 8, 32.0, 12000.0},
      {"SKU3", 16, 64.0, 154000.0},
      {"SKU4", 32, 128.0, 308000.0},
  };
  for (const auto& row : rows) {
    catalog::Sku sku;
    sku.id = row.id;
    sku.vcores = row.vcores;
    sku.max_memory_gb = row.memory_gb;
    sku.max_iops = row.iops;
    sku.max_log_rate_mbps = 3.0 * row.vcores;
    sku.min_io_latency_ms = 2.0;
    sku.max_data_gb = 2048.0;  // "2TB SSD" shared across the ladder.
    sku.price_per_hour = 0.30 * row.vcores;
    skus.push_back(sku);
  }
  return skus;
}

}  // namespace

int main() {
  bench::Banner(
      "Table 6 / Figs 12-13 - synthesized workload replayed on a 4-SKU "
      "ladder",
      "Doppler picks SKU2 (8 cores); replay shows SKU1 severely throttled "
      "with inflated IO latency while SKU2 meets the workload");

  // The customer's performance history (counters only).
  Rng rng(1212);
  workload::WorkloadSpec history_spec;
  history_spec.name = "sec54-customer";
  history_spec.dims[ResourceDim::kCpu] =
      workload::DimensionSpec::DailyPeriodic(3.5, 2.5);
  history_spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(20.0, 0.03);
  history_spec.dims[ResourceDim::kIops] =
      workload::DimensionSpec::DailyPeriodic(5500.0, 3500.0);
  history_spec.dims[ResourceDim::kLogRateMbps] =
      workload::DimensionSpec::DailyPeriodic(6.0, 4.0);
  history_spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(4.0, 0.04);
  const telemetry::PerfTrace history = bench::Unwrap(
      workload::GenerateTrace(history_spec, 14.0, &rng), "history");

  // Synthesise the workload (scale factor, rate, concurrency fitted to the
  // history).
  const workload::SynthesizedWorkload synth = bench::Unwrap(
      workload::SynthesizeFromHistory(history), "synthesis");
  std::printf("Synthesized workload: %s (fit error %.1f%%)\n\n",
              synth.Describe().c_str(), synth.fit_error * 100.0);

  // Table 6.
  TablePrinter table6({"ID", "vCPU", "Memory", "Throughput", "Price/h"});
  for (const catalog::Sku& sku : Table6Skus()) {
    table6.AddRow({sku.id, std::to_string(sku.vcores) + " cores",
                   FormatDouble(sku.max_memory_gb, 0) + " GB",
                   FormatDouble(sku.max_iops, 0) + " IOPs",
                   "$" + FormatDouble(sku.price_per_hour, 2)});
  }
  std::puts("Table 6 - SKUs used to execute synthetic workloads:");
  table6.Print(std::cout);

  // Fig. 12: the curve over the four SKUs, from the history.
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  catalog::SkuCatalog table6_catalog;
  for (const catalog::Sku& sku : Table6Skus()) table6_catalog.Add(sku);
  const catalog::CompiledCatalog table6_compiled =
      catalog::CompiledCatalog::Compile(std::move(table6_catalog), &pricing);
  const core::PricePerformanceCurve curve = bench::Unwrap(
      core::PricePerformanceCurve::Build(
          history,
          table6_compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          table6_compiled.pricing(), estimator),
      "curve");
  std::puts("\nFigure 12 - price-performance curve for the synthesized "
            "workload:");
  std::cout << dma::RenderCurveReport(curve, 4);
  const core::PricePerformancePoint optimal =
      bench::Unwrap(curve.CheapestFullySatisfying(0.02), "optimal point");
  std::printf("Doppler's optimal SKU: %s (paper: SKU2)\n\n",
              optimal.sku.id.c_str());

  // Fig. 13: replay the synthesised demand on all four SKUs.
  Rng render_rng(1313);
  const telemetry::PerfTrace demand = bench::Unwrap(
      workload::RenderDemandTrace(synth, 7.0, &render_rng), "demand render");

  std::puts("Figure 13 - replayed performance counters per SKU:");
  TablePrinter table13({"SKU", "Observed throttling", "CPU used (mean)",
                        "IO latency mean/p95 (ms)", "Verdict"});
  for (const catalog::Sku& sku : Table6Skus()) {
    const sim::ReplayResult replay =
        bench::Unwrap(sim::ReplayOnSku(demand, sku), "replay");
    const std::vector<double>& latency =
        replay.observed.Values(ResourceDim::kIoLatencyMs);
    const char* verdict = replay.report.any_fraction > 0.3
                              ? "severely throttled"
                              : (replay.report.any_fraction > 0.05
                                     ? "borderline"
                                     : "meets the workload");
    table13.AddRow(
        {sku.id, FormatPercent(replay.report.any_fraction, 1),
         FormatDouble(stats::Mean(replay.observed.Values(ResourceDim::kCpu)),
                      2),
         FormatDouble(stats::Mean(latency), 2) + " / " +
             FormatDouble(stats::Quantile(latency, 0.95), 2),
         verdict});
  }
  table13.Print(std::cout);

  // The latency traces, SKU1 vs the optimal.
  const sim::ReplayResult sku1 =
      bench::Unwrap(sim::ReplayOnSku(demand, Table6Skus()[0]), "replay sku1");
  const sim::ReplayResult best =
      bench::Unwrap(sim::ReplayOnSku(demand, optimal.sku), "replay best");
  PlotOptions plot;
  plot.title = "\nIO latency under replay: '*' = SKU1, 'o' = " +
               optimal.sku.id;
  plot.height = 12;
  std::cout << DualLinePlot(sku1.observed.Values(ResourceDim::kIoLatencyMs),
                            best.observed.Values(ResourceDim::kIoLatencyMs),
                            plot);
  return 0;
}
