// Figures 8 & 9: "Major types of price-performance curves" and "Breakdown
// of different price-performance curve types within our training data set."
//
// Fig. 8 shows one example of each shape (flat / simple / complex); Fig. 9
// reports the population mix: 73.3% / 0.5% / 26.2% for SQL DB, 74.9% /
// 3.4% / 21.7% for SQL MI, with a similar split for on-prem estates.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "dma/resource_report.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::Deployment;
using catalog::ResourceDim;

namespace {

// One example workload per curve shape (Fig. 8).
telemetry::PerfTrace ExampleTrace(core::CurveShape shape) {
  Rng rng(808 + static_cast<int>(shape));
  workload::WorkloadSpec spec;
  switch (shape) {
    case core::CurveShape::kFlat:
      spec.name = "flat-example";
      spec.dims[ResourceDim::kCpu] =
          workload::DimensionSpec::Steady(0.4, 0.03);
      spec.dims[ResourceDim::kIops] =
          workload::DimensionSpec::Steady(120.0, 0.03);
      break;
    case core::CurveShape::kSimple:
      spec.name = "simple-example";
      spec.dims[ResourceDim::kCpu] =
          workload::DimensionSpec::Steady(5.0, 0.01);
      spec.dims[ResourceDim::kIops] =
          workload::DimensionSpec::Steady(1500.0, 0.01);
      break;
    case core::CurveShape::kComplex: {
      spec.name = "complex-example";
      workload::DimensionSpec cpu =
          workload::DimensionSpec::Spiky(3.0, 10.0, 1.0, 40.0);
      cpu.base_amplitude = 4.0;
      spec.dims[ResourceDim::kCpu] = cpu;
      spec.dims[ResourceDim::kIops] =
          workload::DimensionSpec::DailyPeriodic(1500.0, 1200.0);
      break;
    }
  }
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  return bench::Unwrap(workload::GenerateTrace(spec, 7.0, &rng),
                       "trace generation");
}

}  // namespace

int main() {
  bench::Banner(
      "Figures 8 & 9 - curve shapes and their population breakdown",
      "DB: 73.3% flat / 0.5% simple / 26.2% complex; MI: 74.9% / 3.4% / "
      "21.7%; on-prem similar");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const catalog::CompiledCatalog gp_compiled = bench::CompileTierSubset(
      catalog, Deployment::kSqlDb, catalog::ServiceTier::kGeneralPurpose,
      &pricing);

  // ---- Fig. 8: one curve per shape.
  for (core::CurveShape shape :
       {core::CurveShape::kFlat, core::CurveShape::kSimple,
        core::CurveShape::kComplex}) {
    const telemetry::PerfTrace trace = ExampleTrace(shape);
    const core::PricePerformanceCurve curve = bench::Unwrap(
        core::PricePerformanceCurve::Build(
            trace, gp_compiled.ForDeployment(Deployment::kSqlDb).view(),
            gp_compiled.pricing(), estimator),
        "curve build");
    std::printf("--- intended shape: %s; classified: %s ---\n",
                core::CurveShapeName(shape),
                core::CurveShapeName(curve.Classify()));
    std::cout << dma::RenderCurveReport(curve, 8) << "\n";
  }

  // ---- Fig. 9: population breakdown per deployment (the on-prem column
  // reuses the DB-shaped fleet, as the paper found the same split).
  TablePrinter table({"Population", "Flat", "Simple", "Complex",
                      "Paper (flat/simple/complex)"});
  struct Row {
    const char* label;
    Deployment deployment;
    std::uint64_t seed;
    const char* paper;
  };
  const Row rows[] = {
      {"Azure SQL DB customers", Deployment::kSqlDb, 909,
       "73.3% / 0.5% / 26.2%"},
      {"Azure SQL MI customers", Deployment::kSqlMi, 910,
       "74.9% / 3.4% / 21.7%"},
      {"On-prem estates (Azure Migrate)", Deployment::kSqlDb, 911,
       "~same split"},
  };
  for (const Row& row : rows) {
    bench::FleetConfig config;
    config.num_customers = 300;
    config.duration_days = 7.0;
    config.seed = row.seed;
    const core::BacktestDataset dataset = bench::Unwrap(
        bench::BuildFleetDataset(row.deployment, catalog, pricing, estimator,
                                 config),
        "fleet dataset");
    std::map<core::CurveShape, double> breakdown =
        core::CurveShapeBreakdown(dataset);
    table.AddRow({row.label,
                  FormatPercent(breakdown[core::CurveShape::kFlat], 1),
                  FormatPercent(breakdown[core::CurveShape::kSimple], 1),
                  FormatPercent(breakdown[core::CurveShape::kComplex], 1),
                  row.paper});
  }
  table.Print(std::cout);
  std::printf(
      "\n(The generated fleets target the paper's mix by construction; the "
      "check is that classification recovers it from the curves alone.)\n");
  return 0;
}
