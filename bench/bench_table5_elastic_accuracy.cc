// Table 5: "Elastic strategy performance excluding over-provisioned
// customers."
//
// Paper: DB 89.4% (micro: GP 89.0% / BC 95.6%), MI 96.7% (micro: GP 97.6%
// / BC 86.9%). Excluding the over-provisioned segment is what lifts
// accuracy out of Table 4's 70s — we print both so the delta is visible.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/negotiability.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;
using catalog::ServiceTier;

int main() {
  bench::Banner(
      "Table 5 - elastic accuracy excluding over-provisioned customers",
      "DB 89.4% (GP 89.0% / BC 95.6%); MI 96.7% (GP 97.6% / BC 86.9%)");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const core::ThresholdingStrategy strategy;

  TablePrinter table({"Customer Type", "Accuracy", "Micro Accuracy",
                      "Incl. over-prov", "Paper"});
  struct Row {
    const char* label;
    catalog::Deployment deployment;
    std::uint64_t seed;
    const char* paper;
  };
  const Row rows[] = {
      {"DB", catalog::Deployment::kSqlDb, 505,
       "89.4% (GP 89.0% / BC 95.6%)"},
      {"MI", catalog::Deployment::kSqlMi, 506,
       "96.7% (GP 97.6% / BC 86.9%)"},
  };

  for (const Row& row : rows) {
    bench::FleetConfig config;
    config.num_customers = 400;
    config.duration_days = 14.0;
    config.seed = row.seed;
    const core::BacktestDataset dataset = bench::Unwrap(
        bench::BuildFleetDataset(row.deployment, catalog, pricing, estimator,
                                 config),
        "fleet dataset");

    core::BacktestOptions excluded;
    excluded.exclude_over_provisioned = true;
    core::BacktestOptions included;
    included.exclude_over_provisioned = false;
    const core::BacktestResult clean = bench::Unwrap(
        core::RunBacktest(dataset, strategy, excluded), "backtest excl");
    const core::BacktestResult dirty = bench::Unwrap(
        core::RunBacktest(dataset, strategy, included), "backtest incl");

    std::string micro = "GP: ";
    const auto gp = clean.by_tier.find(ServiceTier::kGeneralPurpose);
    const auto bc = clean.by_tier.find(ServiceTier::kBusinessCritical);
    micro += gp != clean.by_tier.end()
                 ? FormatPercent(gp->second.accuracy, 1)
                 : "n/a";
    micro += " / BC: ";
    micro += bc != clean.by_tier.end()
                 ? FormatPercent(bc->second.accuracy, 1)
                 : "n/a";

    table.AddRow({row.label, FormatPercent(clean.accuracy, 1), micro,
                  FormatPercent(dirty.accuracy, 1), row.paper});
  }
  table.Print(std::cout);

  std::printf(
      "\nPaper: 'the accuracy of Doppler drastically improves when "
      "over-provisioned customers are excluded from the ground truth "
      "labels' — compare the 'Accuracy' and 'Incl. over-prov' columns.\n");
  return 0;
}
