// Figure 11: "Example of a set of price-performance curves before (dotted
// line) and after (solid line) a SKU change."
//
// The paper's worked case: a customer on SQL DB GP 2 cores whose workload
// grew; sticking with GP 2 would have meant >40% throttling, and the
// customer moved to BC 6 cores, which meets the new needs at 100%. The
// curves pick the change up automatically.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/drift.h"
#include "dma/resource_report.h"
#include "util/ascii_plot.h"
#include "util/string_util.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::Deployment;
using catalog::ResourceDim;

namespace {

telemetry::PerfTrace Phase(bool after, std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = after ? "after-change" : "before-change";
  if (!after) {
    // Light, latency-insensitive: comfortably inside GP 2.
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(0.6, 0.5);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(180.0, 120.0);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(7.5, 0.04);
  } else {
    // Grown and latency-bound: needs BC-class IO.
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(3.2, 1.8);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(9000.0, 6000.0);
    spec.dims[ResourceDim::kIoLatencyMs] =
        workload::DimensionSpec::Steady(2.2, 0.05);
  }
  return bench::Unwrap(workload::GenerateTrace(spec, 10.0, &rng),
                       "trace generation");
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 11 - curves before/after a SKU change",
      "customer moved GP 2 cores -> BC 6 cores; staying put meant >40% "
      "throttling, the new SKU meets needs at 100%");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled =
      catalog::CompiledCatalog::Compile(catalog, &pricing);
  const catalog::CompiledView candidates =
      compiled.ForDeployment(Deployment::kSqlDb).view();

  const telemetry::PerfTrace before = Phase(false, 111);
  const telemetry::PerfTrace after = Phase(true, 112);
  const core::PricePerformanceCurve curve_before = bench::Unwrap(
      core::PricePerformanceCurve::Build(before, candidates, pricing,
                                         estimator),
      "curve before");
  const core::PricePerformanceCurve curve_after = bench::Unwrap(
      core::PricePerformanceCurve::Build(after, candidates, pricing,
                                         estimator),
      "curve after");

  PlotOptions plot;
  plot.title = "performance vs price rank: '*' = before change, "
               "'o' = after change";
  plot.height = 14;
  std::cout << DualLinePlot(curve_before.Performances(),
                            curve_after.Performances(), plot)
            << "\n";

  const core::PricePerformancePoint old_before =
      bench::Unwrap(curve_before.FindSku("DB_GP_Gen5_2"), "GP2 before");
  const core::PricePerformancePoint old_after =
      bench::Unwrap(curve_after.FindSku("DB_GP_Gen5_2"), "GP2 after");
  const core::PricePerformancePoint new_after =
      bench::Unwrap(curve_after.CheapestFullySatisfying(), "new choice");

  std::printf("Original SKU (GP 2 cores) before the change: %s of needs met\n",
              FormatPercent(old_before.performance, 1).c_str());
  std::printf(
      "Original SKU after the change: %s throttling (paper: '>40%%')\n",
      FormatPercent(old_after.MonotoneProbability(), 1).c_str());
  std::printf(
      "Cheapest fully-satisfying SKU after the change: %s (paper: BC 6 "
      "cores) — meets needs at %s\n",
      new_after.sku.DisplayName().c_str(),
      FormatPercent(new_after.performance, 1).c_str());

  // The automated form: concatenate the two phases into one stream and let
  // the drift detector find the change (paper: "Doppler can automatically
  // detect the need to change SKUs").
  telemetry::PerfTrace stream(before.interval_seconds());
  stream.set_id("before+after");
  for (catalog::ResourceDim dim : before.PresentDims()) {
    std::vector<double> joined = before.Values(dim);
    const std::vector<double>& tail = after.Values(dim);
    joined.insert(joined.end(), tail.begin(), tail.end());
    bench::Unwrap(stream.SetSeries(dim, std::move(joined)), "join");
  }
  core::DriftOptions drift_options;
  drift_options.recent_fraction = 0.5;
  const core::DriftReport drift = bench::Unwrap(
      core::DetectSkuDrift(stream, candidates, pricing, estimator,
                           "DB_GP_Gen5_2", drift_options),
      "drift detection");
  std::printf(
      "\nAutomated drift detection on the combined stream: baseline %s -> "
      "recent %s throttling on GP 2; change needed: %s; suggested target: "
      "%s\n",
      FormatPercent(drift.baseline_probability, 1).c_str(),
      FormatPercent(drift.recent_probability, 1).c_str(),
      drift.needs_change ? "YES" : "no",
      drift.recommended_display_name.c_str());
  return 0;
}
