// Figure 7: "Confidence score based on bootstrapping samples."
//
// Illustrates the §3.4 mechanism: bootstrap sub-windows of the raw
// counters, rerun the whole recommendation per window, and report the
// agreement with the full-data recommendation. A stable workload pins its
// SKU across windows (score ~1); a volatile one scatters.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.h"
#include "core/confidence.h"
#include "stats/bootstrap.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::ResourceDim;

namespace {

telemetry::PerfTrace MakeTrace(bool stable, std::uint64_t seed) {
  Rng rng(seed);
  workload::WorkloadSpec spec;
  spec.name = stable ? "stable" : "volatile";
  if (stable) {
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::DailyPeriodic(3.0, 1.5, 0.02);
    spec.dims[ResourceDim::kIops] =
        workload::DimensionSpec::DailyPeriodic(1000.0, 500.0, 0.02);
  } else {
    // Strong trend + bursts: different windows see different workloads.
    spec.dims[ResourceDim::kCpu] =
        workload::DimensionSpec::Trending(1.0, 12.0, 0.10);
    workload::DimensionSpec iops =
        workload::DimensionSpec::Bursty(500.0, 6000.0, 3.0, 120.0, 0.15);
    spec.dims[ResourceDim::kIops] = iops;
  }
  spec.dims[ResourceDim::kMemoryGb] =
      workload::DimensionSpec::Steady(12.0, 0.03);
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  return doppler::bench::Unwrap(workload::GenerateTrace(spec, 30.0, &rng),
                                "trace generation");
}

}  // namespace

int main() {
  bench::Banner(
      "Figure 7 - bootstrap confidence score",
      "stable utilisation -> high confidence; inconsistent utilisation -> "
      "low confidence (guardrail: collect more data)");

  auto engine = bench::MakeEngine(catalog::Deployment::kSqlDb);
  core::RecommendFn recommend = [&](const telemetry::PerfTrace& t) {
    return engine->recommender->RecommendDb(t);
  };

  TablePrinter table({"Workload", "Recommended SKU", "Bootstrap runs",
                      "Matching runs", "Confidence"});
  for (bool stable : {true, false}) {
    const telemetry::PerfTrace trace = MakeTrace(stable, stable ? 70 : 71);
    core::ConfidenceOptions options;
    options.runs = 40;
    options.window_days = 7.0;
    Rng rng(707);
    const core::ConfidenceResult result = bench::Unwrap(
        core::ScoreConfidence(trace, recommend, options, &rng),
        "confidence scoring");
    table.AddRow({trace.id(), result.original.sku.DisplayName(),
                  std::to_string(result.runs),
                  std::to_string(result.matching_runs),
                  FormatPercent(result.score, 0)});
  }
  table.Print(std::cout);

  // Show the per-run scatter for the volatile workload: which SKUs the
  // bootstrap runs landed on.
  const telemetry::PerfTrace trace = MakeTrace(false, 71);
  std::map<std::string, int> votes;
  Rng rng(708);
  core::ConfidenceOptions options;
  options.runs = 40;
  options.window_days = 7.0;
  // Re-run manually to collect the per-run picks.
  {
    const core::Recommendation original =
        bench::Unwrap(engine->recommender->RecommendDb(trace), "original");
    stats::Bootstrap bootstrap(trace.num_samples(), &rng);
    const std::size_t window =
        static_cast<std::size_t>(7.0 * 86400 / trace.interval_seconds());
    for (int run = 0; run < options.runs; ++run) {
      const telemetry::PerfTrace resampled =
          trace.Select(bootstrap.SampleWindow(window));
      StatusOr<core::Recommendation> rec =
          engine->recommender->RecommendDb(resampled);
      if (rec.ok()) ++votes[rec->sku.DisplayName()];
    }
    std::printf("\nPer-window SKU votes for the volatile workload (full-data "
                "pick: %s):\n",
                original.sku.DisplayName().c_str());
  }
  for (const auto& [sku, count] : votes) {
    std::printf("  %-55s %2d/40\n", sku.c_str(), count);
  }
  return 0;
}
