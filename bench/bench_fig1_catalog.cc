// Figure 1: "Examples of 6 Azure SQL SKU offerings."
//
// Prints the same six rows (DB BC/GP at 2, 4, 6 vCores, Gen5) from the
// generated catalog, side by side with the paper's numbers, plus the
// catalog-wide census backing the paper's "over 200 different PaaS cloud
// SKUs" claim (we generate 150+, spanning the same structure).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "catalog/catalog.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Figure 1 - sample of Azure SQL DB SKU offerings",
      "BC2: 1024GB/10.4GB/8000 IOPS/24MBps/1ms/$1.36h ... GP6: "
      "1536GB/31.1GB/1920 IOPS/22.5MBps/5ms/$1.52h");

  const catalog::SkuCatalog full_catalog = catalog::BuildAzureLikeCatalog();

  TablePrinter table({"Service Tier", "#vCores", "MaxDataSize", "MaxMemory",
                      "MaxDataIOPS", "MaxLogRate", "MinIOLatency", "Price"});
  // The figure interleaves BC and GP at each vCore step.
  for (int vcores : {2, 4, 6}) {
    for (const char* tier : {"BC", "GP"}) {
      const std::string id =
          std::string("DB_") + tier + "_Gen5_" + std::to_string(vcores);
      const catalog::Sku sku =
          bench::Unwrap(full_catalog.FindById(id), "catalog lookup");
      table.AddRow({catalog::ServiceTierName(sku.tier),
                    std::to_string(sku.vcores),
                    FormatDouble(sku.max_data_gb, 0) + " GB",
                    FormatDouble(sku.max_memory_gb, 1) + " GB",
                    FormatDouble(sku.max_iops, 0),
                    FormatDouble(sku.max_log_rate_mbps, 1) + " MBps",
                    FormatDouble(sku.min_io_latency_ms, 0) + " ms",
                    "$" + FormatDouble(sku.price_per_hour, 2) + "/h"});
    }
  }
  table.Print(std::cout);

  // Catalog census.
  int db = 0, mi = 0, gp = 0, bc = 0;
  for (const catalog::Sku& sku : full_catalog.skus()) {
    (sku.deployment == catalog::Deployment::kSqlDb ? db : mi) += 1;
    (sku.tier == catalog::ServiceTier::kGeneralPurpose ? gp : bc) += 1;
  }
  std::printf(
      "\nGenerated catalog: %zu SKUs (%d SQL DB, %d SQL MI; %d GP, %d BC)\n"
      "Paper: 'Microsoft Azure alone has over 200 different PaaS cloud "
      "SKUs'.\n",
      full_catalog.size(), db, mi, gp, bc);
  return 0;
}
