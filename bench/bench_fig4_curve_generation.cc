// Figure 4: "Example of price-performance curve generation from
// performance history."
//
// (a) A customer whose CPU usage shows short, uncommon periods of high
//     utilisation; (b) the resulting price-performance curve. The paper's
//     worked example: the cheapest 100%-satisfying SKU would be an
//     expensive GP 24-core machine, but similar customers negotiate the
//     spikes away and pick a much cheaper SKU.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/price_performance.h"
#include "core/throttling.h"
#include "dma/resource_report.h"
#include "util/ascii_plot.h"
#include "util/string_util.h"
#include "workload/generator.h"

using namespace doppler;
using catalog::ResourceDim;

int main() {
  bench::Banner(
      "Figure 4 - price-performance curve generation",
      "spiky-CPU customer; cheapest 100%-needs SKU is GP 24 cores, but "
      "negotiating the spikes allows a far cheaper choice");

  // (a) The performance history: rare short CPU spikes over a modest base.
  Rng rng(404);
  workload::WorkloadSpec spec;
  spec.name = "fig4-customer";
  workload::DimensionSpec cpu = workload::DimensionSpec::Spiky(
      /*base=*/4.0, /*spike_height=*/17.0, /*rate_per_day=*/0.8,
      /*duration_minutes=*/30.0);
  cpu.base_amplitude = 3.0;
  spec.dims[ResourceDim::kCpu] = cpu;
  spec.dims[ResourceDim::kIoLatencyMs] =
      workload::DimensionSpec::Steady(7.0, 0.03);
  const telemetry::PerfTrace trace = bench::Unwrap(
      workload::GenerateTrace(spec, 14.0, &rng), "trace generation");

  PlotOptions plot;
  plot.title = "(a) CPU usage by time (vCores, 14 days)";
  plot.height = 12;
  std::cout << LinePlot(trace.Values(ResourceDim::kCpu), plot) << "\n";

  // (b) The curve over the Gen5 GP ladder (the paper's example names GP
  // sizes).
  catalog::CatalogOptions catalog_options;
  catalog_options.hardware = {catalog::HardwareGen::kGen5};
  catalog_options.include_sql_mi = false;
  const catalog::SkuCatalog catalog =
      catalog::BuildAzureLikeCatalog(catalog_options);
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;
  const catalog::CompiledCatalog compiled = bench::CompileTierSubset(
      catalog, catalog::Deployment::kSqlDb,
      catalog::ServiceTier::kGeneralPurpose, &pricing);
  const core::PricePerformanceCurve curve = bench::Unwrap(
      core::PricePerformanceCurve::Build(
          trace, compiled.ForDeployment(catalog::Deployment::kSqlDb).view(),
          compiled.pricing(), estimator),
      "curve build");

  std::cout << "(b) " << dma::RenderCurveReport(curve, 16) << "\n";

  const core::PricePerformancePoint full =
      bench::Unwrap(curve.CheapestFullySatisfying(), "cheapest 100%");
  std::printf(
      "Cheapest SKU meeting 100%% of needs: %s at %s/month.\n",
      full.sku.DisplayName().c_str(),
      FormatDollars(full.monthly_price, 0).c_str());

  // What negotiating the spikes buys (a ~5% tolerance).
  const core::PricePerformancePoint negotiated =
      bench::Unwrap(curve.ClosestBelowTarget(0.05), "negotiated point");
  std::printf(
      "Negotiating the rare spikes (<=5%% throttling): %s at %s/month — "
      "%.0f%% cheaper.\n"
      "Paper: the 100%% point pushes to an expensive GP 24-core machine; "
      "similar customers pick a cheaper SKU and accept brief throttling.\n",
      negotiated.sku.DisplayName().c_str(),
      FormatDollars(negotiated.monthly_price, 0).c_str(),
      100.0 * (1.0 - negotiated.monthly_price / full.monthly_price));
  return 0;
}
