// Table 3: "Scores associated with each Azure SQL MI customer group
// (differentiated by the performance dimension negotiability in which 0
// denotes negotiable)."
//
// Eight groups from the 2^3 enumeration over {vCores, memory, IOPS};
// score = 1 - mean throttling probability of the SKUs customers in the
// group fixed. The paper's shape: the all-negotiable group 1 accepts the
// most throttling (score 0.85); the fully non-negotiable group 8 sits at
// ~0.9974.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include <algorithm>
#include "core/profiler.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace doppler;

int main() {
  bench::Banner(
      "Table 3 - MI customer group scores",
      "group 1 (0,0,0): 0.8500 (0.057) ... group 8 (1,1,1): 0.9974 (0.056)");

  const catalog::SkuCatalog catalog = catalog::BuildAzureLikeCatalog();
  const catalog::DefaultPricing pricing;
  const core::NonParametricEstimator estimator;

  bench::FleetConfig config;
  config.num_customers = 400;
  config.duration_days = 14.0;
  config.seed = 303;
  const core::BacktestDataset dataset = bench::Unwrap(
      bench::BuildFleetDataset(catalog::Deployment::kSqlMi, catalog, pricing,
                               estimator, config),
      "fleet dataset");

  const core::ThresholdingStrategy strategy;
  core::BacktestOptions options;
  options.exclude_over_provisioned = true;
  const core::BacktestResult result =
      bench::Unwrap(core::RunBacktest(dataset, strategy, options), "backtest");

  // Paper column for reference.
  const char* paper[] = {"0.8500 (0.057)", "0.9739 (0.054)", "0.9351 (0.017)",
                         "0.9692 (0.051)", "0.9869 (0.026)", "0.9974 (0.045)",
                         "0.9668 (0.015)", "0.9974 (0.056)"};

  TablePrinter table({"Group", "vCores", "Memory", "IOPS", "n",
                      "Average (Std) Score", "Paper"});
  // The paper numbers groups with vCores as the most significant bit:
  // group 1 = (0,0,0), group 2 = (0,0,1), ..., group 8 = (1,1,1).
  std::vector<core::GroupStats> ordered = result.group_stats;
  auto paper_number = [](const core::GroupStats& stats) {
    const std::vector<int> bits = core::GroupBits(stats.group_id, 3);
    return bits[0] * 4 + bits[1] * 2 + bits[2] + 1;
  };
  std::sort(ordered.begin(), ordered.end(),
            [&](const core::GroupStats& a, const core::GroupStats& b) {
              return paper_number(a) < paper_number(b);
            });
  for (const core::GroupStats& stats : ordered) {
    const std::vector<int> bits = core::GroupBits(stats.group_id, 3);
    const int group_number = paper_number(stats);
    table.AddRow({std::to_string(group_number), std::to_string(bits[0]),
                  std::to_string(bits[1]), std::to_string(bits[2]),
                  std::to_string(stats.count),
                  FormatDouble(stats.mean_score, 4) + " (" +
                      FormatDouble(stats.std_probability, 3) + ")",
                  paper[group_number - 1]});
  }
  table.Print(std::cout);

  // Shape checks the paper narrates.
  double score_g1 = 1.0, score_g8 = 0.0;
  for (const core::GroupStats& stats : result.group_stats) {
    if (stats.group_id == 0) score_g1 = stats.mean_score;
    if (stats.group_id == 7) score_g8 = stats.mean_score;
  }
  std::printf(
      "\nShape check: all-negotiable group 1 scores below fully "
      "non-negotiable group 8 (%s < %s): %s\n"
      "(Group 1 customers 'are willing to experience some level of "
      "throttling in order to realize cost savings'.)\n",
      FormatDouble(score_g1, 4).c_str(), FormatDouble(score_g8, 4).c_str(),
      score_g1 < score_g8 ? "holds" : "VIOLATED");
  return 0;
}
